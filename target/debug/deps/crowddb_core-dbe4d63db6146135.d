/root/repo/target/debug/deps/crowddb_core-dbe4d63db6146135.d: crates/core/src/lib.rs crates/core/src/audit.rs crates/core/src/boost.rs crates/core/src/cache.rs crates/core/src/crowd_source.rs crates/core/src/db.rs crates/core/src/error.rs crates/core/src/expansion.rs crates/core/src/extraction.rs crates/core/src/materialize.rs crates/core/src/planner.rs crates/core/src/repair.rs Cargo.toml

/root/repo/target/debug/deps/libcrowddb_core-dbe4d63db6146135.rmeta: crates/core/src/lib.rs crates/core/src/audit.rs crates/core/src/boost.rs crates/core/src/cache.rs crates/core/src/crowd_source.rs crates/core/src/db.rs crates/core/src/error.rs crates/core/src/expansion.rs crates/core/src/extraction.rs crates/core/src/materialize.rs crates/core/src/planner.rs crates/core/src/repair.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/audit.rs:
crates/core/src/boost.rs:
crates/core/src/cache.rs:
crates/core/src/crowd_source.rs:
crates/core/src/db.rs:
crates/core/src/error.rs:
crates/core/src/expansion.rs:
crates/core/src/extraction.rs:
crates/core/src/materialize.rs:
crates/core/src/planner.rs:
crates/core/src/repair.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
