/root/repo/target/debug/deps/property_tests-388bc71e0d5e8d22.d: crates/perceptual/tests/property_tests.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_tests-388bc71e0d5e8d22.rmeta: crates/perceptual/tests/property_tests.rs Cargo.toml

crates/perceptual/tests/property_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
