/root/repo/target/debug/deps/end_to_end_expansion-82a6e3dcaddf6bc4.d: tests/end_to_end_expansion.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_expansion-82a6e3dcaddf6bc4.rmeta: tests/end_to_end_expansion.rs Cargo.toml

tests/end_to_end_expansion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
