/root/repo/target/debug/deps/bench-7048e6685a3c2842.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-7048e6685a3c2842.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
