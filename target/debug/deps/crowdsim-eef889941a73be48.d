/root/repo/target/debug/deps/crowdsim-eef889941a73be48.d: crates/crowdsim/src/lib.rs crates/crowdsim/src/aggregate.rs crates/crowdsim/src/error.rs crates/crowdsim/src/hit.rs crates/crowdsim/src/oracle.rs crates/crowdsim/src/platform.rs crates/crowdsim/src/regimes.rs crates/crowdsim/src/worker.rs Cargo.toml

/root/repo/target/debug/deps/libcrowdsim-eef889941a73be48.rmeta: crates/crowdsim/src/lib.rs crates/crowdsim/src/aggregate.rs crates/crowdsim/src/error.rs crates/crowdsim/src/hit.rs crates/crowdsim/src/oracle.rs crates/crowdsim/src/platform.rs crates/crowdsim/src/regimes.rs crates/crowdsim/src/worker.rs Cargo.toml

crates/crowdsim/src/lib.rs:
crates/crowdsim/src/aggregate.rs:
crates/crowdsim/src/error.rs:
crates/crowdsim/src/hit.rs:
crates/crowdsim/src/oracle.rs:
crates/crowdsim/src/platform.rs:
crates/crowdsim/src/regimes.rs:
crates/crowdsim/src/worker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
