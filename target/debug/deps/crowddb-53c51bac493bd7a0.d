/root/repo/target/debug/deps/crowddb-53c51bac493bd7a0.d: src/lib.rs

/root/repo/target/debug/deps/crowddb-53c51bac493bd7a0: src/lib.rs

src/lib.rs:
