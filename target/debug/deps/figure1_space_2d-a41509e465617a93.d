/root/repo/target/debug/deps/figure1_space_2d-a41509e465617a93.d: crates/bench/src/bin/figure1_space_2d.rs Cargo.toml

/root/repo/target/debug/deps/libfigure1_space_2d-a41509e465617a93.rmeta: crates/bench/src/bin/figure1_space_2d.rs Cargo.toml

crates/bench/src/bin/figure1_space_2d.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
