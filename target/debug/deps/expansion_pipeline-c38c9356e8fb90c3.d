/root/repo/target/debug/deps/expansion_pipeline-c38c9356e8fb90c3.d: crates/bench/benches/expansion_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libexpansion_pipeline-c38c9356e8fb90c3.rmeta: crates/bench/benches/expansion_pipeline.rs Cargo.toml

crates/bench/benches/expansion_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
