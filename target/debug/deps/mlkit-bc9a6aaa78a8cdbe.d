/root/repo/target/debug/deps/mlkit-bc9a6aaa78a8cdbe.d: crates/mlkit/src/lib.rs crates/mlkit/src/dataset.rs crates/mlkit/src/error.rs crates/mlkit/src/kernel.rs crates/mlkit/src/linalg.rs crates/mlkit/src/lsi.rs crates/mlkit/src/metrics.rs crates/mlkit/src/svm/mod.rs crates/mlkit/src/svm/classifier.rs crates/mlkit/src/svm/svr.rs crates/mlkit/src/svm/tsvm.rs

/root/repo/target/debug/deps/mlkit-bc9a6aaa78a8cdbe: crates/mlkit/src/lib.rs crates/mlkit/src/dataset.rs crates/mlkit/src/error.rs crates/mlkit/src/kernel.rs crates/mlkit/src/linalg.rs crates/mlkit/src/lsi.rs crates/mlkit/src/metrics.rs crates/mlkit/src/svm/mod.rs crates/mlkit/src/svm/classifier.rs crates/mlkit/src/svm/svr.rs crates/mlkit/src/svm/tsvm.rs

crates/mlkit/src/lib.rs:
crates/mlkit/src/dataset.rs:
crates/mlkit/src/error.rs:
crates/mlkit/src/kernel.rs:
crates/mlkit/src/linalg.rs:
crates/mlkit/src/lsi.rs:
crates/mlkit/src/metrics.rs:
crates/mlkit/src/svm/mod.rs:
crates/mlkit/src/svm/classifier.rs:
crates/mlkit/src/svm/svr.rs:
crates/mlkit/src/svm/tsvm.rs:
