/root/repo/target/debug/deps/property_tests-90144e262c389523.d: crates/relational/tests/property_tests.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_tests-90144e262c389523.rmeta: crates/relational/tests/property_tests.rs Cargo.toml

crates/relational/tests/property_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
