/root/repo/target/debug/deps/property_tests-d227afe18575f539.d: crates/datagen/tests/property_tests.rs

/root/repo/target/debug/deps/property_tests-d227afe18575f539: crates/datagen/tests/property_tests.rs

crates/datagen/tests/property_tests.rs:
