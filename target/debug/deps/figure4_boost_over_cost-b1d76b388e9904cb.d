/root/repo/target/debug/deps/figure4_boost_over_cost-b1d76b388e9904cb.d: crates/bench/src/bin/figure4_boost_over_cost.rs

/root/repo/target/debug/deps/figure4_boost_over_cost-b1d76b388e9904cb: crates/bench/src/bin/figure4_boost_over_cost.rs

crates/bench/src/bin/figure4_boost_over_cost.rs:
