/root/repo/target/debug/deps/property_tests-33af2d690db1c734.d: crates/crowdsim/tests/property_tests.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_tests-33af2d690db1c734.rmeta: crates/crowdsim/tests/property_tests.rs Cargo.toml

crates/crowdsim/tests/property_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
