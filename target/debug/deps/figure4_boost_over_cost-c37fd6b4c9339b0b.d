/root/repo/target/debug/deps/figure4_boost_over_cost-c37fd6b4c9339b0b.d: crates/bench/src/bin/figure4_boost_over_cost.rs Cargo.toml

/root/repo/target/debug/deps/libfigure4_boost_over_cost-c37fd6b4c9339b0b.rmeta: crates/bench/src/bin/figure4_boost_over_cost.rs Cargo.toml

crates/bench/src/bin/figure4_boost_over_cost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
