/root/repo/target/debug/deps/end_to_end_expansion-1202d07c2ad91729.d: tests/end_to_end_expansion.rs

/root/repo/target/debug/deps/end_to_end_expansion-1202d07c2ad91729: tests/end_to_end_expansion.rs

tests/end_to_end_expansion.rs:
