/root/repo/target/debug/deps/crowddb-d02715927021f578.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrowddb-d02715927021f578.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
