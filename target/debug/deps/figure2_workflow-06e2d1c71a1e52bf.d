/root/repo/target/debug/deps/figure2_workflow-06e2d1c71a1e52bf.d: crates/bench/src/bin/figure2_workflow.rs

/root/repo/target/debug/deps/figure2_workflow-06e2d1c71a1e52bf: crates/bench/src/bin/figure2_workflow.rs

crates/bench/src/bin/figure2_workflow.rs:
