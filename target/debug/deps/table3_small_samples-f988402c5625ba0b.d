/root/repo/target/debug/deps/table3_small_samples-f988402c5625ba0b.d: crates/bench/src/bin/table3_small_samples.rs

/root/repo/target/debug/deps/table3_small_samples-f988402c5625ba0b: crates/bench/src/bin/table3_small_samples.rs

crates/bench/src/bin/table3_small_samples.rs:
