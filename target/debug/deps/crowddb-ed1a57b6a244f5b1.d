/root/repo/target/debug/deps/crowddb-ed1a57b6a244f5b1.d: src/lib.rs

/root/repo/target/debug/deps/libcrowddb-ed1a57b6a244f5b1.rlib: src/lib.rs

/root/repo/target/debug/deps/libcrowddb-ed1a57b6a244f5b1.rmeta: src/lib.rs

src/lib.rs:
