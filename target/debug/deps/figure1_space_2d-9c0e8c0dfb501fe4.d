/root/repo/target/debug/deps/figure1_space_2d-9c0e8c0dfb501fe4.d: crates/bench/src/bin/figure1_space_2d.rs

/root/repo/target/debug/deps/figure1_space_2d-9c0e8c0dfb501fe4: crates/bench/src/bin/figure1_space_2d.rs

crates/bench/src/bin/figure1_space_2d.rs:
