/root/repo/target/debug/deps/table5_restaurants-58579f40b7c21898.d: crates/bench/src/bin/table5_restaurants.rs

/root/repo/target/debug/deps/table5_restaurants-58579f40b7c21898: crates/bench/src/bin/table5_restaurants.rs

crates/bench/src/bin/table5_restaurants.rs:
