/root/repo/target/debug/deps/crowdsim-8ccd8aee8e34ef82.d: crates/crowdsim/src/lib.rs crates/crowdsim/src/aggregate.rs crates/crowdsim/src/error.rs crates/crowdsim/src/hit.rs crates/crowdsim/src/oracle.rs crates/crowdsim/src/platform.rs crates/crowdsim/src/regimes.rs crates/crowdsim/src/worker.rs Cargo.toml

/root/repo/target/debug/deps/libcrowdsim-8ccd8aee8e34ef82.rmeta: crates/crowdsim/src/lib.rs crates/crowdsim/src/aggregate.rs crates/crowdsim/src/error.rs crates/crowdsim/src/hit.rs crates/crowdsim/src/oracle.rs crates/crowdsim/src/platform.rs crates/crowdsim/src/regimes.rs crates/crowdsim/src/worker.rs Cargo.toml

crates/crowdsim/src/lib.rs:
crates/crowdsim/src/aggregate.rs:
crates/crowdsim/src/error.rs:
crates/crowdsim/src/hit.rs:
crates/crowdsim/src/oracle.rs:
crates/crowdsim/src/platform.rs:
crates/crowdsim/src/regimes.rs:
crates/crowdsim/src/worker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
