/root/repo/target/debug/deps/pearson_consensus-8d7d403efed23d1a.d: crates/bench/src/bin/pearson_consensus.rs

/root/repo/target/debug/deps/pearson_consensus-8d7d403efed23d1a: crates/bench/src/bin/pearson_consensus.rs

crates/bench/src/bin/pearson_consensus.rs:
