/root/repo/target/debug/deps/ablation_dimensionality-13c7f0b0fcf619ae.d: crates/bench/src/bin/ablation_dimensionality.rs Cargo.toml

/root/repo/target/debug/deps/libablation_dimensionality-13c7f0b0fcf619ae.rmeta: crates/bench/src/bin/ablation_dimensionality.rs Cargo.toml

crates/bench/src/bin/ablation_dimensionality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
