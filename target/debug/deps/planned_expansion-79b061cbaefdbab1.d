/root/repo/target/debug/deps/planned_expansion-79b061cbaefdbab1.d: tests/planned_expansion.rs Cargo.toml

/root/repo/target/debug/deps/libplanned_expansion-79b061cbaefdbab1.rmeta: tests/planned_expansion.rs Cargo.toml

tests/planned_expansion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
