/root/repo/target/debug/deps/table5_restaurants-a7ddea6fd4e53f23.d: crates/bench/src/bin/table5_restaurants.rs Cargo.toml

/root/repo/target/debug/deps/libtable5_restaurants-a7ddea6fd4e53f23.rmeta: crates/bench/src/bin/table5_restaurants.rs Cargo.toml

crates/bench/src/bin/table5_restaurants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
