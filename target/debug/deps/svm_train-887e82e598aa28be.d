/root/repo/target/debug/deps/svm_train-887e82e598aa28be.d: crates/bench/benches/svm_train.rs Cargo.toml

/root/repo/target/debug/deps/libsvm_train-887e82e598aa28be.rmeta: crates/bench/benches/svm_train.rs Cargo.toml

crates/bench/benches/svm_train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
