/root/repo/target/debug/deps/relational-3705cecd5c86f0ab.d: crates/relational/src/lib.rs crates/relational/src/catalog.rs crates/relational/src/error.rs crates/relational/src/executor.rs crates/relational/src/expr.rs crates/relational/src/schema.rs crates/relational/src/sql/mod.rs crates/relational/src/sql/lexer.rs crates/relational/src/sql/parser.rs crates/relational/src/table.rs crates/relational/src/value.rs Cargo.toml

/root/repo/target/debug/deps/librelational-3705cecd5c86f0ab.rmeta: crates/relational/src/lib.rs crates/relational/src/catalog.rs crates/relational/src/error.rs crates/relational/src/executor.rs crates/relational/src/expr.rs crates/relational/src/schema.rs crates/relational/src/sql/mod.rs crates/relational/src/sql/lexer.rs crates/relational/src/sql/parser.rs crates/relational/src/table.rs crates/relational/src/value.rs Cargo.toml

crates/relational/src/lib.rs:
crates/relational/src/catalog.rs:
crates/relational/src/error.rs:
crates/relational/src/executor.rs:
crates/relational/src/expr.rs:
crates/relational/src/schema.rs:
crates/relational/src/sql/mod.rs:
crates/relational/src/sql/lexer.rs:
crates/relational/src/sql/parser.rs:
crates/relational/src/table.rs:
crates/relational/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
