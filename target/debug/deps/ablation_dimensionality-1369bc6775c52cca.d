/root/repo/target/debug/deps/ablation_dimensionality-1369bc6775c52cca.d: crates/bench/src/bin/ablation_dimensionality.rs Cargo.toml

/root/repo/target/debug/deps/libablation_dimensionality-1369bc6775c52cca.rmeta: crates/bench/src/bin/ablation_dimensionality.rs Cargo.toml

crates/bench/src/bin/ablation_dimensionality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
