/root/repo/target/debug/deps/table2_nearest_neighbors-de9d24a2504bd511.d: crates/bench/src/bin/table2_nearest_neighbors.rs

/root/repo/target/debug/deps/table2_nearest_neighbors-de9d24a2504bd511: crates/bench/src/bin/table2_nearest_neighbors.rs

crates/bench/src/bin/table2_nearest_neighbors.rs:
