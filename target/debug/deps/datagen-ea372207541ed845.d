/root/repo/target/debug/deps/datagen-ea372207541ed845.d: crates/datagen/src/lib.rs crates/datagen/src/domain.rs crates/datagen/src/experts.rs crates/datagen/src/generator.rs crates/datagen/src/metadata.rs crates/datagen/src/oracle.rs

/root/repo/target/debug/deps/datagen-ea372207541ed845: crates/datagen/src/lib.rs crates/datagen/src/domain.rs crates/datagen/src/experts.rs crates/datagen/src/generator.rs crates/datagen/src/metadata.rs crates/datagen/src/oracle.rs

crates/datagen/src/lib.rs:
crates/datagen/src/domain.rs:
crates/datagen/src/experts.rs:
crates/datagen/src/generator.rs:
crates/datagen/src/metadata.rs:
crates/datagen/src/oracle.rs:
