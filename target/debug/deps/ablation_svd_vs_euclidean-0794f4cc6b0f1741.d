/root/repo/target/debug/deps/ablation_svd_vs_euclidean-0794f4cc6b0f1741.d: crates/bench/src/bin/ablation_svd_vs_euclidean.rs

/root/repo/target/debug/deps/ablation_svd_vs_euclidean-0794f4cc6b0f1741: crates/bench/src/bin/ablation_svd_vs_euclidean.rs

crates/bench/src/bin/ablation_svd_vs_euclidean.rs:
