/root/repo/target/debug/deps/property_tests-23a8003d0f449782.d: crates/relational/tests/property_tests.rs

/root/repo/target/debug/deps/property_tests-23a8003d0f449782: crates/relational/tests/property_tests.rs

crates/relational/tests/property_tests.rs:
