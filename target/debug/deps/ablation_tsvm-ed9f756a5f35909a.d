/root/repo/target/debug/deps/ablation_tsvm-ed9f756a5f35909a.d: crates/bench/src/bin/ablation_tsvm.rs Cargo.toml

/root/repo/target/debug/deps/libablation_tsvm-ed9f756a5f35909a.rmeta: crates/bench/src/bin/ablation_tsvm.rs Cargo.toml

crates/bench/src/bin/ablation_tsvm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
