/root/repo/target/debug/deps/mlkit-db95ce63143dafe6.d: crates/mlkit/src/lib.rs crates/mlkit/src/dataset.rs crates/mlkit/src/error.rs crates/mlkit/src/kernel.rs crates/mlkit/src/linalg.rs crates/mlkit/src/lsi.rs crates/mlkit/src/metrics.rs crates/mlkit/src/svm/mod.rs crates/mlkit/src/svm/classifier.rs crates/mlkit/src/svm/svr.rs crates/mlkit/src/svm/tsvm.rs

/root/repo/target/debug/deps/libmlkit-db95ce63143dafe6.rlib: crates/mlkit/src/lib.rs crates/mlkit/src/dataset.rs crates/mlkit/src/error.rs crates/mlkit/src/kernel.rs crates/mlkit/src/linalg.rs crates/mlkit/src/lsi.rs crates/mlkit/src/metrics.rs crates/mlkit/src/svm/mod.rs crates/mlkit/src/svm/classifier.rs crates/mlkit/src/svm/svr.rs crates/mlkit/src/svm/tsvm.rs

/root/repo/target/debug/deps/libmlkit-db95ce63143dafe6.rmeta: crates/mlkit/src/lib.rs crates/mlkit/src/dataset.rs crates/mlkit/src/error.rs crates/mlkit/src/kernel.rs crates/mlkit/src/linalg.rs crates/mlkit/src/lsi.rs crates/mlkit/src/metrics.rs crates/mlkit/src/svm/mod.rs crates/mlkit/src/svm/classifier.rs crates/mlkit/src/svm/svr.rs crates/mlkit/src/svm/tsvm.rs

crates/mlkit/src/lib.rs:
crates/mlkit/src/dataset.rs:
crates/mlkit/src/error.rs:
crates/mlkit/src/kernel.rs:
crates/mlkit/src/linalg.rs:
crates/mlkit/src/lsi.rs:
crates/mlkit/src/metrics.rs:
crates/mlkit/src/svm/mod.rs:
crates/mlkit/src/svm/classifier.rs:
crates/mlkit/src/svm/svr.rs:
crates/mlkit/src/svm/tsvm.rs:
