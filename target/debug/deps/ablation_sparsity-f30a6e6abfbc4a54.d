/root/repo/target/debug/deps/ablation_sparsity-f30a6e6abfbc4a54.d: crates/bench/src/bin/ablation_sparsity.rs

/root/repo/target/debug/deps/ablation_sparsity-f30a6e6abfbc4a54: crates/bench/src/bin/ablation_sparsity.rs

crates/bench/src/bin/ablation_sparsity.rs:
