/root/repo/target/debug/deps/property_tests-a7efed9fb93dc610.d: crates/datagen/tests/property_tests.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_tests-a7efed9fb93dc610.rmeta: crates/datagen/tests/property_tests.rs Cargo.toml

crates/datagen/tests/property_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
