/root/repo/target/debug/deps/table4_hit_audit-900d051d7f36668e.d: crates/bench/src/bin/table4_hit_audit.rs

/root/repo/target/debug/deps/table4_hit_audit-900d051d7f36668e: crates/bench/src/bin/table4_hit_audit.rs

crates/bench/src/bin/table4_hit_audit.rs:
