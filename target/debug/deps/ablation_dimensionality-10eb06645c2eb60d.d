/root/repo/target/debug/deps/ablation_dimensionality-10eb06645c2eb60d.d: crates/bench/src/bin/ablation_dimensionality.rs

/root/repo/target/debug/deps/ablation_dimensionality-10eb06645c2eb60d: crates/bench/src/bin/ablation_dimensionality.rs

crates/bench/src/bin/ablation_dimensionality.rs:
