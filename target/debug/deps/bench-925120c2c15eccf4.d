/root/repo/target/debug/deps/bench-925120c2c15eccf4.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-925120c2c15eccf4.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
