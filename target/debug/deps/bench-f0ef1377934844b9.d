/root/repo/target/debug/deps/bench-f0ef1377934844b9.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-f0ef1377934844b9.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-f0ef1377934844b9.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
