/root/repo/target/debug/deps/table2_nearest_neighbors-4ebd92162c9d961b.d: crates/bench/src/bin/table2_nearest_neighbors.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_nearest_neighbors-4ebd92162c9d961b.rmeta: crates/bench/src/bin/table2_nearest_neighbors.rs Cargo.toml

crates/bench/src/bin/table2_nearest_neighbors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
