/root/repo/target/debug/deps/figure1_space_2d-98343dacf78cb350.d: crates/bench/src/bin/figure1_space_2d.rs Cargo.toml

/root/repo/target/debug/deps/libfigure1_space_2d-98343dacf78cb350.rmeta: crates/bench/src/bin/figure1_space_2d.rs Cargo.toml

crates/bench/src/bin/figure1_space_2d.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
