/root/repo/target/debug/deps/perceptual-6a3e2f62a45077d9.d: crates/perceptual/src/lib.rs crates/perceptual/src/cross_validation.rs crates/perceptual/src/error.rs crates/perceptual/src/euclidean.rs crates/perceptual/src/ratings.rs crates/perceptual/src/space.rs crates/perceptual/src/svd.rs

/root/repo/target/debug/deps/perceptual-6a3e2f62a45077d9: crates/perceptual/src/lib.rs crates/perceptual/src/cross_validation.rs crates/perceptual/src/error.rs crates/perceptual/src/euclidean.rs crates/perceptual/src/ratings.rs crates/perceptual/src/space.rs crates/perceptual/src/svd.rs

crates/perceptual/src/lib.rs:
crates/perceptual/src/cross_validation.rs:
crates/perceptual/src/error.rs:
crates/perceptual/src/euclidean.rs:
crates/perceptual/src/ratings.rs:
crates/perceptual/src/space.rs:
crates/perceptual/src/svd.rs:
