/root/repo/target/debug/deps/pearson_consensus-30fab1a9de50bcbb.d: crates/bench/src/bin/pearson_consensus.rs Cargo.toml

/root/repo/target/debug/deps/libpearson_consensus-30fab1a9de50bcbb.rmeta: crates/bench/src/bin/pearson_consensus.rs Cargo.toml

crates/bench/src/bin/pearson_consensus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
