/root/repo/target/debug/deps/perceptual-6304b3fc1cf00015.d: crates/perceptual/src/lib.rs crates/perceptual/src/cross_validation.rs crates/perceptual/src/error.rs crates/perceptual/src/euclidean.rs crates/perceptual/src/ratings.rs crates/perceptual/src/space.rs crates/perceptual/src/svd.rs Cargo.toml

/root/repo/target/debug/deps/libperceptual-6304b3fc1cf00015.rmeta: crates/perceptual/src/lib.rs crates/perceptual/src/cross_validation.rs crates/perceptual/src/error.rs crates/perceptual/src/euclidean.rs crates/perceptual/src/ratings.rs crates/perceptual/src/space.rs crates/perceptual/src/svd.rs Cargo.toml

crates/perceptual/src/lib.rs:
crates/perceptual/src/cross_validation.rs:
crates/perceptual/src/error.rs:
crates/perceptual/src/euclidean.rs:
crates/perceptual/src/ratings.rs:
crates/perceptual/src/space.rs:
crates/perceptual/src/svd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
