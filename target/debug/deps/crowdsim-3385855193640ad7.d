/root/repo/target/debug/deps/crowdsim-3385855193640ad7.d: crates/crowdsim/src/lib.rs crates/crowdsim/src/aggregate.rs crates/crowdsim/src/error.rs crates/crowdsim/src/hit.rs crates/crowdsim/src/oracle.rs crates/crowdsim/src/platform.rs crates/crowdsim/src/regimes.rs crates/crowdsim/src/worker.rs

/root/repo/target/debug/deps/crowdsim-3385855193640ad7: crates/crowdsim/src/lib.rs crates/crowdsim/src/aggregate.rs crates/crowdsim/src/error.rs crates/crowdsim/src/hit.rs crates/crowdsim/src/oracle.rs crates/crowdsim/src/platform.rs crates/crowdsim/src/regimes.rs crates/crowdsim/src/worker.rs

crates/crowdsim/src/lib.rs:
crates/crowdsim/src/aggregate.rs:
crates/crowdsim/src/error.rs:
crates/crowdsim/src/hit.rs:
crates/crowdsim/src/oracle.rs:
crates/crowdsim/src/platform.rs:
crates/crowdsim/src/regimes.rs:
crates/crowdsim/src/worker.rs:
