/root/repo/target/debug/deps/mlkit-ef617b39cd6cba80.d: crates/mlkit/src/lib.rs crates/mlkit/src/dataset.rs crates/mlkit/src/error.rs crates/mlkit/src/kernel.rs crates/mlkit/src/linalg.rs crates/mlkit/src/lsi.rs crates/mlkit/src/metrics.rs crates/mlkit/src/svm/mod.rs crates/mlkit/src/svm/classifier.rs crates/mlkit/src/svm/svr.rs crates/mlkit/src/svm/tsvm.rs Cargo.toml

/root/repo/target/debug/deps/libmlkit-ef617b39cd6cba80.rmeta: crates/mlkit/src/lib.rs crates/mlkit/src/dataset.rs crates/mlkit/src/error.rs crates/mlkit/src/kernel.rs crates/mlkit/src/linalg.rs crates/mlkit/src/lsi.rs crates/mlkit/src/metrics.rs crates/mlkit/src/svm/mod.rs crates/mlkit/src/svm/classifier.rs crates/mlkit/src/svm/svr.rs crates/mlkit/src/svm/tsvm.rs Cargo.toml

crates/mlkit/src/lib.rs:
crates/mlkit/src/dataset.rs:
crates/mlkit/src/error.rs:
crates/mlkit/src/kernel.rs:
crates/mlkit/src/linalg.rs:
crates/mlkit/src/lsi.rs:
crates/mlkit/src/metrics.rs:
crates/mlkit/src/svm/mod.rs:
crates/mlkit/src/svm/classifier.rs:
crates/mlkit/src/svm/svr.rs:
crates/mlkit/src/svm/tsvm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
