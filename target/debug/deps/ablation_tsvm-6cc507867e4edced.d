/root/repo/target/debug/deps/ablation_tsvm-6cc507867e4edced.d: crates/bench/src/bin/ablation_tsvm.rs

/root/repo/target/debug/deps/ablation_tsvm-6cc507867e4edced: crates/bench/src/bin/ablation_tsvm.rs

crates/bench/src/bin/ablation_tsvm.rs:
