/root/repo/target/debug/deps/planned_expansion-c01ff65c91320759.d: tests/planned_expansion.rs

/root/repo/target/debug/deps/planned_expansion-c01ff65c91320759: tests/planned_expansion.rs

tests/planned_expansion.rs:
