/root/repo/target/debug/deps/relational-f5bdc4e032191224.d: crates/relational/src/lib.rs crates/relational/src/catalog.rs crates/relational/src/error.rs crates/relational/src/executor.rs crates/relational/src/expr.rs crates/relational/src/schema.rs crates/relational/src/sql/mod.rs crates/relational/src/sql/lexer.rs crates/relational/src/sql/parser.rs crates/relational/src/table.rs crates/relational/src/value.rs

/root/repo/target/debug/deps/librelational-f5bdc4e032191224.rlib: crates/relational/src/lib.rs crates/relational/src/catalog.rs crates/relational/src/error.rs crates/relational/src/executor.rs crates/relational/src/expr.rs crates/relational/src/schema.rs crates/relational/src/sql/mod.rs crates/relational/src/sql/lexer.rs crates/relational/src/sql/parser.rs crates/relational/src/table.rs crates/relational/src/value.rs

/root/repo/target/debug/deps/librelational-f5bdc4e032191224.rmeta: crates/relational/src/lib.rs crates/relational/src/catalog.rs crates/relational/src/error.rs crates/relational/src/executor.rs crates/relational/src/expr.rs crates/relational/src/schema.rs crates/relational/src/sql/mod.rs crates/relational/src/sql/lexer.rs crates/relational/src/sql/parser.rs crates/relational/src/table.rs crates/relational/src/value.rs

crates/relational/src/lib.rs:
crates/relational/src/catalog.rs:
crates/relational/src/error.rs:
crates/relational/src/executor.rs:
crates/relational/src/expr.rs:
crates/relational/src/schema.rs:
crates/relational/src/sql/mod.rs:
crates/relational/src/sql/lexer.rs:
crates/relational/src/sql/parser.rs:
crates/relational/src/table.rs:
crates/relational/src/value.rs:
