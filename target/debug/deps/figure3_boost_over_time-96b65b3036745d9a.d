/root/repo/target/debug/deps/figure3_boost_over_time-96b65b3036745d9a.d: crates/bench/src/bin/figure3_boost_over_time.rs Cargo.toml

/root/repo/target/debug/deps/libfigure3_boost_over_time-96b65b3036745d9a.rmeta: crates/bench/src/bin/figure3_boost_over_time.rs Cargo.toml

crates/bench/src/bin/figure3_boost_over_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
