/root/repo/target/debug/deps/table6_boardgames-33c0e1c786a5b112.d: crates/bench/src/bin/table6_boardgames.rs Cargo.toml

/root/repo/target/debug/deps/libtable6_boardgames-33c0e1c786a5b112.rmeta: crates/bench/src/bin/table6_boardgames.rs Cargo.toml

crates/bench/src/bin/table6_boardgames.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
