/root/repo/target/debug/deps/ablation_sparsity-d22f920b4aa7980a.d: crates/bench/src/bin/ablation_sparsity.rs Cargo.toml

/root/repo/target/debug/deps/libablation_sparsity-d22f920b4aa7980a.rmeta: crates/bench/src/bin/ablation_sparsity.rs Cargo.toml

crates/bench/src/bin/ablation_sparsity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
