/root/repo/target/debug/deps/property_tests-7dd4dba332ed76db.d: crates/mlkit/tests/property_tests.rs

/root/repo/target/debug/deps/property_tests-7dd4dba332ed76db: crates/mlkit/tests/property_tests.rs

crates/mlkit/tests/property_tests.rs:
