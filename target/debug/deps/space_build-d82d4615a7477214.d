/root/repo/target/debug/deps/space_build-d82d4615a7477214.d: crates/bench/benches/space_build.rs Cargo.toml

/root/repo/target/debug/deps/libspace_build-d82d4615a7477214.rmeta: crates/bench/benches/space_build.rs Cargo.toml

crates/bench/benches/space_build.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
