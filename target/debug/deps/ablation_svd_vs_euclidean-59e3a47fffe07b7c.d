/root/repo/target/debug/deps/ablation_svd_vs_euclidean-59e3a47fffe07b7c.d: crates/bench/src/bin/ablation_svd_vs_euclidean.rs Cargo.toml

/root/repo/target/debug/deps/libablation_svd_vs_euclidean-59e3a47fffe07b7c.rmeta: crates/bench/src/bin/ablation_svd_vs_euclidean.rs Cargo.toml

crates/bench/src/bin/ablation_svd_vs_euclidean.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
