/root/repo/target/debug/deps/table4_hit_audit-3e5303d890ec8525.d: crates/bench/src/bin/table4_hit_audit.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_hit_audit-3e5303d890ec8525.rmeta: crates/bench/src/bin/table4_hit_audit.rs Cargo.toml

crates/bench/src/bin/table4_hit_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
