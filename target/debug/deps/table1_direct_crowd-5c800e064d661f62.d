/root/repo/target/debug/deps/table1_direct_crowd-5c800e064d661f62.d: crates/bench/src/bin/table1_direct_crowd.rs

/root/repo/target/debug/deps/table1_direct_crowd-5c800e064d661f62: crates/bench/src/bin/table1_direct_crowd.rs

crates/bench/src/bin/table1_direct_crowd.rs:
