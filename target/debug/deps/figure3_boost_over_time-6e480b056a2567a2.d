/root/repo/target/debug/deps/figure3_boost_over_time-6e480b056a2567a2.d: crates/bench/src/bin/figure3_boost_over_time.rs

/root/repo/target/debug/deps/figure3_boost_over_time-6e480b056a2567a2: crates/bench/src/bin/figure3_boost_over_time.rs

crates/bench/src/bin/figure3_boost_over_time.rs:
