/root/repo/target/debug/deps/table6_boardgames-8a8c8142a39034b9.d: crates/bench/src/bin/table6_boardgames.rs

/root/repo/target/debug/deps/table6_boardgames-8a8c8142a39034b9: crates/bench/src/bin/table6_boardgames.rs

crates/bench/src/bin/table6_boardgames.rs:
