/root/repo/target/debug/deps/datagen-02ae457807cc1b07.d: crates/datagen/src/lib.rs crates/datagen/src/domain.rs crates/datagen/src/experts.rs crates/datagen/src/generator.rs crates/datagen/src/metadata.rs crates/datagen/src/oracle.rs Cargo.toml

/root/repo/target/debug/deps/libdatagen-02ae457807cc1b07.rmeta: crates/datagen/src/lib.rs crates/datagen/src/domain.rs crates/datagen/src/experts.rs crates/datagen/src/generator.rs crates/datagen/src/metadata.rs crates/datagen/src/oracle.rs Cargo.toml

crates/datagen/src/lib.rs:
crates/datagen/src/domain.rs:
crates/datagen/src/experts.rs:
crates/datagen/src/generator.rs:
crates/datagen/src/metadata.rs:
crates/datagen/src/oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
