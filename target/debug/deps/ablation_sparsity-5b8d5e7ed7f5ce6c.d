/root/repo/target/debug/deps/ablation_sparsity-5b8d5e7ed7f5ce6c.d: crates/bench/src/bin/ablation_sparsity.rs Cargo.toml

/root/repo/target/debug/deps/libablation_sparsity-5b8d5e7ed7f5ce6c.rmeta: crates/bench/src/bin/ablation_sparsity.rs Cargo.toml

crates/bench/src/bin/ablation_sparsity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
