/root/repo/target/debug/deps/table6_boardgames-aa0de77c233a4754.d: crates/bench/src/bin/table6_boardgames.rs Cargo.toml

/root/repo/target/debug/deps/libtable6_boardgames-aa0de77c233a4754.rmeta: crates/bench/src/bin/table6_boardgames.rs Cargo.toml

crates/bench/src/bin/table6_boardgames.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
