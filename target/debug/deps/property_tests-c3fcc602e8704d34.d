/root/repo/target/debug/deps/property_tests-c3fcc602e8704d34.d: crates/crowdsim/tests/property_tests.rs

/root/repo/target/debug/deps/property_tests-c3fcc602e8704d34: crates/crowdsim/tests/property_tests.rs

crates/crowdsim/tests/property_tests.rs:
