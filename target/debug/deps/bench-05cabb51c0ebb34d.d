/root/repo/target/debug/deps/bench-05cabb51c0ebb34d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-05cabb51c0ebb34d: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
