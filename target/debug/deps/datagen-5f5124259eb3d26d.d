/root/repo/target/debug/deps/datagen-5f5124259eb3d26d.d: crates/datagen/src/lib.rs crates/datagen/src/domain.rs crates/datagen/src/experts.rs crates/datagen/src/generator.rs crates/datagen/src/metadata.rs crates/datagen/src/oracle.rs Cargo.toml

/root/repo/target/debug/deps/libdatagen-5f5124259eb3d26d.rmeta: crates/datagen/src/lib.rs crates/datagen/src/domain.rs crates/datagen/src/experts.rs crates/datagen/src/generator.rs crates/datagen/src/metadata.rs crates/datagen/src/oracle.rs Cargo.toml

crates/datagen/src/lib.rs:
crates/datagen/src/domain.rs:
crates/datagen/src/experts.rs:
crates/datagen/src/generator.rs:
crates/datagen/src/metadata.rs:
crates/datagen/src/oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
