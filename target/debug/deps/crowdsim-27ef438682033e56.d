/root/repo/target/debug/deps/crowdsim-27ef438682033e56.d: crates/crowdsim/src/lib.rs crates/crowdsim/src/aggregate.rs crates/crowdsim/src/error.rs crates/crowdsim/src/hit.rs crates/crowdsim/src/oracle.rs crates/crowdsim/src/platform.rs crates/crowdsim/src/regimes.rs crates/crowdsim/src/worker.rs

/root/repo/target/debug/deps/libcrowdsim-27ef438682033e56.rlib: crates/crowdsim/src/lib.rs crates/crowdsim/src/aggregate.rs crates/crowdsim/src/error.rs crates/crowdsim/src/hit.rs crates/crowdsim/src/oracle.rs crates/crowdsim/src/platform.rs crates/crowdsim/src/regimes.rs crates/crowdsim/src/worker.rs

/root/repo/target/debug/deps/libcrowdsim-27ef438682033e56.rmeta: crates/crowdsim/src/lib.rs crates/crowdsim/src/aggregate.rs crates/crowdsim/src/error.rs crates/crowdsim/src/hit.rs crates/crowdsim/src/oracle.rs crates/crowdsim/src/platform.rs crates/crowdsim/src/regimes.rs crates/crowdsim/src/worker.rs

crates/crowdsim/src/lib.rs:
crates/crowdsim/src/aggregate.rs:
crates/crowdsim/src/error.rs:
crates/crowdsim/src/hit.rs:
crates/crowdsim/src/oracle.rs:
crates/crowdsim/src/platform.rs:
crates/crowdsim/src/regimes.rs:
crates/crowdsim/src/worker.rs:
