/root/repo/target/debug/deps/perceptual-3ac95756f5cc27c2.d: crates/perceptual/src/lib.rs crates/perceptual/src/cross_validation.rs crates/perceptual/src/error.rs crates/perceptual/src/euclidean.rs crates/perceptual/src/ratings.rs crates/perceptual/src/space.rs crates/perceptual/src/svd.rs

/root/repo/target/debug/deps/libperceptual-3ac95756f5cc27c2.rlib: crates/perceptual/src/lib.rs crates/perceptual/src/cross_validation.rs crates/perceptual/src/error.rs crates/perceptual/src/euclidean.rs crates/perceptual/src/ratings.rs crates/perceptual/src/space.rs crates/perceptual/src/svd.rs

/root/repo/target/debug/deps/libperceptual-3ac95756f5cc27c2.rmeta: crates/perceptual/src/lib.rs crates/perceptual/src/cross_validation.rs crates/perceptual/src/error.rs crates/perceptual/src/euclidean.rs crates/perceptual/src/ratings.rs crates/perceptual/src/space.rs crates/perceptual/src/svd.rs

crates/perceptual/src/lib.rs:
crates/perceptual/src/cross_validation.rs:
crates/perceptual/src/error.rs:
crates/perceptual/src/euclidean.rs:
crates/perceptual/src/ratings.rs:
crates/perceptual/src/space.rs:
crates/perceptual/src/svd.rs:
