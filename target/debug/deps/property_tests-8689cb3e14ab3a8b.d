/root/repo/target/debug/deps/property_tests-8689cb3e14ab3a8b.d: crates/perceptual/tests/property_tests.rs

/root/repo/target/debug/deps/property_tests-8689cb3e14ab3a8b: crates/perceptual/tests/property_tests.rs

crates/perceptual/tests/property_tests.rs:
