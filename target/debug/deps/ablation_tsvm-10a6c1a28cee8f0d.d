/root/repo/target/debug/deps/ablation_tsvm-10a6c1a28cee8f0d.d: crates/bench/src/bin/ablation_tsvm.rs Cargo.toml

/root/repo/target/debug/deps/libablation_tsvm-10a6c1a28cee8f0d.rmeta: crates/bench/src/bin/ablation_tsvm.rs Cargo.toml

crates/bench/src/bin/ablation_tsvm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
