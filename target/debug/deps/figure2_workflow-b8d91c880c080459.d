/root/repo/target/debug/deps/figure2_workflow-b8d91c880c080459.d: crates/bench/src/bin/figure2_workflow.rs Cargo.toml

/root/repo/target/debug/deps/libfigure2_workflow-b8d91c880c080459.rmeta: crates/bench/src/bin/figure2_workflow.rs Cargo.toml

crates/bench/src/bin/figure2_workflow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
