/root/repo/target/debug/deps/crowddb-7fb1833cacf400ca.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrowddb-7fb1833cacf400ca.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
