/root/repo/target/debug/deps/ablation_svd_vs_euclidean-c7807035dddfa799.d: crates/bench/src/bin/ablation_svd_vs_euclidean.rs Cargo.toml

/root/repo/target/debug/deps/libablation_svd_vs_euclidean-c7807035dddfa799.rmeta: crates/bench/src/bin/ablation_svd_vs_euclidean.rs Cargo.toml

crates/bench/src/bin/ablation_svd_vs_euclidean.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
