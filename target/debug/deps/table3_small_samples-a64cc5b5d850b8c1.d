/root/repo/target/debug/deps/table3_small_samples-a64cc5b5d850b8c1.d: crates/bench/src/bin/table3_small_samples.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_small_samples-a64cc5b5d850b8c1.rmeta: crates/bench/src/bin/table3_small_samples.rs Cargo.toml

crates/bench/src/bin/table3_small_samples.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
