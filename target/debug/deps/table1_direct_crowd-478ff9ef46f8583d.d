/root/repo/target/debug/deps/table1_direct_crowd-478ff9ef46f8583d.d: crates/bench/src/bin/table1_direct_crowd.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_direct_crowd-478ff9ef46f8583d.rmeta: crates/bench/src/bin/table1_direct_crowd.rs Cargo.toml

crates/bench/src/bin/table1_direct_crowd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
