/root/repo/target/debug/deps/table1_direct_crowd-cb37bf782e178dc1.d: crates/bench/src/bin/table1_direct_crowd.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_direct_crowd-cb37bf782e178dc1.rmeta: crates/bench/src/bin/table1_direct_crowd.rs Cargo.toml

crates/bench/src/bin/table1_direct_crowd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
