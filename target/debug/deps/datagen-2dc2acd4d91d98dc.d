/root/repo/target/debug/deps/datagen-2dc2acd4d91d98dc.d: crates/datagen/src/lib.rs crates/datagen/src/domain.rs crates/datagen/src/experts.rs crates/datagen/src/generator.rs crates/datagen/src/metadata.rs crates/datagen/src/oracle.rs

/root/repo/target/debug/deps/libdatagen-2dc2acd4d91d98dc.rlib: crates/datagen/src/lib.rs crates/datagen/src/domain.rs crates/datagen/src/experts.rs crates/datagen/src/generator.rs crates/datagen/src/metadata.rs crates/datagen/src/oracle.rs

/root/repo/target/debug/deps/libdatagen-2dc2acd4d91d98dc.rmeta: crates/datagen/src/lib.rs crates/datagen/src/domain.rs crates/datagen/src/experts.rs crates/datagen/src/generator.rs crates/datagen/src/metadata.rs crates/datagen/src/oracle.rs

crates/datagen/src/lib.rs:
crates/datagen/src/domain.rs:
crates/datagen/src/experts.rs:
crates/datagen/src/generator.rs:
crates/datagen/src/metadata.rs:
crates/datagen/src/oracle.rs:
