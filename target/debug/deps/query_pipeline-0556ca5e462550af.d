/root/repo/target/debug/deps/query_pipeline-0556ca5e462550af.d: crates/bench/benches/query_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libquery_pipeline-0556ca5e462550af.rmeta: crates/bench/benches/query_pipeline.rs Cargo.toml

crates/bench/benches/query_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
