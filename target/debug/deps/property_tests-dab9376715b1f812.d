/root/repo/target/debug/deps/property_tests-dab9376715b1f812.d: crates/mlkit/tests/property_tests.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_tests-dab9376715b1f812.rmeta: crates/mlkit/tests/property_tests.rs Cargo.toml

crates/mlkit/tests/property_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
