/root/repo/target/debug/deps/table4_hit_audit-fb8467a920a323c0.d: crates/bench/src/bin/table4_hit_audit.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_hit_audit-fb8467a920a323c0.rmeta: crates/bench/src/bin/table4_hit_audit.rs Cargo.toml

crates/bench/src/bin/table4_hit_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
