/root/repo/target/debug/deps/knn-19222b7e79bd85aa.d: crates/bench/benches/knn.rs Cargo.toml

/root/repo/target/debug/deps/libknn-19222b7e79bd85aa.rmeta: crates/bench/benches/knn.rs Cargo.toml

crates/bench/benches/knn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
