/root/repo/target/debug/examples/quickstart-8bc72251379f4120.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-8bc72251379f4120: examples/quickstart.rs

examples/quickstart.rs:
