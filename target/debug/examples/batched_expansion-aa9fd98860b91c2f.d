/root/repo/target/debug/examples/batched_expansion-aa9fd98860b91c2f.d: examples/batched_expansion.rs Cargo.toml

/root/repo/target/debug/examples/libbatched_expansion-aa9fd98860b91c2f.rmeta: examples/batched_expansion.rs Cargo.toml

examples/batched_expansion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
