/root/repo/target/debug/examples/movie_schema_expansion-afe97e1322ca5110.d: examples/movie_schema_expansion.rs Cargo.toml

/root/repo/target/debug/examples/libmovie_schema_expansion-afe97e1322ca5110.rmeta: examples/movie_schema_expansion.rs Cargo.toml

examples/movie_schema_expansion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
