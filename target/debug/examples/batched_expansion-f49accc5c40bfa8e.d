/root/repo/target/debug/examples/batched_expansion-f49accc5c40bfa8e.d: examples/batched_expansion.rs

/root/repo/target/debug/examples/batched_expansion-f49accc5c40bfa8e: examples/batched_expansion.rs

examples/batched_expansion.rs:
