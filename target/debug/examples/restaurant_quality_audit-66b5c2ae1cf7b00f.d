/root/repo/target/debug/examples/restaurant_quality_audit-66b5c2ae1cf7b00f.d: examples/restaurant_quality_audit.rs Cargo.toml

/root/repo/target/debug/examples/librestaurant_quality_audit-66b5c2ae1cf7b00f.rmeta: examples/restaurant_quality_audit.rs Cargo.toml

examples/restaurant_quality_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
