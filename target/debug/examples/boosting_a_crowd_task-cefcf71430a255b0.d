/root/repo/target/debug/examples/boosting_a_crowd_task-cefcf71430a255b0.d: examples/boosting_a_crowd_task.rs Cargo.toml

/root/repo/target/debug/examples/libboosting_a_crowd_task-cefcf71430a255b0.rmeta: examples/boosting_a_crowd_task.rs Cargo.toml

examples/boosting_a_crowd_task.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
