/root/repo/target/debug/examples/boosting_a_crowd_task-8f83e1e01ac5d1e9.d: examples/boosting_a_crowd_task.rs

/root/repo/target/debug/examples/boosting_a_crowd_task-8f83e1e01ac5d1e9: examples/boosting_a_crowd_task.rs

examples/boosting_a_crowd_task.rs:
