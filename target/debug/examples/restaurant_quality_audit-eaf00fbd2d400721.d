/root/repo/target/debug/examples/restaurant_quality_audit-eaf00fbd2d400721.d: examples/restaurant_quality_audit.rs

/root/repo/target/debug/examples/restaurant_quality_audit-eaf00fbd2d400721: examples/restaurant_quality_audit.rs

examples/restaurant_quality_audit.rs:
