/root/repo/target/debug/examples/quickstart-1d3976ed28b0f1d2.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-1d3976ed28b0f1d2.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
