/root/repo/target/debug/examples/movie_schema_expansion-64f519a7b599be46.d: examples/movie_schema_expansion.rs

/root/repo/target/debug/examples/movie_schema_expansion-64f519a7b599be46: examples/movie_schema_expansion.rs

examples/movie_schema_expansion.rs:
