/root/repo/target/debug/examples/__probe-35b3650ce426de5d.d: examples/__probe.rs

/root/repo/target/debug/examples/__probe-35b3650ce426de5d: examples/__probe.rs

examples/__probe.rs:
