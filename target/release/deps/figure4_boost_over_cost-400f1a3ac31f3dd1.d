/root/repo/target/release/deps/figure4_boost_over_cost-400f1a3ac31f3dd1.d: crates/bench/src/bin/figure4_boost_over_cost.rs

/root/repo/target/release/deps/figure4_boost_over_cost-400f1a3ac31f3dd1: crates/bench/src/bin/figure4_boost_over_cost.rs

crates/bench/src/bin/figure4_boost_over_cost.rs:
