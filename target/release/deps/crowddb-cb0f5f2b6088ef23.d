/root/repo/target/release/deps/crowddb-cb0f5f2b6088ef23.d: src/lib.rs

/root/repo/target/release/deps/libcrowddb-cb0f5f2b6088ef23.rlib: src/lib.rs

/root/repo/target/release/deps/libcrowddb-cb0f5f2b6088ef23.rmeta: src/lib.rs

src/lib.rs:
