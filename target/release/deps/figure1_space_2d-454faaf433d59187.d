/root/repo/target/release/deps/figure1_space_2d-454faaf433d59187.d: crates/bench/src/bin/figure1_space_2d.rs

/root/repo/target/release/deps/figure1_space_2d-454faaf433d59187: crates/bench/src/bin/figure1_space_2d.rs

crates/bench/src/bin/figure1_space_2d.rs:
