/root/repo/target/release/deps/ablation_tsvm-c9d01d2c033ced5f.d: crates/bench/src/bin/ablation_tsvm.rs

/root/repo/target/release/deps/ablation_tsvm-c9d01d2c033ced5f: crates/bench/src/bin/ablation_tsvm.rs

crates/bench/src/bin/ablation_tsvm.rs:
