/root/repo/target/release/deps/figure2_workflow-7b1df9b94a74f207.d: crates/bench/src/bin/figure2_workflow.rs

/root/repo/target/release/deps/figure2_workflow-7b1df9b94a74f207: crates/bench/src/bin/figure2_workflow.rs

crates/bench/src/bin/figure2_workflow.rs:
