/root/repo/target/release/deps/datagen-bfc050e0238f8c9f.d: crates/datagen/src/lib.rs crates/datagen/src/domain.rs crates/datagen/src/experts.rs crates/datagen/src/generator.rs crates/datagen/src/metadata.rs crates/datagen/src/oracle.rs

/root/repo/target/release/deps/libdatagen-bfc050e0238f8c9f.rlib: crates/datagen/src/lib.rs crates/datagen/src/domain.rs crates/datagen/src/experts.rs crates/datagen/src/generator.rs crates/datagen/src/metadata.rs crates/datagen/src/oracle.rs

/root/repo/target/release/deps/libdatagen-bfc050e0238f8c9f.rmeta: crates/datagen/src/lib.rs crates/datagen/src/domain.rs crates/datagen/src/experts.rs crates/datagen/src/generator.rs crates/datagen/src/metadata.rs crates/datagen/src/oracle.rs

crates/datagen/src/lib.rs:
crates/datagen/src/domain.rs:
crates/datagen/src/experts.rs:
crates/datagen/src/generator.rs:
crates/datagen/src/metadata.rs:
crates/datagen/src/oracle.rs:
