/root/repo/target/release/deps/table3_small_samples-cd0eb6053774a2c0.d: crates/bench/src/bin/table3_small_samples.rs

/root/repo/target/release/deps/table3_small_samples-cd0eb6053774a2c0: crates/bench/src/bin/table3_small_samples.rs

crates/bench/src/bin/table3_small_samples.rs:
