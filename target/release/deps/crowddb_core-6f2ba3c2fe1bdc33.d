/root/repo/target/release/deps/crowddb_core-6f2ba3c2fe1bdc33.d: crates/core/src/lib.rs crates/core/src/audit.rs crates/core/src/boost.rs crates/core/src/cache.rs crates/core/src/crowd_source.rs crates/core/src/db.rs crates/core/src/error.rs crates/core/src/expansion.rs crates/core/src/extraction.rs crates/core/src/materialize.rs crates/core/src/planner.rs crates/core/src/repair.rs

/root/repo/target/release/deps/libcrowddb_core-6f2ba3c2fe1bdc33.rlib: crates/core/src/lib.rs crates/core/src/audit.rs crates/core/src/boost.rs crates/core/src/cache.rs crates/core/src/crowd_source.rs crates/core/src/db.rs crates/core/src/error.rs crates/core/src/expansion.rs crates/core/src/extraction.rs crates/core/src/materialize.rs crates/core/src/planner.rs crates/core/src/repair.rs

/root/repo/target/release/deps/libcrowddb_core-6f2ba3c2fe1bdc33.rmeta: crates/core/src/lib.rs crates/core/src/audit.rs crates/core/src/boost.rs crates/core/src/cache.rs crates/core/src/crowd_source.rs crates/core/src/db.rs crates/core/src/error.rs crates/core/src/expansion.rs crates/core/src/extraction.rs crates/core/src/materialize.rs crates/core/src/planner.rs crates/core/src/repair.rs

crates/core/src/lib.rs:
crates/core/src/audit.rs:
crates/core/src/boost.rs:
crates/core/src/cache.rs:
crates/core/src/crowd_source.rs:
crates/core/src/db.rs:
crates/core/src/error.rs:
crates/core/src/expansion.rs:
crates/core/src/extraction.rs:
crates/core/src/materialize.rs:
crates/core/src/planner.rs:
crates/core/src/repair.rs:
