/root/repo/target/release/deps/figure3_boost_over_time-b9ed63a31c74efec.d: crates/bench/src/bin/figure3_boost_over_time.rs

/root/repo/target/release/deps/figure3_boost_over_time-b9ed63a31c74efec: crates/bench/src/bin/figure3_boost_over_time.rs

crates/bench/src/bin/figure3_boost_over_time.rs:
