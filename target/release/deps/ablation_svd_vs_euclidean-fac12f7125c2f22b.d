/root/repo/target/release/deps/ablation_svd_vs_euclidean-fac12f7125c2f22b.d: crates/bench/src/bin/ablation_svd_vs_euclidean.rs

/root/repo/target/release/deps/ablation_svd_vs_euclidean-fac12f7125c2f22b: crates/bench/src/bin/ablation_svd_vs_euclidean.rs

crates/bench/src/bin/ablation_svd_vs_euclidean.rs:
