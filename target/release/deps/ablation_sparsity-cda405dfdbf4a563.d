/root/repo/target/release/deps/ablation_sparsity-cda405dfdbf4a563.d: crates/bench/src/bin/ablation_sparsity.rs

/root/repo/target/release/deps/ablation_sparsity-cda405dfdbf4a563: crates/bench/src/bin/ablation_sparsity.rs

crates/bench/src/bin/ablation_sparsity.rs:
