/root/repo/target/release/deps/ablation_dimensionality-62dc0b75bee1e3f0.d: crates/bench/src/bin/ablation_dimensionality.rs

/root/repo/target/release/deps/ablation_dimensionality-62dc0b75bee1e3f0: crates/bench/src/bin/ablation_dimensionality.rs

crates/bench/src/bin/ablation_dimensionality.rs:
