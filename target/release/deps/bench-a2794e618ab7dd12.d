/root/repo/target/release/deps/bench-a2794e618ab7dd12.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-a2794e618ab7dd12.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-a2794e618ab7dd12.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
