/root/repo/target/release/deps/table5_restaurants-a3bb30a4b5cfc14c.d: crates/bench/src/bin/table5_restaurants.rs

/root/repo/target/release/deps/table5_restaurants-a3bb30a4b5cfc14c: crates/bench/src/bin/table5_restaurants.rs

crates/bench/src/bin/table5_restaurants.rs:
