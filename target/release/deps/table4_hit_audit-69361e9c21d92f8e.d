/root/repo/target/release/deps/table4_hit_audit-69361e9c21d92f8e.d: crates/bench/src/bin/table4_hit_audit.rs

/root/repo/target/release/deps/table4_hit_audit-69361e9c21d92f8e: crates/bench/src/bin/table4_hit_audit.rs

crates/bench/src/bin/table4_hit_audit.rs:
