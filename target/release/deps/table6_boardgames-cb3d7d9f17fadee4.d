/root/repo/target/release/deps/table6_boardgames-cb3d7d9f17fadee4.d: crates/bench/src/bin/table6_boardgames.rs

/root/repo/target/release/deps/table6_boardgames-cb3d7d9f17fadee4: crates/bench/src/bin/table6_boardgames.rs

crates/bench/src/bin/table6_boardgames.rs:
