/root/repo/target/release/deps/perceptual-27aae305f7f925bc.d: crates/perceptual/src/lib.rs crates/perceptual/src/cross_validation.rs crates/perceptual/src/error.rs crates/perceptual/src/euclidean.rs crates/perceptual/src/ratings.rs crates/perceptual/src/space.rs crates/perceptual/src/svd.rs

/root/repo/target/release/deps/libperceptual-27aae305f7f925bc.rlib: crates/perceptual/src/lib.rs crates/perceptual/src/cross_validation.rs crates/perceptual/src/error.rs crates/perceptual/src/euclidean.rs crates/perceptual/src/ratings.rs crates/perceptual/src/space.rs crates/perceptual/src/svd.rs

/root/repo/target/release/deps/libperceptual-27aae305f7f925bc.rmeta: crates/perceptual/src/lib.rs crates/perceptual/src/cross_validation.rs crates/perceptual/src/error.rs crates/perceptual/src/euclidean.rs crates/perceptual/src/ratings.rs crates/perceptual/src/space.rs crates/perceptual/src/svd.rs

crates/perceptual/src/lib.rs:
crates/perceptual/src/cross_validation.rs:
crates/perceptual/src/error.rs:
crates/perceptual/src/euclidean.rs:
crates/perceptual/src/ratings.rs:
crates/perceptual/src/space.rs:
crates/perceptual/src/svd.rs:
