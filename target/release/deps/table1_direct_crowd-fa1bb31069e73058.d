/root/repo/target/release/deps/table1_direct_crowd-fa1bb31069e73058.d: crates/bench/src/bin/table1_direct_crowd.rs

/root/repo/target/release/deps/table1_direct_crowd-fa1bb31069e73058: crates/bench/src/bin/table1_direct_crowd.rs

crates/bench/src/bin/table1_direct_crowd.rs:
