/root/repo/target/release/deps/table2_nearest_neighbors-61c084b84ffc6950.d: crates/bench/src/bin/table2_nearest_neighbors.rs

/root/repo/target/release/deps/table2_nearest_neighbors-61c084b84ffc6950: crates/bench/src/bin/table2_nearest_neighbors.rs

crates/bench/src/bin/table2_nearest_neighbors.rs:
