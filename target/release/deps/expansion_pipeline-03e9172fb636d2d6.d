/root/repo/target/release/deps/expansion_pipeline-03e9172fb636d2d6.d: crates/bench/benches/expansion_pipeline.rs

/root/repo/target/release/deps/expansion_pipeline-03e9172fb636d2d6: crates/bench/benches/expansion_pipeline.rs

crates/bench/benches/expansion_pipeline.rs:
