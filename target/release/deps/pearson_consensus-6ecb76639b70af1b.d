/root/repo/target/release/deps/pearson_consensus-6ecb76639b70af1b.d: crates/bench/src/bin/pearson_consensus.rs

/root/repo/target/release/deps/pearson_consensus-6ecb76639b70af1b: crates/bench/src/bin/pearson_consensus.rs

crates/bench/src/bin/pearson_consensus.rs:
