/root/repo/target/release/deps/crowdsim-f8eb6553892be65a.d: crates/crowdsim/src/lib.rs crates/crowdsim/src/aggregate.rs crates/crowdsim/src/error.rs crates/crowdsim/src/hit.rs crates/crowdsim/src/oracle.rs crates/crowdsim/src/platform.rs crates/crowdsim/src/regimes.rs crates/crowdsim/src/worker.rs

/root/repo/target/release/deps/libcrowdsim-f8eb6553892be65a.rlib: crates/crowdsim/src/lib.rs crates/crowdsim/src/aggregate.rs crates/crowdsim/src/error.rs crates/crowdsim/src/hit.rs crates/crowdsim/src/oracle.rs crates/crowdsim/src/platform.rs crates/crowdsim/src/regimes.rs crates/crowdsim/src/worker.rs

/root/repo/target/release/deps/libcrowdsim-f8eb6553892be65a.rmeta: crates/crowdsim/src/lib.rs crates/crowdsim/src/aggregate.rs crates/crowdsim/src/error.rs crates/crowdsim/src/hit.rs crates/crowdsim/src/oracle.rs crates/crowdsim/src/platform.rs crates/crowdsim/src/regimes.rs crates/crowdsim/src/worker.rs

crates/crowdsim/src/lib.rs:
crates/crowdsim/src/aggregate.rs:
crates/crowdsim/src/error.rs:
crates/crowdsim/src/hit.rs:
crates/crowdsim/src/oracle.rs:
crates/crowdsim/src/platform.rs:
crates/crowdsim/src/regimes.rs:
crates/crowdsim/src/worker.rs:
