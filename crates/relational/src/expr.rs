//! Expressions and their evaluation.
//!
//! The evaluator implements SQL three-valued logic: comparisons against
//! `NULL` yield `NULL` (represented as [`Value::Null`]), `AND`/`OR` follow
//! the Kleene truth tables, and a `WHERE` predicate only accepts rows whose
//! predicate evaluates to *true* (not to `NULL`).

use std::cmp::Ordering;

use serde::{Deserialize, Serialize};

use crate::error::RelationalError;
use crate::schema::Schema;
use crate::value::Value;
use crate::Result;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinaryOperator {
    /// `=`
    Eq,
    /// `<>` / `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Multiply,
    /// `/`
    Divide,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnaryOperator {
    /// `NOT`
    Not,
    /// `-`
    Negate,
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A column reference.
    Column(String),
    /// A literal value.
    Literal(Value),
    /// A binary operation.
    BinaryOp {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOperator,
        /// Right operand.
        right: Box<Expr>,
    },
    /// A unary operation.
    UnaryOp {
        /// Operator.
        op: UnaryOperator,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `expr IS NULL`
    IsNull(Box<Expr>),
    /// `expr IS NOT NULL`
    IsNotNull(Box<Expr>),
}

impl Expr {
    /// Convenience constructor for a column reference.
    pub fn column(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    /// Convenience constructor for a literal.
    pub fn literal(value: impl Into<Value>) -> Expr {
        Expr::Literal(value.into())
    }

    /// Convenience constructor for a binary operation.
    pub fn binary(left: Expr, op: BinaryOperator, right: Expr) -> Expr {
        Expr::BinaryOp {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    /// All column names referenced by the expression (in first-appearance
    /// order, without duplicates).  The crowd layer uses this to detect
    /// predicates over attributes that are not part of the schema yet.
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column(name) => {
                let lower = name.to_lowercase();
                if !out.contains(&lower) {
                    out.push(lower);
                }
            }
            Expr::Literal(_) => {}
            Expr::BinaryOp { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::UnaryOp { expr, .. } => expr.collect_columns(out),
            Expr::IsNull(expr) | Expr::IsNotNull(expr) => expr.collect_columns(out),
        }
    }

    /// Evaluates the expression against one row.
    pub fn evaluate(&self, schema: &Schema, row: &[Value], table_name: &str) -> Result<Value> {
        self.evaluate_inner(schema, row, table_name, false)
    }

    /// Like [`evaluate`](Expr::evaluate), but references to columns absent
    /// from the schema evaluate to [`Value::Null`] instead of erroring.
    ///
    /// This is the *snapshot* semantics of a crowd-enabled database: a
    /// predicate over a not-yet-materialized perceptual attribute behaves as
    /// if the column existed with every value unknown, so the rows
    /// answerable from stored data alone can be returned immediately while
    /// acquisition continues.
    pub fn evaluate_lenient(
        &self,
        schema: &Schema,
        row: &[Value],
        table_name: &str,
    ) -> Result<Value> {
        self.evaluate_inner(schema, row, table_name, true)
    }

    fn evaluate_inner(
        &self,
        schema: &Schema,
        row: &[Value],
        table_name: &str,
        lenient: bool,
    ) -> Result<Value> {
        match self {
            Expr::Column(name) => match schema.index_of(name) {
                Some(idx) => Ok(row[idx].clone()),
                None if lenient => Ok(Value::Null),
                None => Err(RelationalError::UnknownColumn {
                    table: table_name.to_string(),
                    column: name.to_lowercase(),
                }),
            },
            Expr::Literal(v) => Ok(v.clone()),
            Expr::BinaryOp { left, op, right } => {
                let l = left.evaluate_inner(schema, row, table_name, lenient)?;
                let r = right.evaluate_inner(schema, row, table_name, lenient)?;
                evaluate_binary(&l, *op, &r)
            }
            Expr::UnaryOp { op, expr } => {
                let v = expr.evaluate_inner(schema, row, table_name, lenient)?;
                match op {
                    UnaryOperator::Not => Ok(match v {
                        Value::Null => Value::Null,
                        Value::Boolean(b) => Value::Boolean(!b),
                        other => {
                            return Err(RelationalError::Evaluation(format!(
                                "NOT applied to non-boolean value {other}"
                            )))
                        }
                    }),
                    UnaryOperator::Negate => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Integer(i) => Ok(Value::Integer(-i)),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        other => Err(RelationalError::Evaluation(format!(
                            "cannot negate non-numeric value {other}"
                        ))),
                    },
                }
            }
            Expr::IsNull(expr) => {
                let v = expr.evaluate_inner(schema, row, table_name, lenient)?;
                Ok(Value::Boolean(v.is_null()))
            }
            Expr::IsNotNull(expr) => {
                let v = expr.evaluate_inner(schema, row, table_name, lenient)?;
                Ok(Value::Boolean(!v.is_null()))
            }
        }
    }

    /// Evaluates the expression as a predicate: `true` only when the result
    /// is the boolean `true` (SQL `WHERE` semantics — `NULL` rejects the
    /// row).
    pub fn matches(&self, schema: &Schema, row: &[Value], table_name: &str) -> Result<bool> {
        match self.evaluate(schema, row, table_name)? {
            Value::Boolean(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(RelationalError::Evaluation(format!(
                "WHERE predicate evaluated to non-boolean value {other}"
            ))),
        }
    }

    /// [`matches`](Expr::matches) under [`evaluate_lenient`]'s
    /// missing-column-is-`NULL` semantics: a predicate over an unknown
    /// column evaluates to `NULL` and therefore rejects the row, exactly as
    /// it would once the column existed with that cell unfilled.
    ///
    /// [`evaluate_lenient`]: Expr::evaluate_lenient
    pub fn matches_lenient(
        &self,
        schema: &Schema,
        row: &[Value],
        table_name: &str,
    ) -> Result<bool> {
        match self.evaluate_lenient(schema, row, table_name)? {
            Value::Boolean(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(RelationalError::Evaluation(format!(
                "WHERE predicate evaluated to non-boolean value {other}"
            ))),
        }
    }
}

fn evaluate_binary(left: &Value, op: BinaryOperator, right: &Value) -> Result<Value> {
    use BinaryOperator::*;
    match op {
        And => Ok(kleene_and(left, right)?),
        Or => Ok(kleene_or(left, right)?),
        Eq | NotEq => {
            let eq = left.sql_eq(right);
            Ok(match eq {
                None => Value::Null,
                Some(v) => Value::Boolean(if op == Eq { v } else { !v }),
            })
        }
        Lt | LtEq | Gt | GtEq => {
            if left.is_null() || right.is_null() {
                return Ok(Value::Null);
            }
            let ord = left.compare(right).ok_or_else(|| {
                RelationalError::Evaluation(format!("cannot compare {left} with {right}"))
            })?;
            let result = match op {
                Lt => ord == Ordering::Less,
                LtEq => ord != Ordering::Greater,
                Gt => ord == Ordering::Greater,
                GtEq => ord != Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Boolean(result))
        }
        Plus | Minus | Multiply | Divide => {
            if left.is_null() || right.is_null() {
                return Ok(Value::Null);
            }
            // Integer arithmetic stays integral except for division.
            if let (Value::Integer(a), Value::Integer(b)) = (left, right) {
                return Ok(match op {
                    Plus => Value::Integer(a + b),
                    Minus => Value::Integer(a - b),
                    Multiply => Value::Integer(a * b),
                    Divide => {
                        if *b == 0 {
                            return Err(RelationalError::Evaluation("division by zero".into()));
                        }
                        Value::Float(*a as f64 / *b as f64)
                    }
                    _ => unreachable!(),
                });
            }
            let a = left.as_f64().ok_or_else(|| {
                RelationalError::Evaluation(format!("arithmetic on non-numeric value {left}"))
            })?;
            let b = right.as_f64().ok_or_else(|| {
                RelationalError::Evaluation(format!("arithmetic on non-numeric value {right}"))
            })?;
            Ok(match op {
                Plus => Value::Float(a + b),
                Minus => Value::Float(a - b),
                Multiply => Value::Float(a * b),
                Divide => {
                    if b == 0.0 {
                        return Err(RelationalError::Evaluation("division by zero".into()));
                    }
                    Value::Float(a / b)
                }
                _ => unreachable!(),
            })
        }
    }
}

fn as_kleene(v: &Value) -> Result<Option<bool>> {
    match v {
        Value::Null => Ok(None),
        Value::Boolean(b) => Ok(Some(*b)),
        other => Err(RelationalError::Evaluation(format!(
            "logical operator applied to non-boolean value {other}"
        ))),
    }
}

fn kleene_and(left: &Value, right: &Value) -> Result<Value> {
    let (l, r) = (as_kleene(left)?, as_kleene(right)?);
    Ok(match (l, r) {
        (Some(false), _) | (_, Some(false)) => Value::Boolean(false),
        (Some(true), Some(true)) => Value::Boolean(true),
        _ => Value::Null,
    })
}

fn kleene_or(left: &Value, right: &Value) -> Result<Value> {
    let (l, r) = (as_kleene(left)?, as_kleene(right)?);
    Ok(match (l, r) {
        (Some(true), _) | (_, Some(true)) => Value::Boolean(true),
        (Some(false), Some(false)) => Value::Boolean(false),
        _ => Value::Null,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Integer),
            Column::new("name", DataType::Text),
            Column::new("humor", DataType::Float),
            Column::new("is_comedy", DataType::Boolean),
        ])
        .unwrap()
    }

    fn row() -> Vec<Value> {
        vec![
            Value::Integer(1),
            Value::from("Rocky"),
            Value::Float(3.5),
            Value::Null,
        ]
    }

    #[test]
    fn column_and_literal_evaluation() {
        let s = schema();
        let r = row();
        assert_eq!(
            Expr::column("ID").evaluate(&s, &r, "movies").unwrap(),
            Value::Integer(1)
        );
        assert_eq!(
            Expr::literal(5i64).evaluate(&s, &r, "movies").unwrap(),
            Value::Integer(5)
        );
        let err = Expr::column("missing").evaluate(&s, &r, "movies");
        assert!(matches!(err, Err(RelationalError::UnknownColumn { .. })));
    }

    #[test]
    fn comparisons() {
        let s = schema();
        let r = row();
        let gt = Expr::binary(
            Expr::column("humor"),
            BinaryOperator::Gt,
            Expr::literal(3.0),
        );
        assert_eq!(gt.evaluate(&s, &r, "t").unwrap(), Value::Boolean(true));
        let eq = Expr::binary(
            Expr::column("name"),
            BinaryOperator::Eq,
            Expr::literal("Rocky"),
        );
        assert_eq!(eq.evaluate(&s, &r, "t").unwrap(), Value::Boolean(true));
        let neq = Expr::binary(
            Expr::column("id"),
            BinaryOperator::NotEq,
            Expr::literal(1i64),
        );
        assert_eq!(neq.evaluate(&s, &r, "t").unwrap(), Value::Boolean(false));
        // Comparison against NULL yields NULL, which `matches` treats as false.
        let null_cmp = Expr::binary(
            Expr::column("is_comedy"),
            BinaryOperator::Eq,
            Expr::literal(true),
        );
        assert_eq!(null_cmp.evaluate(&s, &r, "t").unwrap(), Value::Null);
        assert!(!null_cmp.matches(&s, &r, "t").unwrap());
        // Incomparable types.
        let bad = Expr::binary(
            Expr::column("name"),
            BinaryOperator::Lt,
            Expr::literal(1i64),
        );
        assert!(bad.evaluate(&s, &r, "t").is_err());
    }

    #[test]
    fn three_valued_logic() {
        let s = schema();
        let r = row();
        let is_comedy = Expr::binary(
            Expr::column("is_comedy"),
            BinaryOperator::Eq,
            Expr::literal(true),
        );
        let id_pos = Expr::binary(Expr::column("id"), BinaryOperator::Gt, Expr::literal(0i64));
        // NULL AND true = NULL; NULL OR true = true; NULL AND false = false.
        let and = Expr::binary(is_comedy.clone(), BinaryOperator::And, id_pos.clone());
        assert_eq!(and.evaluate(&s, &r, "t").unwrap(), Value::Null);
        let or = Expr::binary(is_comedy.clone(), BinaryOperator::Or, id_pos.clone());
        assert_eq!(or.evaluate(&s, &r, "t").unwrap(), Value::Boolean(true));
        let id_neg = Expr::binary(Expr::column("id"), BinaryOperator::Lt, Expr::literal(0i64));
        let and_false = Expr::binary(is_comedy.clone(), BinaryOperator::And, id_neg);
        assert_eq!(
            and_false.evaluate(&s, &r, "t").unwrap(),
            Value::Boolean(false)
        );
        // NOT NULL = NULL.
        let not_null = Expr::UnaryOp {
            op: UnaryOperator::Not,
            expr: Box::new(is_comedy),
        };
        assert_eq!(not_null.evaluate(&s, &r, "t").unwrap(), Value::Null);
        // Logical op on non-boolean errors.
        let bad = Expr::binary(Expr::column("id"), BinaryOperator::And, Expr::literal(true));
        assert!(bad.evaluate(&s, &r, "t").is_err());
    }

    #[test]
    fn is_null_checks() {
        let s = schema();
        let r = row();
        assert_eq!(
            Expr::IsNull(Box::new(Expr::column("is_comedy")))
                .evaluate(&s, &r, "t")
                .unwrap(),
            Value::Boolean(true)
        );
        assert_eq!(
            Expr::IsNotNull(Box::new(Expr::column("id")))
                .evaluate(&s, &r, "t")
                .unwrap(),
            Value::Boolean(true)
        );
    }

    #[test]
    fn arithmetic() {
        let s = schema();
        let r = row();
        let add = Expr::binary(
            Expr::column("id"),
            BinaryOperator::Plus,
            Expr::literal(2i64),
        );
        assert_eq!(add.evaluate(&s, &r, "t").unwrap(), Value::Integer(3));
        let mul = Expr::binary(
            Expr::column("humor"),
            BinaryOperator::Multiply,
            Expr::literal(2i64),
        );
        assert_eq!(mul.evaluate(&s, &r, "t").unwrap(), Value::Float(7.0));
        let div = Expr::binary(
            Expr::literal(7i64),
            BinaryOperator::Divide,
            Expr::literal(2i64),
        );
        assert_eq!(div.evaluate(&s, &r, "t").unwrap(), Value::Float(3.5));
        let div0 = Expr::binary(
            Expr::literal(7i64),
            BinaryOperator::Divide,
            Expr::literal(0i64),
        );
        assert!(div0.evaluate(&s, &r, "t").is_err());
        let bad = Expr::binary(
            Expr::column("name"),
            BinaryOperator::Plus,
            Expr::literal(1i64),
        );
        assert!(bad.evaluate(&s, &r, "t").is_err());
        let null_arith = Expr::binary(
            Expr::column("is_comedy"),
            BinaryOperator::Plus,
            Expr::literal(1i64),
        );
        assert_eq!(null_arith.evaluate(&s, &r, "t").unwrap(), Value::Null);
        // Unary negation.
        let neg = Expr::UnaryOp {
            op: UnaryOperator::Negate,
            expr: Box::new(Expr::column("humor")),
        };
        assert_eq!(neg.evaluate(&s, &r, "t").unwrap(), Value::Float(-3.5));
        let neg_bad = Expr::UnaryOp {
            op: UnaryOperator::Negate,
            expr: Box::new(Expr::column("name")),
        };
        assert!(neg_bad.evaluate(&s, &r, "t").is_err());
    }

    #[test]
    fn referenced_columns_are_collected_once() {
        let e = Expr::binary(
            Expr::binary(
                Expr::column("Humor"),
                BinaryOperator::GtEq,
                Expr::literal(8i64),
            ),
            BinaryOperator::And,
            Expr::binary(
                Expr::column("humor"),
                BinaryOperator::Lt,
                Expr::column("year"),
            ),
        );
        assert_eq!(e.referenced_columns(), vec!["humor", "year"]);
        assert!(Expr::literal(1i64).referenced_columns().is_empty());
    }

    #[test]
    fn lenient_evaluation_treats_unknown_columns_as_null() {
        let s = schema();
        let r = row();
        // Strict: error.  Lenient: NULL, flowing through three-valued logic.
        let missing = Expr::binary(
            Expr::column("nonexistent"),
            BinaryOperator::Eq,
            Expr::literal(true),
        );
        assert!(missing.evaluate(&s, &r, "t").is_err());
        assert_eq!(missing.evaluate_lenient(&s, &r, "t").unwrap(), Value::Null);
        assert!(!missing.matches_lenient(&s, &r, "t").unwrap());
        // NULL OR true = true: stored data still answers.
        let or_known = Expr::binary(
            missing,
            BinaryOperator::Or,
            Expr::binary(Expr::column("id"), BinaryOperator::Eq, Expr::literal(1i64)),
        );
        assert!(or_known.matches_lenient(&s, &r, "t").unwrap());
        // IS NULL over a missing column is true — the cell is a hole.
        let is_null = Expr::IsNull(Box::new(Expr::column("nonexistent")));
        assert_eq!(
            is_null.evaluate_lenient(&s, &r, "t").unwrap(),
            Value::Boolean(true)
        );
        // Known columns behave identically on both paths.
        let known = Expr::binary(Expr::column("id"), BinaryOperator::Eq, Expr::literal(1i64));
        assert_eq!(
            known.evaluate(&s, &r, "t").unwrap(),
            known.evaluate_lenient(&s, &r, "t").unwrap()
        );
    }

    #[test]
    fn matches_requires_boolean() {
        let s = schema();
        let r = row();
        assert!(Expr::column("id").matches(&s, &r, "t").is_err());
        let ok = Expr::binary(Expr::column("id"), BinaryOperator::Eq, Expr::literal(1i64));
        assert!(ok.matches(&s, &r, "t").unwrap());
    }
}
