//! Table schemas.

use serde::{Deserialize, Serialize};

use crate::error::RelationalError;
use crate::value::DataType;
use crate::Result;

/// One column of a table schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name (case-insensitive; stored lower-cased).
    pub name: String,
    /// Declared type.
    pub data_type: DataType,
    /// Whether `NULL` values are allowed.  Columns added by query-driven
    /// schema expansion are always nullable (their values are filled in
    /// incrementally).
    pub nullable: bool,
}

impl Column {
    /// Creates a nullable column.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Column {
            name: name.into().to_lowercase(),
            data_type,
            nullable: true,
        }
    }

    /// Creates a `NOT NULL` column.
    pub fn not_null(name: impl Into<String>, data_type: DataType) -> Self {
        Column {
            nullable: false,
            ..Column::new(name, data_type)
        }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Creates a schema from columns; names must be unique
    /// (case-insensitively).
    pub fn new(columns: Vec<Column>) -> Result<Self> {
        if columns.is_empty() {
            return Err(RelationalError::InvalidStatement(
                "a schema needs at least one column".into(),
            ));
        }
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            if !seen.insert(c.name.clone()) {
                return Err(RelationalError::ColumnExists(c.name.clone()));
            }
        }
        Ok(Schema { columns })
    }

    /// The columns in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns (only possible for
    /// `Schema::default()`).
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of a column by (case-insensitive) name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let lower = name.to_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }

    /// Column by (case-insensitive) name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.index_of(name).map(|i| &self.columns[i])
    }

    /// True when the schema contains the column.
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_some()
    }

    /// All column names in declaration order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    /// Appends a column (used by `ALTER TABLE … ADD COLUMN`).
    pub fn add_column(&mut self, column: Column) -> Result<()> {
        if self.contains(&column.name) {
            return Err(RelationalError::ColumnExists(column.name));
        }
        self.columns.push(column);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_constructors_normalize_names() {
        let c = Column::new("Name", DataType::Text);
        assert_eq!(c.name, "name");
        assert!(c.nullable);
        let c = Column::not_null("ID", DataType::Integer);
        assert_eq!(c.name, "id");
        assert!(!c.nullable);
    }

    #[test]
    fn schema_rejects_duplicates_and_empty() {
        assert!(Schema::new(vec![]).is_err());
        let dup = Schema::new(vec![
            Column::new("a", DataType::Integer),
            Column::new("A", DataType::Text),
        ]);
        assert!(matches!(dup, Err(RelationalError::ColumnExists(_))));
    }

    #[test]
    fn lookups_are_case_insensitive() {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Integer),
            Column::new("name", DataType::Text),
        ])
        .unwrap();
        assert_eq!(schema.len(), 2);
        assert!(!schema.is_empty());
        assert_eq!(schema.index_of("NAME"), Some(1));
        assert_eq!(schema.index_of("missing"), None);
        assert!(schema.contains("Id"));
        assert_eq!(schema.column("name").unwrap().data_type, DataType::Text);
        assert_eq!(schema.column_names(), vec!["id", "name"]);
    }

    #[test]
    fn add_column_extends_schema() {
        let mut schema = Schema::new(vec![Column::new("id", DataType::Integer)]).unwrap();
        schema
            .add_column(Column::new("is_comedy", DataType::Boolean))
            .unwrap();
        assert_eq!(schema.len(), 2);
        assert!(schema.contains("is_comedy"));
        assert!(matches!(
            schema.add_column(Column::new("IS_COMEDY", DataType::Boolean)),
            Err(RelationalError::ColumnExists(_))
        ));
    }

    #[test]
    fn default_schema_is_empty() {
        let s = Schema::default();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
