//! Intra-table partitioning: how a table's rows are split into
//! independent partitions by their id-column value.
//!
//! A [`PartitionSpec`] is pure routing arithmetic — it owns no storage and
//! takes no locks.  The storage and engine layers above use one spec per
//! table to route rows to per-partition locks, WAL segments, and
//! snapshots; because the same deterministic function routes a row at
//! write time, at checkpoint-slicing time, and at recovery time, a value
//! can never be logged into one partition and snapshotted into another.
//!
//! Routing must be **stable across releases** (it is baked into on-disk
//! layouts), so hashing uses a fixed SplitMix64 finalizer rather than the
//! standard library's unspecified `Hasher`.

use crate::value::Value;

/// How a table's rows map to partitions, keyed by the table's id column.
///
/// `Single` is the pre-partitioning regime — one partition, bit-compatible
/// with the legacy one-segment-per-table on-disk layout.  Construct specs
/// through [`PartitionSpec::normalize`] (or let the engine's table options
/// do it) so degenerate forms (`Hash { n: 1 }`, empty bounds) collapse to
/// `Single` and range bounds are sorted and deduplicated.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum PartitionSpec {
    /// One partition holding every row (the default, and the legacy
    /// layout).
    #[default]
    Single,
    /// Hash partitioning: a row's id is mixed through SplitMix64 and taken
    /// modulo `n`.  Ids without a usable integer form hash their bytes
    /// instead, so text keys still spread.
    Hash {
        /// Number of partitions (≥ 2 after normalization).
        n: usize,
    },
    /// Range partitioning on the integer id: `bounds` are ascending split
    /// points, and partition `k` holds ids in `[bounds[k-1], bounds[k])`
    /// (the first partition is unbounded below, the last unbounded above).
    /// `bounds.len() + 1` partitions in total.
    Range {
        /// Ascending, deduplicated split points.
        bounds: Vec<i64>,
    },
}

/// SplitMix64 finalizer: a fixed, release-stable integer mix.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// FNV-1a over raw bytes, for ids that are not integers.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

impl PartitionSpec {
    /// Collapses degenerate forms to [`PartitionSpec::Single`] and
    /// canonicalizes range bounds (sorted, deduplicated).  Every spec the
    /// engine persists goes through this, so two spellings of the same
    /// partitioning compare equal.
    pub fn normalize(self) -> PartitionSpec {
        match self {
            PartitionSpec::Single => PartitionSpec::Single,
            PartitionSpec::Hash { n } if n <= 1 => PartitionSpec::Single,
            PartitionSpec::Hash { n } => PartitionSpec::Hash { n },
            PartitionSpec::Range { mut bounds } => {
                bounds.sort_unstable();
                bounds.dedup();
                if bounds.is_empty() {
                    PartitionSpec::Single
                } else {
                    PartitionSpec::Range { bounds }
                }
            }
        }
    }

    /// Number of partitions this spec routes into (always ≥ 1).
    pub fn partition_count(&self) -> usize {
        match self {
            PartitionSpec::Single => 1,
            PartitionSpec::Hash { n } => (*n).max(1),
            PartitionSpec::Range { bounds } => bounds.len() + 1,
        }
    }

    /// True for the one-partition (legacy-layout) regime.
    pub fn is_single(&self) -> bool {
        self.partition_count() == 1
    }

    /// The partition of an integer id.
    pub fn route_id(&self, id: i64) -> usize {
        match self {
            PartitionSpec::Single => 0,
            PartitionSpec::Hash { n } => (mix64(id as u64) % (*n).max(1) as u64) as usize,
            PartitionSpec::Range { bounds } => bounds.partition_point(|bound| *bound <= id),
        }
    }

    /// The partition of a perceptual item id (always routed as its integer
    /// value, matching the id column's `Value::Integer` form).
    pub fn route_item(&self, item: u32) -> usize {
        self.route_id(item as i64)
    }

    /// The partition of an id-column value.  Integers route by value;
    /// other types hash their content under `Hash` and fall back to
    /// partition 0 under `Range` (range bounds are integer split points).
    /// `NULL` ids always land in partition 0 — there is nothing to route
    /// by, and all layers agree on that fallback.
    pub fn route_value(&self, value: &Value) -> usize {
        match value {
            Value::Integer(id) => self.route_id(*id),
            Value::Null => 0,
            Value::Text(s) => match self {
                PartitionSpec::Hash { n } => (fnv1a(s.as_bytes()) % (*n).max(1) as u64) as usize,
                _ => 0,
            },
            Value::Float(f) => match self {
                PartitionSpec::Hash { n } => (mix64(f.to_bits()) % (*n).max(1) as u64) as usize,
                _ => 0,
            },
            Value::Boolean(b) => self.route_id(*b as i64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_collapses_degenerate_specs() {
        assert_eq!(
            PartitionSpec::Hash { n: 0 }.normalize(),
            PartitionSpec::Single
        );
        assert_eq!(
            PartitionSpec::Hash { n: 1 }.normalize(),
            PartitionSpec::Single
        );
        assert_eq!(
            PartitionSpec::Range { bounds: vec![] }.normalize(),
            PartitionSpec::Single
        );
        assert_eq!(
            PartitionSpec::Range {
                bounds: vec![30, 10, 10, 20]
            }
            .normalize(),
            PartitionSpec::Range {
                bounds: vec![10, 20, 30]
            }
        );
        assert_eq!(
            PartitionSpec::Hash { n: 4 }.normalize(),
            PartitionSpec::Hash { n: 4 }
        );
    }

    #[test]
    fn hash_routing_is_stable_and_in_range() {
        let spec = PartitionSpec::Hash { n: 4 };
        for id in -100..100 {
            let k = spec.route_id(id);
            assert!(k < 4);
            // Deterministic: routing the same id twice agrees.
            assert_eq!(k, spec.route_id(id));
        }
        // The mix spreads consecutive ids across partitions.
        let hits: std::collections::HashSet<usize> = (0..32).map(|id| spec.route_id(id)).collect();
        assert_eq!(hits.len(), 4);
        // Pinned values: the function is part of the on-disk contract and
        // must never drift between releases.
        assert_eq!(spec.route_id(0), PartitionSpec::Hash { n: 4 }.route_id(0));
        assert_eq!(spec.route_item(7), spec.route_id(7));
    }

    #[test]
    fn range_routing_respects_bounds() {
        let spec = PartitionSpec::Range {
            bounds: vec![10, 20],
        };
        assert_eq!(spec.partition_count(), 3);
        assert_eq!(spec.route_id(i64::MIN), 0);
        assert_eq!(spec.route_id(9), 0);
        assert_eq!(spec.route_id(10), 1);
        assert_eq!(spec.route_id(19), 1);
        assert_eq!(spec.route_id(20), 2);
        assert_eq!(spec.route_id(i64::MAX), 2);
    }

    #[test]
    fn value_routing_matches_integer_routing_and_handles_odd_types() {
        let spec = PartitionSpec::Hash { n: 3 };
        assert_eq!(spec.route_value(&Value::Integer(42)), spec.route_id(42));
        assert_eq!(spec.route_value(&Value::Null), 0);
        assert!(spec.route_value(&Value::Text("rocky".into())) < 3);
        assert!(spec.route_value(&Value::Float(1.5)) < 3);
        let range = PartitionSpec::Range { bounds: vec![5] };
        assert_eq!(range.route_value(&Value::Text("rocky".into())), 0);
        assert_eq!(range.route_value(&Value::Integer(7)), 1);
    }
}
