//! The table catalog.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::RelationalError;
use crate::table::Table;
use crate::Result;

/// A collection of named tables.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a table; fails if a table with the same name exists.
    pub fn create_table(&mut self, table: Table) -> Result<()> {
        let name = table.name().to_string();
        if self.tables.contains_key(&name) {
            return Err(RelationalError::TableExists(name));
        }
        self.tables.insert(name, table);
        Ok(())
    }

    /// Looks a table up by (case-insensitive) name.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(&name.to_lowercase())
            .ok_or_else(|| RelationalError::UnknownTable(name.to_string()))
    }

    /// Mutable table lookup.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(&name.to_lowercase())
            .ok_or_else(|| RelationalError::UnknownTable(name.to_string()))
    }

    /// Removes a table.
    pub fn drop_table(&mut self, name: &str) -> Result<Table> {
        self.tables
            .remove(&name.to_lowercase())
            .ok_or_else(|| RelationalError::UnknownTable(name.to_string()))
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when the catalog holds no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::value::DataType;

    fn table(name: &str) -> Table {
        Table::new(
            name,
            Schema::new(vec![Column::new("id", DataType::Integer)]).unwrap(),
        )
    }

    #[test]
    fn create_lookup_drop() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.create_table(table("Movies")).unwrap();
        c.create_table(table("restaurants")).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.table_names(), vec!["movies", "restaurants"]);
        assert!(c.table("MOVIES").is_ok());
        assert!(c.table_mut("movies").is_ok());
        assert!(c.table("games").is_err());
        assert!(c.table_mut("games").is_err());
        assert!(matches!(
            c.create_table(table("movies")),
            Err(RelationalError::TableExists(_))
        ));
        let dropped = c.drop_table("movies").unwrap();
        assert_eq!(dropped.name(), "movies");
        assert!(c.drop_table("movies").is_err());
        assert_eq!(c.len(), 1);
    }
}
