//! Row-oriented tables.

use serde::{Deserialize, Serialize};

use crate::error::RelationalError;
use crate::schema::{Column, Schema};
use crate::value::Value;
use crate::Result;

/// A named table: a schema plus a row store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Vec<Value>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into().to_lowercase(),
            schema,
            rows: Vec::new(),
        }
    }

    /// The table name (lower-cased).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// One row by index.
    pub fn row(&self, index: usize) -> Option<&[Value]> {
        self.rows.get(index).map(|r| r.as_slice())
    }

    /// Inserts a full row (one value per column, in schema order).
    pub fn insert_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(RelationalError::InvalidStatement(format!(
                "expected {} values but got {}",
                self.schema.len(),
                row.len()
            )));
        }
        for (value, column) in row.iter().zip(self.schema.columns()) {
            if value.is_null() && !column.nullable {
                return Err(RelationalError::TypeMismatch(format!(
                    "column {} is NOT NULL",
                    column.name
                )));
            }
            if !value.is_compatible_with(column.data_type) {
                return Err(RelationalError::TypeMismatch(format!(
                    "value {value} is not valid for column {} of type {}",
                    column.name, column.data_type
                )));
            }
        }
        self.rows.push(row);
        Ok(())
    }

    /// Inserts a row given as `(column, value)` pairs; unspecified columns
    /// become `NULL`.
    pub fn insert_named(&mut self, values: &[(&str, Value)]) -> Result<()> {
        let mut row = vec![Value::Null; self.schema.len()];
        for (name, value) in values {
            let idx = self
                .schema
                .index_of(name)
                .ok_or_else(|| RelationalError::UnknownColumn {
                    table: self.name.clone(),
                    column: name.to_string(),
                })?;
            row[idx] = value.clone();
        }
        self.insert_row(row)
    }

    /// Adds a new column; existing rows get `NULL` (or the provided default)
    /// in the new position.  This is the storage-level half of query-driven
    /// schema expansion.
    pub fn add_column(&mut self, column: Column, default: Option<Value>) -> Result<()> {
        if let Some(ref d) = default {
            if !d.is_compatible_with(column.data_type) {
                return Err(RelationalError::TypeMismatch(format!(
                    "default value {d} is not valid for type {}",
                    column.data_type
                )));
            }
        }
        let fill = default.unwrap_or(Value::Null);
        if fill.is_null() && !column.nullable {
            return Err(RelationalError::TypeMismatch(format!(
                "cannot add NOT NULL column {} without a default",
                column.name
            )));
        }
        self.schema.add_column(column)?;
        for row in &mut self.rows {
            row.push(fill.clone());
        }
        Ok(())
    }

    /// Overwrites the value of `column` in row `row_index`.
    pub fn set_value(&mut self, row_index: usize, column: &str, value: Value) -> Result<()> {
        let col_idx =
            self.schema
                .index_of(column)
                .ok_or_else(|| RelationalError::UnknownColumn {
                    table: self.name.clone(),
                    column: column.to_string(),
                })?;
        let col = &self.schema.columns()[col_idx];
        if !value.is_compatible_with(col.data_type) {
            return Err(RelationalError::TypeMismatch(format!(
                "value {value} is not valid for column {} of type {}",
                col.name, col.data_type
            )));
        }
        let row = self.rows.get_mut(row_index).ok_or_else(|| {
            RelationalError::InvalidStatement(format!("row {row_index} does not exist"))
        })?;
        row[col_idx] = value;
        Ok(())
    }

    /// Reads the value of `column` in row `row_index`.
    pub fn value(&self, row_index: usize, column: &str) -> Result<&Value> {
        let col_idx =
            self.schema
                .index_of(column)
                .ok_or_else(|| RelationalError::UnknownColumn {
                    table: self.name.clone(),
                    column: column.to_string(),
                })?;
        self.rows
            .get(row_index)
            .map(|r| &r[col_idx])
            .ok_or_else(|| {
                RelationalError::InvalidStatement(format!("row {row_index} does not exist"))
            })
    }

    /// Removes the rows at the given indices (indices refer to the current
    /// row order; duplicates and out-of-range indices are ignored).  Returns
    /// the number of rows removed.
    pub fn delete_rows(&mut self, indices: &[usize]) -> usize {
        if indices.is_empty() {
            return 0;
        }
        let to_delete: std::collections::HashSet<usize> = indices
            .iter()
            .copied()
            .filter(|&i| i < self.rows.len())
            .collect();
        let before = self.rows.len();
        let mut keep_index = 0usize;
        self.rows.retain(|_| {
            let keep = !to_delete.contains(&keep_index);
            keep_index += 1;
            keep
        });
        before - self.rows.len()
    }

    /// Number of `NULL`s in a column — the amount of data a crowd-enabled
    /// database would have to complete at query time.
    pub fn null_count(&self, column: &str) -> Result<usize> {
        let col_idx =
            self.schema
                .index_of(column)
                .ok_or_else(|| RelationalError::UnknownColumn {
                    table: self.name.clone(),
                    column: column.to_string(),
                })?;
        Ok(self.rows.iter().filter(|r| r[col_idx].is_null()).count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn movies() -> Table {
        let schema = Schema::new(vec![
            Column::not_null("id", DataType::Integer),
            Column::new("name", DataType::Text),
            Column::new("year", DataType::Integer),
        ])
        .unwrap();
        Table::new("Movies", schema)
    }

    #[test]
    fn insert_and_read_rows() {
        let mut t = movies();
        assert_eq!(t.name(), "movies");
        assert!(t.is_empty());
        t.insert_row(vec![
            Value::Integer(1),
            Value::from("Rocky"),
            Value::Integer(1976),
        ])
        .unwrap();
        t.insert_named(&[("id", Value::Integer(2)), ("name", Value::from("Psycho"))])
            .unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.row(0).unwrap()[1], Value::from("Rocky"));
        assert_eq!(t.value(1, "year").unwrap(), &Value::Null);
        assert!(t.row(5).is_none());
        assert!(t.value(5, "year").is_err());
    }

    #[test]
    fn insert_validates_arity_types_and_nullability() {
        let mut t = movies();
        assert!(t.insert_row(vec![Value::Integer(1)]).is_err());
        assert!(t
            .insert_row(vec![Value::from("x"), Value::from("y"), Value::Integer(1)])
            .is_err());
        // NOT NULL id.
        assert!(t
            .insert_row(vec![Value::Null, Value::from("y"), Value::Integer(1)])
            .is_err());
        // Unknown column in named insert.
        assert!(matches!(
            t.insert_named(&[("genre", Value::from("drama"))]),
            Err(RelationalError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn add_column_fills_existing_rows() {
        let mut t = movies();
        t.insert_row(vec![
            Value::Integer(1),
            Value::from("Rocky"),
            Value::Integer(1976),
        ])
        .unwrap();
        t.add_column(Column::new("is_comedy", DataType::Boolean), None)
            .unwrap();
        assert_eq!(t.schema().len(), 4);
        assert_eq!(t.value(0, "is_comedy").unwrap(), &Value::Null);
        assert_eq!(t.null_count("is_comedy").unwrap(), 1);

        t.add_column(
            Column::new("humor", DataType::Float),
            Some(Value::Float(0.0)),
        )
        .unwrap();
        assert_eq!(t.value(0, "humor").unwrap(), &Value::Float(0.0));

        // Duplicate column and bad defaults are rejected.
        assert!(t
            .add_column(Column::new("is_comedy", DataType::Boolean), None)
            .is_err());
        assert!(t
            .add_column(
                Column::new("bad", DataType::Integer),
                Some(Value::from("oops"))
            )
            .is_err());
        assert!(t
            .add_column(Column::not_null("strict", DataType::Integer), None)
            .is_err());
    }

    #[test]
    fn delete_rows_removes_only_requested_indices() {
        let mut t = movies();
        for i in 0..5 {
            t.insert_row(vec![
                Value::Integer(i),
                Value::from("m"),
                Value::Integer(2000 + i),
            ])
            .unwrap();
        }
        // Duplicates and out-of-range indices are ignored.
        let removed = t.delete_rows(&[1, 3, 3, 99]);
        assert_eq!(removed, 2);
        assert_eq!(t.len(), 3);
        let remaining: Vec<i64> = t
            .rows()
            .iter()
            .map(|r| match r[0] {
                Value::Integer(i) => i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(remaining, vec![0, 2, 4]);
        assert_eq!(t.delete_rows(&[]), 0);
    }

    #[test]
    fn set_value_updates_cells() {
        let mut t = movies();
        t.insert_row(vec![
            Value::Integer(1),
            Value::from("Rocky"),
            Value::Integer(1976),
        ])
        .unwrap();
        t.add_column(Column::new("is_comedy", DataType::Boolean), None)
            .unwrap();
        t.set_value(0, "is_comedy", Value::Boolean(false)).unwrap();
        assert_eq!(t.value(0, "is_comedy").unwrap(), &Value::Boolean(false));
        assert_eq!(t.null_count("is_comedy").unwrap(), 0);
        assert!(t.set_value(0, "is_comedy", Value::from("nope")).is_err());
        assert!(t.set_value(9, "is_comedy", Value::Boolean(true)).is_err());
        assert!(t.set_value(0, "missing", Value::Boolean(true)).is_err());
        assert!(t.null_count("missing").is_err());
    }
}
