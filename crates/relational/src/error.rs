//! Error types for the relational engine.

use std::fmt;

/// Errors produced while parsing or executing statements.
#[derive(Debug, Clone, PartialEq)]
pub enum RelationalError {
    /// A statement could not be parsed.
    Parse(String),
    /// A referenced table does not exist.
    UnknownTable(String),
    /// A referenced column does not exist in the table.
    ///
    /// The crowd-enabled database layer intercepts this variant to trigger
    /// query-driven schema expansion.
    UnknownColumn {
        /// The table that was queried.
        table: String,
        /// The missing column.
        column: String,
    },
    /// A table with this name already exists.
    TableExists(String),
    /// A column with this name already exists.
    ColumnExists(String),
    /// A value does not match the declared column type.
    TypeMismatch(String),
    /// A statement is structurally invalid (wrong arity, empty schema, …).
    InvalidStatement(String),
    /// An expression could not be evaluated.
    Evaluation(String),
}

impl fmt::Display for RelationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationalError::Parse(msg) => write!(f, "parse error: {msg}"),
            RelationalError::UnknownTable(name) => write!(f, "unknown table: {name}"),
            RelationalError::UnknownColumn { table, column } => {
                write!(f, "unknown column {column} in table {table}")
            }
            RelationalError::TableExists(name) => write!(f, "table {name} already exists"),
            RelationalError::ColumnExists(name) => write!(f, "column {name} already exists"),
            RelationalError::TypeMismatch(msg) => write!(f, "type mismatch: {msg}"),
            RelationalError::InvalidStatement(msg) => write!(f, "invalid statement: {msg}"),
            RelationalError::Evaluation(msg) => write!(f, "evaluation error: {msg}"),
        }
    }
}

impl std::error::Error for RelationalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(RelationalError::Parse("bad token".into())
            .to_string()
            .contains("bad token"));
        assert!(RelationalError::UnknownTable("movies".into())
            .to_string()
            .contains("movies"));
        let e = RelationalError::UnknownColumn {
            table: "movies".into(),
            column: "is_comedy".into(),
        };
        assert!(e.to_string().contains("is_comedy"));
        assert!(e.to_string().contains("movies"));
        assert!(RelationalError::TableExists("t".into())
            .to_string()
            .contains("already exists"));
        assert!(RelationalError::ColumnExists("c".into())
            .to_string()
            .contains("already exists"));
        assert!(RelationalError::TypeMismatch("x".into())
            .to_string()
            .contains("type mismatch"));
        assert!(RelationalError::InvalidStatement("y".into())
            .to_string()
            .contains("invalid"));
        assert!(RelationalError::Evaluation("z".into())
            .to_string()
            .contains("evaluation"));
    }
}
