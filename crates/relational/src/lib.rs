//! # relational — a small in-memory relational engine
//!
//! Crowd-enabled databases (CrowdDB, Qurk, Deco — references [1–3] of the
//! paper) are ordinary relational systems extended with crowd operators.
//! This crate provides the relational substrate that the crowd-enabled
//! database of crate `crowddb-core` builds on:
//!
//! * typed [`Value`]s with SQL-style `NULL` and three-valued logic,
//! * [`Schema`]s and row-oriented [`Table`]s held in a [`Catalog`],
//! * an expression AST ([`Expr`]) with an evaluator,
//! * a SQL-subset parser ([`sql::parse`]) covering `SELECT` (with `WHERE`,
//!   `ORDER BY`, `LIMIT`), `INSERT`, `UPDATE`, `DELETE`, `CREATE TABLE`, and
//!   — crucially for query-driven schema expansion —
//!   `ALTER TABLE … ADD COLUMN`,
//! * a straightforward [`executor`].
//!
//! The engine deliberately keeps the feature set small: the paper's queries
//! are single-table selections with perceptual predicates (e.g.
//! `SELECT * FROM movies WHERE is_comedy = true`), and the interesting part —
//! what happens when `is_comedy` does not exist yet — lives one layer up in
//! `crowddb-core`.  The executor therefore reports unknown columns with a
//! dedicated error variant ([`RelationalError::UnknownColumn`]) that the
//! crowd layer intercepts.
//!
//! ```
//! use relational::{Catalog, executor, sql};
//!
//! let mut catalog = Catalog::new();
//! executor::execute(&sql::parse("CREATE TABLE movies (id INTEGER, name TEXT, year INTEGER)").unwrap(), &mut catalog).unwrap();
//! executor::execute(&sql::parse("INSERT INTO movies (id, name, year) VALUES (1, 'Rocky', 1976), (2, 'Psycho', 1960)").unwrap(), &mut catalog).unwrap();
//! let result = executor::execute(&sql::parse("SELECT name FROM movies WHERE year < 1970").unwrap(), &mut catalog).unwrap();
//! assert_eq!(result.rows.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod error;
pub mod executor;
pub mod expr;
pub mod partition;
pub mod schema;
pub mod sql;
pub mod table;
pub mod value;

pub use catalog::Catalog;
pub use error::RelationalError;
pub use executor::{
    analyze, execute, execute_read, execute_read_indexed, execute_select_snapshot, QueryResult,
    SnapshotResult, StatementAnalysis,
};
pub use expr::{BinaryOperator, Expr, UnaryOperator};
pub use partition::PartitionSpec;
pub use schema::{Column, Schema};
pub use sql::{parse, ExpansionClause, ExpansionClauseMode, Statement};
pub use table::Table;
pub use value::{DataType, Value};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, RelationalError>;
