//! Typed values with SQL-style `NULL`.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// The data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integers.
    Integer,
    /// 64-bit floating point numbers.
    Float,
    /// UTF-8 strings.
    Text,
    /// Booleans — the type of the perceptual attributes the paper expands
    /// schemas with (e.g. `is_comedy`).
    Boolean,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DataType::Integer => "INTEGER",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Boolean => "BOOLEAN",
        };
        write!(f, "{name}")
    }
}

/// A single cell value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Missing / unknown value.  Crowd-enabled databases treat these as
    /// "to be completed at query time".
    Null,
    /// Integer value.
    Integer(i64),
    /// Floating-point value.
    Float(f64),
    /// String value.
    Text(String),
    /// Boolean value.
    Boolean(bool),
}

impl Value {
    /// The value's type, or `None` for `NULL` (which is typeless).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Integer(_) => Some(DataType::Integer),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Boolean(_) => Some(DataType::Boolean),
        }
    }

    /// True when the value is `NULL`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Checks whether the value can be stored in a column of `ty`.
    /// `NULL` is compatible with every type; integers may be widened into
    /// float columns.
    pub fn is_compatible_with(&self, ty: DataType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Integer(_), DataType::Integer)
                | (Value::Integer(_), DataType::Float)
                | (Value::Float(_), DataType::Float)
                | (Value::Text(_), DataType::Text)
                | (Value::Boolean(_), DataType::Boolean)
        )
    }

    /// Numeric view of the value (integers widened to floats).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Integer(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Boolean view of the value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    /// Text view of the value.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// SQL comparison: returns `None` when either side is `NULL` or the
    /// values are incomparable, mirroring three-valued logic.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Boolean(a), Value::Boolean(b)) => Some(a.cmp(b)),
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
        }
    }

    /// SQL equality: `None` when either side is `NULL`, `Some(bool)`
    /// otherwise (incomparable types compare unequal).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            _ => Some(match self.compare(other) {
                Some(Ordering::Equal) => true,
                Some(_) => false,
                None => false,
            }),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Integer(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Boolean(b) => write!(f, "{}", if *b { "true" } else { "false" }),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Integer(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Boolean(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_types_and_nullness() {
        assert_eq!(Value::Integer(1).data_type(), Some(DataType::Integer));
        assert_eq!(Value::Float(1.0).data_type(), Some(DataType::Float));
        assert_eq!(Value::Text("a".into()).data_type(), Some(DataType::Text));
        assert_eq!(Value::Boolean(true).data_type(), Some(DataType::Boolean));
        assert_eq!(Value::Null.data_type(), None);
        assert!(Value::Null.is_null());
        assert!(!Value::Integer(0).is_null());
    }

    #[test]
    fn compatibility_rules() {
        assert!(Value::Null.is_compatible_with(DataType::Boolean));
        assert!(Value::Integer(1).is_compatible_with(DataType::Integer));
        assert!(Value::Integer(1).is_compatible_with(DataType::Float));
        assert!(!Value::Float(1.0).is_compatible_with(DataType::Integer));
        assert!(!Value::Text("x".into()).is_compatible_with(DataType::Boolean));
        assert!(Value::Boolean(true).is_compatible_with(DataType::Boolean));
    }

    #[test]
    fn views() {
        assert_eq!(Value::Integer(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Text("x".into()).as_f64(), None);
        assert_eq!(Value::Boolean(true).as_bool(), Some(true));
        assert_eq!(Value::Integer(1).as_bool(), None);
        assert_eq!(Value::Text("abc".into()).as_text(), Some("abc"));
        assert_eq!(Value::Null.as_text(), None);
    }

    #[test]
    fn comparisons_follow_three_valued_logic() {
        assert_eq!(
            Value::Integer(1).compare(&Value::Integer(2)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Integer(2).compare(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Text("a".into()).compare(&Value::Text("b".into())),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Boolean(false).compare(&Value::Boolean(true)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Null.compare(&Value::Integer(1)), None);
        assert_eq!(Value::Integer(1).compare(&Value::Null), None);
        // Incomparable types.
        assert_eq!(Value::Text("a".into()).compare(&Value::Integer(1)), None);
    }

    #[test]
    fn sql_equality() {
        assert_eq!(Value::Integer(1).sql_eq(&Value::Integer(1)), Some(true));
        assert_eq!(Value::Integer(1).sql_eq(&Value::Integer(2)), Some(false));
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
        assert_eq!(Value::Boolean(true).sql_eq(&Value::Null), None);
        assert_eq!(
            Value::Text("a".into()).sql_eq(&Value::Integer(1)),
            Some(false)
        );
    }

    #[test]
    fn conversions_and_display() {
        assert_eq!(Value::from(5i64), Value::Integer(5));
        assert_eq!(Value::from(1.5f64), Value::Float(1.5));
        assert_eq!(Value::from("hi"), Value::Text("hi".into()));
        assert_eq!(Value::from(String::from("hi")), Value::Text("hi".into()));
        assert_eq!(Value::from(true), Value::Boolean(true));
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Integer(7).to_string(), "7");
        assert_eq!(Value::Text("x".into()).to_string(), "'x'");
        assert_eq!(Value::Boolean(false).to_string(), "false");
        assert_eq!(DataType::Integer.to_string(), "INTEGER");
        assert_eq!(DataType::Boolean.to_string(), "BOOLEAN");
    }
}
