//! Statement execution.

use crate::catalog::Catalog;
use crate::error::RelationalError;
use crate::schema::{Column, Schema};
use crate::sql::{OrderBy, Projection, SelectStatement, Statement};
use crate::table::Table;
use crate::value::Value;
use crate::Result;

/// The result of executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Names of the returned columns (empty for DDL/DML statements).
    pub columns: Vec<String>,
    /// Returned rows (empty for DDL/DML statements).
    pub rows: Vec<Vec<Value>>,
    /// Number of rows affected by an `INSERT`.
    pub rows_affected: usize,
}

impl QueryResult {
    fn empty() -> Self {
        QueryResult {
            columns: Vec::new(),
            rows: Vec::new(),
            rows_affected: 0,
        }
    }
}

/// The outcome of statically analyzing a statement against a catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatementAnalysis {
    /// The table the statement reads or writes (`None` for `CREATE TABLE`).
    pub table: Option<String>,
    /// Every referenced column that is missing from the table's schema, in
    /// first-appearance order and without duplicates.
    pub missing_columns: Vec<String>,
}

impl StatementAnalysis {
    /// True when every referenced column exists in the schema.
    pub fn is_fully_resolved(&self) -> bool {
        self.missing_columns.is_empty()
    }
}

/// Statically analyzes a statement against the catalog, reporting **all**
/// unknown columns at once.
///
/// Execution stops at the first unknown column, which forces a caller that
/// wants to repair the schema (the crowd layer's query-driven expansion)
/// into a parse→execute→fail cycle per missing attribute.  `analyze` lets it
/// plan one expansion round covering every missing attribute of the
/// statement instead.  Unknown tables are still an error: there is nothing
/// to analyze against.
pub fn analyze(statement: &Statement, catalog: &Catalog) -> Result<StatementAnalysis> {
    let table_name = match statement.target_table() {
        Some(name) => name,
        None => {
            return Ok(StatementAnalysis {
                table: None,
                missing_columns: Vec::new(),
            })
        }
    };
    let table = catalog.table(table_name)?;
    let schema = table.schema();
    let missing_columns = statement
        .referenced_columns()
        .into_iter()
        .filter(|column| !schema.contains(column))
        .collect();
    Ok(StatementAnalysis {
        table: Some(table.name().to_string()),
        missing_columns,
    })
}

/// Executes a read-only statement (`SELECT`) against a shared catalog
/// reference.
///
/// This is the concurrent engine's fast path: callers holding a shared
/// (read) lock on the catalog can run any statement for which
/// [`Statement::is_read_only`] is true without serializing behind writers.
/// Passing a write statement is a logic error and reported as
/// [`RelationalError::InvalidStatement`].
pub fn execute_read(statement: &Statement, catalog: &Catalog) -> Result<QueryResult> {
    execute_read_indexed(statement, catalog).map(|(result, _)| result)
}

/// Like [`execute_read`], additionally returning the table row index behind
/// each result row (parallel to `result.rows`).
///
/// Row-level lineage is what a caller needs to attach *provenance* to the
/// returned cells: the projected values alone no longer say which physical
/// row — and therefore which crowd-sourced item — they came from.  The crowd
/// layer joins these indices against its id → item mapping to report, per
/// cell, whether the value was stored, crowd-derived, cached, or missing.
pub fn execute_read_indexed(
    statement: &Statement,
    catalog: &Catalog,
) -> Result<(QueryResult, Vec<usize>)> {
    match statement {
        Statement::Select(select) => execute_select_indexed(select, catalog),
        Statement::ExplainExpansion(_) => Err(RelationalError::InvalidStatement(
            "EXPLAIN EXPANSION is answered by the crowd layer, not the relational engine \
             (the plan it describes does not exist here)"
                .into(),
        )),
        other => Err(RelationalError::InvalidStatement(format!(
            "execute_read got a write statement: {other:?}"
        ))),
    }
}

/// The outcome of a *snapshot* read: the rows answerable from the catalog
/// as it is right now, with columns the schema does not (yet) contain
/// served as `NULL` instead of erroring.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotResult {
    /// The rows and columns, shaped exactly like the eventual full answer.
    pub result: QueryResult,
    /// The table row index behind each result row (parallel to
    /// `result.rows`), as in [`execute_read_indexed`].
    pub row_indices: Vec<usize>,
    /// Projected columns that are absent from the schema (lower-cased) —
    /// their cells are all `NULL` and a caller attaching provenance should
    /// mark them as not-yet-expanded rather than stored.
    pub missing_columns: Vec<String>,
}

/// Executes a `SELECT` under snapshot semantics: any referenced column the
/// schema does not contain evaluates to `NULL` (projection cells, `WHERE`
/// predicates via [`crate::Expr::matches_lenient`], and `ORDER BY` keys
/// alike) instead of failing the statement.
///
/// This is what lets a crowd-enabled database answer *immediately* from
/// stored data while schema expansion for the missing attributes is still
/// in flight: the snapshot has the same shape as the eventual answer, just
/// with the unacquired cells empty, and predicates over missing columns
/// reject rows exactly as they would over an existing-but-unfilled column.
pub fn execute_select_snapshot(
    select: &SelectStatement,
    catalog: &Catalog,
) -> Result<SnapshotResult> {
    execute_select_core(select, catalog, true)
}

/// The one `SELECT` implementation behind both the strict and the snapshot
/// path: scan, filter, order, limit, project.  `lenient` decides what a
/// reference to a column absent from the schema means — a hard
/// [`RelationalError::UnknownColumn`] (strict), or an all-`NULL` column
/// recorded in [`SnapshotResult::missing_columns`] (snapshot).  One shared
/// body keeps the two paths' ordering/limit/projection semantics from ever
/// drifting apart: the streamed snapshot must have exactly the shape of
/// the answer the strict executor later produces.
fn execute_select_core(
    select: &SelectStatement,
    catalog: &Catalog,
    lenient: bool,
) -> Result<SnapshotResult> {
    let table = catalog.table(&select.table)?;
    let schema = table.schema();

    // Resolve every referenced column up front (so unknown columns error —
    // or register as missing — even for empty tables, deterministically).
    let mut missing_columns: Vec<String> = Vec::new();
    let mut resolve = |name: &str| -> Result<Option<usize>> {
        match schema.index_of(name) {
            Some(index) => Ok(Some(index)),
            None if lenient => {
                let lower = name.to_lowercase();
                if !missing_columns.contains(&lower) {
                    missing_columns.push(lower);
                }
                Ok(None)
            }
            None => Err(RelationalError::UnknownColumn {
                table: table.name().to_string(),
                column: name.to_lowercase(),
            }),
        }
    };
    let projected: Vec<(String, Option<usize>)> = match &select.projection {
        Projection::All => schema
            .column_names()
            .into_iter()
            .enumerate()
            .map(|(i, n)| (n, Some(i)))
            .collect(),
        Projection::Columns(names) => names
            .iter()
            .map(|n| Ok((n.to_lowercase(), resolve(n)?)))
            .collect::<Result<Vec<_>>>()?,
    };
    if let Some(filter) = &select.filter {
        for column in filter.referenced_columns() {
            resolve(&column)?;
        }
    }
    let order_index = match &select.order_by {
        Some(OrderBy { column, .. }) => resolve(column)?,
        None => None,
    };

    // Scan and filter.  Under snapshot semantics a predicate over a
    // missing column evaluates to NULL and rejects the row, as it would
    // over an existing-but-unfilled column.
    let mut matching: Vec<usize> = Vec::new();
    for (i, row) in table.rows().iter().enumerate() {
        let keep = match &select.filter {
            Some(filter) if lenient => filter.matches_lenient(schema, row, table.name())?,
            Some(filter) => filter.matches(schema, row, table.name())?,
            None => true,
        };
        if keep {
            matching.push(i);
        }
    }

    // Order.  A missing (snapshot-only) sort key is all-NULL, so the order
    // is a no-op: the scan order is kept, which is also what
    // NULLs-sort-equal would yield.
    if let (Some(OrderBy { ascending, .. }), Some(col_idx)) = (&select.order_by, order_index) {
        matching.sort_by(|&a, &b| {
            let va = &table.rows()[a][col_idx];
            let vb = &table.rows()[b][col_idx];
            // NULLs sort last regardless of direction.
            let ord = match (va.is_null(), vb.is_null()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => std::cmp::Ordering::Greater,
                (false, true) => std::cmp::Ordering::Less,
                (false, false) => va.compare(vb).unwrap_or(std::cmp::Ordering::Equal),
            };
            if *ascending {
                ord
            } else {
                ord.reverse()
            }
        });
    }

    // Limit.
    if let Some(limit) = select.limit {
        matching.truncate(limit);
    }

    // Project; a missing column is a constant-NULL column.
    let columns: Vec<String> = projected.iter().map(|(n, _)| n.clone()).collect();
    let rows: Vec<Vec<Value>> = matching
        .iter()
        .map(|&i| {
            projected
                .iter()
                .map(|(_, index)| match index {
                    Some(index) => table.rows()[i][*index].clone(),
                    None => Value::Null,
                })
                .collect()
        })
        .collect();

    Ok(SnapshotResult {
        result: QueryResult {
            columns,
            rows,
            rows_affected: 0,
        },
        row_indices: matching,
        missing_columns,
    })
}

/// Executes a parsed statement against the catalog.
pub fn execute(statement: &Statement, catalog: &mut Catalog) -> Result<QueryResult> {
    match statement {
        Statement::Select(select) => execute_select(select, catalog),
        Statement::ExplainExpansion(_) => Err(RelationalError::InvalidStatement(
            "EXPLAIN EXPANSION is answered by the crowd layer, not the relational engine \
             (the plan it describes does not exist here)"
                .into(),
        )),
        Statement::Insert {
            table,
            columns,
            rows,
        } => execute_insert(table, columns, rows, catalog),
        Statement::CreateTable { table, columns } => {
            let schema = Schema::new(columns.clone())?;
            catalog.create_table(Table::new(table.clone(), schema))?;
            Ok(QueryResult::empty())
        }
        Statement::AlterTableAddColumn { table, column } => {
            let table = catalog.table_mut(table)?;
            table.add_column(column.clone(), None)?;
            Ok(QueryResult::empty())
        }
        Statement::Update {
            table,
            assignments,
            filter,
        } => execute_update(table, assignments, filter.as_ref(), catalog),
        Statement::Delete { table, filter } => execute_delete(table, filter.as_ref(), catalog),
    }
}

fn matching_rows(table: &Table, filter: Option<&crate::expr::Expr>) -> Result<Vec<usize>> {
    // Validate column references up front for a deterministic error.
    if let Some(filter) = filter {
        for column in filter.referenced_columns() {
            if !table.schema().contains(&column) {
                return Err(RelationalError::UnknownColumn {
                    table: table.name().to_string(),
                    column,
                });
            }
        }
    }
    let mut matching = Vec::new();
    for (i, row) in table.rows().iter().enumerate() {
        let keep = match filter {
            Some(f) => f.matches(table.schema(), row, table.name())?,
            None => true,
        };
        if keep {
            matching.push(i);
        }
    }
    Ok(matching)
}

fn execute_update(
    table_name: &str,
    assignments: &[(String, crate::expr::Expr)],
    filter: Option<&crate::expr::Expr>,
    catalog: &mut Catalog,
) -> Result<QueryResult> {
    let table = catalog.table_mut(table_name)?;
    // Validate assignment targets.
    for (column, _) in assignments {
        if !table.schema().contains(column) {
            return Err(RelationalError::UnknownColumn {
                table: table.name().to_string(),
                column: column.to_lowercase(),
            });
        }
    }
    let matching = matching_rows(table, filter)?;
    let mut updated = 0;
    for &row_index in &matching {
        // Evaluate all assignment expressions against the *current* row
        // before applying any of them, so `SET a = b, b = a` behaves sanely.
        let row = table.row(row_index).expect("row index from scan").to_vec();
        let mut new_values = Vec::with_capacity(assignments.len());
        for (column, expr) in assignments {
            let value = expr.evaluate(table.schema(), &row, table.name())?;
            new_values.push((column.clone(), value));
        }
        for (column, value) in new_values {
            table.set_value(row_index, &column, value)?;
        }
        updated += 1;
    }
    Ok(QueryResult {
        columns: Vec::new(),
        rows: Vec::new(),
        rows_affected: updated,
    })
}

fn execute_delete(
    table_name: &str,
    filter: Option<&crate::expr::Expr>,
    catalog: &mut Catalog,
) -> Result<QueryResult> {
    let table = catalog.table_mut(table_name)?;
    let matching = matching_rows(table, filter)?;
    let removed = table.delete_rows(&matching);
    Ok(QueryResult {
        columns: Vec::new(),
        rows: Vec::new(),
        rows_affected: removed,
    })
}

/// Executes a `SELECT`.
pub fn execute_select(select: &SelectStatement, catalog: &Catalog) -> Result<QueryResult> {
    execute_select_indexed(select, catalog).map(|(result, _)| result)
}

/// Executes a `SELECT`, returning the result alongside the table row index
/// behind each result row (see [`execute_read_indexed`]).
pub fn execute_select_indexed(
    select: &SelectStatement,
    catalog: &Catalog,
) -> Result<(QueryResult, Vec<usize>)> {
    let snapshot = execute_select_core(select, catalog, false)?;
    debug_assert!(
        snapshot.missing_columns.is_empty(),
        "the strict path errors on unknown columns instead of recording them"
    );
    Ok((snapshot.result, snapshot.row_indices))
}

fn execute_insert(
    table_name: &str,
    columns: &[String],
    rows: &[Vec<Value>],
    catalog: &mut Catalog,
) -> Result<QueryResult> {
    let table = catalog.table_mut(table_name)?;
    // Resolve the column list once.
    let indices: Vec<usize> = columns
        .iter()
        .map(|c| {
            table
                .schema()
                .index_of(c)
                .ok_or_else(|| RelationalError::UnknownColumn {
                    table: table.name().to_string(),
                    column: c.to_lowercase(),
                })
        })
        .collect::<Result<Vec<_>>>()?;
    let width = table.schema().len();
    let mut inserted = 0;
    for row in rows {
        let mut full = vec![Value::Null; width];
        for (value, &idx) in row.iter().zip(indices.iter()) {
            full[idx] = value.clone();
        }
        table.insert_row(full)?;
        inserted += 1;
    }
    Ok(QueryResult {
        columns: Vec::new(),
        rows: Vec::new(),
        rows_affected: inserted,
    })
}

/// Convenience helper: creates a table directly from a schema description,
/// bypassing SQL.  Used by the data generators to bulk-load synthetic
/// domains.
pub fn create_table_with_rows(
    catalog: &mut Catalog,
    name: &str,
    columns: Vec<Column>,
    rows: Vec<Vec<Value>>,
) -> Result<()> {
    let schema = Schema::new(columns)?;
    let mut table = Table::new(name, schema);
    for row in rows {
        table.insert_row(row)?;
    }
    catalog.create_table(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parse;
    use crate::value::DataType;

    fn setup() -> Catalog {
        let mut catalog = Catalog::new();
        execute(
            &parse(
                "CREATE TABLE movies (id INTEGER NOT NULL, name TEXT, year INTEGER, rating FLOAT)",
            )
            .unwrap(),
            &mut catalog,
        )
        .unwrap();
        execute(
            &parse(
                "INSERT INTO movies (id, name, year, rating) VALUES \
                 (1, 'Rocky', 1976, 8.1), (2, 'Psycho', 1960, 8.5), \
                 (3, 'Vertigo', 1958, 8.3), (4, 'Grease', 1978, 7.2)",
            )
            .unwrap(),
            &mut catalog,
        )
        .unwrap();
        catalog
    }

    #[test]
    fn create_insert_select_roundtrip() {
        let mut catalog = setup();
        let result = execute(&parse("SELECT * FROM movies").unwrap(), &mut catalog).unwrap();
        assert_eq!(result.columns, vec!["id", "name", "year", "rating"]);
        assert_eq!(result.rows.len(), 4);
    }

    #[test]
    fn filter_projection_order_limit() {
        let mut catalog = setup();
        let result = execute(
            &parse("SELECT name FROM movies WHERE year < 1977 ORDER BY rating DESC LIMIT 2")
                .unwrap(),
            &mut catalog,
        )
        .unwrap();
        assert_eq!(result.columns, vec!["name"]);
        assert_eq!(result.rows.len(), 2);
        assert_eq!(result.rows[0][0], Value::from("Psycho"));
        assert_eq!(result.rows[1][0], Value::from("Vertigo"));
    }

    #[test]
    fn indexed_select_reports_the_physical_row_behind_each_result_row() {
        let catalog = setup();
        let stmt = parse("SELECT name FROM movies WHERE year < 1977 ORDER BY rating DESC").unwrap();
        let (result, rows) = execute_read_indexed(&stmt, &catalog).unwrap();
        // By rating: Psycho (row 1), Vertigo (row 2), Rocky (row 0);
        // Grease (1978) is filtered out.
        assert_eq!(rows, vec![1, 2, 0]);
        assert_eq!(result.rows.len(), rows.len());
        // The indexed and plain paths agree.
        assert_eq!(execute_read(&stmt, &catalog).unwrap(), result);
        // Write statements are rejected, as on the plain read path.
        let stmt = parse("DELETE FROM movies").unwrap();
        assert!(matches!(
            execute_read_indexed(&stmt, &catalog),
            Err(RelationalError::InvalidStatement(_))
        ));
    }

    #[test]
    fn order_by_ascending_and_null_handling() {
        let mut catalog = setup();
        execute(
            &parse("INSERT INTO movies (id, name) VALUES (5, 'Unknown Year')").unwrap(),
            &mut catalog,
        )
        .unwrap();
        let result = execute(
            &parse("SELECT name FROM movies ORDER BY year ASC").unwrap(),
            &mut catalog,
        )
        .unwrap();
        // NULL year sorts last.
        assert_eq!(result.rows.last().unwrap()[0], Value::from("Unknown Year"));
        assert_eq!(result.rows[0][0], Value::from("Vertigo"));
    }

    #[test]
    fn unknown_column_in_filter_is_reported_for_schema_expansion() {
        let mut catalog = setup();
        let err = execute(
            &parse("SELECT * FROM movies WHERE is_comedy = true").unwrap(),
            &mut catalog,
        )
        .unwrap_err();
        assert_eq!(
            err,
            RelationalError::UnknownColumn {
                table: "movies".into(),
                column: "is_comedy".into()
            }
        );
        // Unknown column in projection and ORDER BY too.
        assert!(matches!(
            execute(&parse("SELECT humor FROM movies").unwrap(), &mut catalog),
            Err(RelationalError::UnknownColumn { .. })
        ));
        assert!(matches!(
            execute(
                &parse("SELECT * FROM movies ORDER BY humor").unwrap(),
                &mut catalog
            ),
            Err(RelationalError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn alter_table_add_column_then_query() {
        let mut catalog = setup();
        execute(
            &parse("ALTER TABLE movies ADD COLUMN is_comedy BOOLEAN").unwrap(),
            &mut catalog,
        )
        .unwrap();
        // All values start as NULL, so the predicate matches nothing.
        let result = execute(
            &parse("SELECT * FROM movies WHERE is_comedy = true").unwrap(),
            &mut catalog,
        )
        .unwrap();
        assert!(result.rows.is_empty());
        // Fill one value and re-query.
        catalog
            .table_mut("movies")
            .unwrap()
            .set_value(3, "is_comedy", Value::Boolean(true))
            .unwrap();
        let result = execute(
            &parse("SELECT name FROM movies WHERE is_comedy = true").unwrap(),
            &mut catalog,
        )
        .unwrap();
        assert_eq!(result.rows, vec![vec![Value::from("Grease")]]);
    }

    #[test]
    fn insert_reports_rows_affected_and_validates() {
        let mut catalog = setup();
        let result = execute(
            &parse("INSERT INTO movies (id, name) VALUES (7, 'New'), (8, 'Newer')").unwrap(),
            &mut catalog,
        )
        .unwrap();
        assert_eq!(result.rows_affected, 2);
        // Unknown table / column and NOT NULL violations.
        assert!(matches!(
            execute(
                &parse("INSERT INTO nope (id) VALUES (1)").unwrap(),
                &mut catalog
            ),
            Err(RelationalError::UnknownTable(_))
        ));
        assert!(matches!(
            execute(
                &parse("INSERT INTO movies (genre) VALUES ('comedy')").unwrap(),
                &mut catalog
            ),
            Err(RelationalError::UnknownColumn { .. })
        ));
        assert!(execute(
            &parse("INSERT INTO movies (name) VALUES ('No Id')").unwrap(),
            &mut catalog
        )
        .is_err());
    }

    #[test]
    fn create_table_twice_fails() {
        let mut catalog = setup();
        assert!(matches!(
            execute(
                &parse("CREATE TABLE movies (id INTEGER)").unwrap(),
                &mut catalog
            ),
            Err(RelationalError::TableExists(_))
        ));
    }

    #[test]
    fn unknown_table_in_select() {
        let mut catalog = Catalog::new();
        assert!(matches!(
            execute(&parse("SELECT * FROM missing").unwrap(), &mut catalog),
            Err(RelationalError::UnknownTable(_))
        ));
    }

    #[test]
    fn update_statement_modifies_matching_rows() {
        let mut catalog = setup();
        let result = execute(
            &parse("UPDATE movies SET rating = rating + 1, year = 2000 WHERE year < 1970").unwrap(),
            &mut catalog,
        )
        .unwrap();
        assert_eq!(result.rows_affected, 2);
        let rows = execute(
            &parse("SELECT name, rating, year FROM movies WHERE year = 2000 ORDER BY name")
                .unwrap(),
            &mut catalog,
        )
        .unwrap();
        assert_eq!(rows.rows.len(), 2);
        assert_eq!(rows.rows[0][0], Value::from("Psycho"));
        assert_eq!(rows.rows[0][1], Value::Float(9.5));
        // UPDATE without WHERE touches every row.
        let all = execute(
            &parse("UPDATE movies SET rating = 0.0").unwrap(),
            &mut catalog,
        )
        .unwrap();
        assert_eq!(all.rows_affected, 4);
        // Unknown assignment target and unknown filter column are reported.
        assert!(matches!(
            execute(
                &parse("UPDATE movies SET humor = 1.0").unwrap(),
                &mut catalog
            ),
            Err(RelationalError::UnknownColumn { .. })
        ));
        assert!(matches!(
            execute(
                &parse("UPDATE movies SET rating = 1.0 WHERE humor = 2").unwrap(),
                &mut catalog
            ),
            Err(RelationalError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn delete_statement_removes_matching_rows() {
        let mut catalog = setup();
        let result = execute(
            &parse("DELETE FROM movies WHERE year >= 1976").unwrap(),
            &mut catalog,
        )
        .unwrap();
        assert_eq!(result.rows_affected, 2);
        let remaining = execute(&parse("SELECT name FROM movies").unwrap(), &mut catalog).unwrap();
        assert_eq!(remaining.rows.len(), 2);
        // DELETE without WHERE empties the table.
        let rest = execute(&parse("DELETE FROM movies").unwrap(), &mut catalog).unwrap();
        assert_eq!(rest.rows_affected, 2);
        assert!(
            execute(&parse("SELECT * FROM movies").unwrap(), &mut catalog)
                .unwrap()
                .rows
                .is_empty()
        );
        // Unknown filter columns are reported.
        assert!(matches!(
            execute(
                &parse("DELETE FROM movies WHERE humor = 2").unwrap(),
                &mut catalog
            ),
            Err(RelationalError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn analyze_reports_all_missing_columns_in_one_pass() {
        let mut catalog = setup();
        // Two unknown columns across filter and ORDER BY, one known.
        let stmt =
            parse("SELECT name FROM movies WHERE is_comedy = true AND year > 1970 ORDER BY humor")
                .unwrap();
        let analysis = analyze(&stmt, &catalog).unwrap();
        assert_eq!(analysis.table.as_deref(), Some("movies"));
        assert_eq!(analysis.missing_columns, vec!["is_comedy", "humor"]);
        assert!(!analysis.is_fully_resolved());

        // Fully resolved statements report no missing columns.
        let stmt = parse("SELECT name FROM movies WHERE year > 1970").unwrap();
        let analysis = analyze(&stmt, &catalog).unwrap();
        assert!(analysis.is_fully_resolved());

        // Duplicated references are reported once, in first-appearance order.
        let stmt =
            parse("SELECT a, b FROM movies WHERE a = 1 AND b = 2 AND a = 3 ORDER BY b").unwrap();
        let analysis = analyze(&stmt, &catalog).unwrap();
        assert_eq!(analysis.missing_columns, vec!["a", "b"]);

        // UPDATE and DELETE are analyzed through the same pass.
        let stmt = parse("UPDATE movies SET humor = 1.0 WHERE is_comedy = true").unwrap();
        let analysis = analyze(&stmt, &catalog).unwrap();
        assert_eq!(analysis.missing_columns, vec!["humor", "is_comedy"]);
        let stmt = parse("DELETE FROM movies WHERE humor = 2").unwrap();
        assert_eq!(
            analyze(&stmt, &catalog).unwrap().missing_columns,
            vec!["humor"]
        );

        // CREATE TABLE has no target table to analyze.
        let stmt = parse("CREATE TABLE t2 (id INTEGER)").unwrap();
        let analysis = analyze(&stmt, &catalog).unwrap();
        assert_eq!(analysis.table, None);
        assert!(analysis.is_fully_resolved());

        // Unknown tables are still an error.
        let stmt = parse("SELECT * FROM missing").unwrap();
        assert!(matches!(
            analyze(&stmt, &catalog),
            Err(RelationalError::UnknownTable(_))
        ));
        // Sanity: analysis does not mutate the catalog.
        execute(&parse("SELECT * FROM movies").unwrap(), &mut catalog).unwrap();
    }

    #[test]
    fn statement_referenced_columns_cover_all_clauses() {
        let stmt = parse(
            "SELECT Name, Year FROM movies WHERE IS_COMEDY = true AND year > 1970 ORDER BY rating",
        )
        .unwrap();
        assert_eq!(
            stmt.referenced_columns(),
            vec!["name", "year", "is_comedy", "rating"]
        );
        assert_eq!(stmt.target_table(), Some("movies"));
        let stmt = parse("INSERT INTO movies (id, name) VALUES (1, 'x')").unwrap();
        assert_eq!(stmt.referenced_columns(), vec!["id", "name"]);
        let stmt = parse("UPDATE movies SET rating = rating + 1 WHERE year < 1970").unwrap();
        assert_eq!(stmt.referenced_columns(), vec!["rating", "year"]);
    }

    #[test]
    fn snapshot_select_serves_missing_columns_as_null() {
        let catalog = setup();
        // `is_comedy` does not exist: the strict path errors, the snapshot
        // path answers with the column all-NULL and the predicate over it
        // rejecting every row (NULL-rejects semantics).
        let select = match parse("SELECT name, is_comedy FROM movies WHERE year < 1977").unwrap() {
            Statement::Select(select) => select,
            other => panic!("expected SELECT, got {other:?}"),
        };
        let snapshot = execute_select_snapshot(&select, &catalog).unwrap();
        assert_eq!(snapshot.result.columns, vec!["name", "is_comedy"]);
        assert_eq!(snapshot.missing_columns, vec!["is_comedy"]);
        assert_eq!(snapshot.result.rows.len(), 3);
        assert!(snapshot.result.rows.iter().all(|row| row[1] == Value::Null));
        assert_eq!(snapshot.result.rows.len(), snapshot.row_indices.len());

        // A predicate over the missing column rejects all rows…
        let select = match parse("SELECT name FROM movies WHERE is_comedy = true").unwrap() {
            Statement::Select(select) => select,
            other => panic!("expected SELECT, got {other:?}"),
        };
        let snapshot = execute_select_snapshot(&select, &catalog).unwrap();
        assert!(snapshot.result.rows.is_empty());
        assert_eq!(snapshot.missing_columns, vec!["is_comedy"]);

        // …while OR over a stored column still answers from stored data,
        // and a missing ORDER BY key degrades to scan order instead of
        // failing.
        let select = match parse(
            "SELECT name FROM movies WHERE is_comedy = true OR year < 1977 ORDER BY humor",
        )
        .unwrap()
        {
            Statement::Select(select) => select,
            other => panic!("expected SELECT, got {other:?}"),
        };
        let snapshot = execute_select_snapshot(&select, &catalog).unwrap();
        assert_eq!(snapshot.result.rows.len(), 3);
        assert_eq!(snapshot.missing_columns, vec!["is_comedy", "humor"]);

        // Fully resolved statements report nothing missing and agree with
        // the strict executor.
        let select = match parse("SELECT name FROM movies WHERE year < 1977").unwrap() {
            Statement::Select(select) => select,
            other => panic!("expected SELECT, got {other:?}"),
        };
        let snapshot = execute_select_snapshot(&select, &catalog).unwrap();
        assert!(snapshot.missing_columns.is_empty());
        let (strict, indices) = execute_select_indexed(&select, &catalog).unwrap();
        assert_eq!(snapshot.result, strict);
        assert_eq!(snapshot.row_indices, indices);
    }

    #[test]
    fn explain_expansion_is_rejected_by_the_relational_executor() {
        let mut catalog = setup();
        let stmt = parse("EXPLAIN EXPANSION SELECT * FROM movies").unwrap();
        assert!(matches!(
            execute(&stmt, &mut catalog),
            Err(RelationalError::InvalidStatement(_))
        ));
        assert!(matches!(
            execute_read_indexed(&stmt, &catalog),
            Err(RelationalError::InvalidStatement(_))
        ));
        // But analysis sees straight through to the wrapped SELECT.
        let stmt = parse("EXPLAIN EXPANSION SELECT * FROM movies WHERE is_comedy = true").unwrap();
        let analysis = analyze(&stmt, &catalog).unwrap();
        assert_eq!(analysis.table.as_deref(), Some("movies"));
        assert_eq!(analysis.missing_columns, vec!["is_comedy"]);
    }

    #[test]
    fn helper_bulk_loads_tables() {
        let mut catalog = Catalog::new();
        create_table_with_rows(
            &mut catalog,
            "genres",
            vec![
                Column::new("id", DataType::Integer),
                Column::new("name", DataType::Text),
            ],
            vec![
                vec![Value::Integer(1), Value::from("comedy")],
                vec![Value::Integer(2), Value::from("drama")],
            ],
        )
        .unwrap();
        let result = execute(
            &parse("SELECT name FROM genres ORDER BY id").unwrap(),
            &mut catalog,
        )
        .unwrap();
        assert_eq!(result.rows.len(), 2);
        assert_eq!(result.rows[0][0], Value::from("comedy"));
    }
}
