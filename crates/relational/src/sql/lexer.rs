//! SQL tokenizer.

use crate::error::RelationalError;
use crate::Result;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A keyword (upper-cased): `SELECT`, `FROM`, `WHERE`, …
    Keyword(String),
    /// An identifier (lower-cased): table and column names.
    Identifier(String),
    /// A numeric literal (integer or float).
    Number(String),
    /// A single-quoted string literal (quotes stripped, `''` unescaped).
    StringLiteral(String),
    /// `,`
    Comma,
    /// `(`
    LeftParen,
    /// `)`
    RightParen,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `;`
    Semicolon,
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "ORDER", "BY", "ASC", "DESC", "LIMIT", "INSERT", "INTO", "VALUES",
    "CREATE", "TABLE", "ALTER", "ADD", "COLUMN", "NOT", "NULL", "AND", "OR", "TRUE", "FALSE", "IS",
    "INTEGER", "INT", "FLOAT", "REAL", "DOUBLE", "TEXT", "VARCHAR", "STRING", "BOOLEAN", "BOOL",
    "UPDATE", "SET", "DELETE", "WITH", "EXPLAIN",
];
// `EXPANSION` is deliberately NOT in the list: it only has meaning directly
// after `WITH` and the parser matches it contextually, so pre-existing
// schemas with a column or table named `expansion` keep working.  `WITH`
// itself is reserved, as in standard SQL.

/// Splits a SQL string into tokens.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LeftParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RightParen);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '<' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    tokens.push(Token::LtEq);
                    i += 2;
                } else if i + 1 < chars.len() && chars[i + 1] == '>' {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    return Err(RelationalError::Parse("unexpected character '!'".into()));
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= chars.len() {
                        return Err(RelationalError::Parse("unterminated string literal".into()));
                    }
                    if chars[i] == '\'' {
                        // Escaped quote: '' inside a string.
                        if i + 1 < chars.len() && chars[i + 1] == '\'' {
                            s.push('\'');
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    s.push(chars[i]);
                    i += 1;
                }
                tokens.push(Token::StringLiteral(s));
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                let mut seen_dot = false;
                while i < chars.len()
                    && (chars[i].is_ascii_digit() || (chars[i] == '.' && !seen_dot))
                {
                    if chars[i] == '.' {
                        seen_dot = true;
                    }
                    s.push(chars[i]);
                    i += 1;
                }
                tokens.push(Token::Number(s));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    s.push(chars[i]);
                    i += 1;
                }
                let upper = s.to_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    tokens.push(Token::Keyword(upper));
                } else {
                    tokens.push(Token::Identifier(s.to_lowercase()));
                }
            }
            other => {
                return Err(RelationalError::Parse(format!(
                    "unexpected character '{other}'"
                )));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_full_select() {
        let toks =
            tokenize("SELECT name FROM movies WHERE humor >= 8.5 AND year <> 1999;").unwrap();
        assert_eq!(toks[0], Token::Keyword("SELECT".into()));
        assert_eq!(toks[1], Token::Identifier("name".into()));
        assert!(toks.contains(&Token::GtEq));
        assert!(toks.contains(&Token::Number("8.5".into())));
        assert!(toks.contains(&Token::NotEq));
        assert_eq!(*toks.last().unwrap(), Token::Semicolon);
    }

    #[test]
    fn keywords_are_case_insensitive_identifiers_lowercased() {
        let toks = tokenize("select NaMe from Movies").unwrap();
        assert_eq!(toks[0], Token::Keyword("SELECT".into()));
        assert_eq!(toks[1], Token::Identifier("name".into()));
        assert_eq!(toks[3], Token::Identifier("movies".into()));
    }

    #[test]
    fn string_literals_and_escapes() {
        let toks = tokenize("'it''s good'").unwrap();
        assert_eq!(toks, vec![Token::StringLiteral("it's good".into())]);
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn operators_and_punctuation() {
        let toks = tokenize("( ) , * = < <= > >= != + - /").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::LeftParen,
                Token::RightParen,
                Token::Comma,
                Token::Star,
                Token::Eq,
                Token::Lt,
                Token::LtEq,
                Token::Gt,
                Token::GtEq,
                Token::NotEq,
                Token::Plus,
                Token::Minus,
                Token::Slash,
            ]
        );
    }

    #[test]
    fn rejects_unknown_characters() {
        assert!(tokenize("SELECT # FROM t").is_err());
        assert!(tokenize("!a").is_err());
    }

    #[test]
    fn numbers_parse_with_single_dot() {
        let toks = tokenize("3.14 42").unwrap();
        assert_eq!(
            toks,
            vec![Token::Number("3.14".into()), Token::Number("42".into())]
        );
    }
}
