//! Recursive-descent parser for the SQL subset.

use super::lexer::{tokenize, Token};
use super::{
    ExpansionClause, ExpansionClauseMode, OrderBy, Projection, SelectStatement, Statement,
};
use crate::error::RelationalError;
use crate::expr::{BinaryOperator, Expr, UnaryOperator};
use crate::schema::Column;
use crate::value::{DataType, Value};
use crate::Result;

/// Parses one SQL statement.
pub fn parse(input: &str) -> Result<Statement> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { tokens, pos: 0 };
    let stmt = parser.statement()?;
    // A trailing semicolon is allowed; anything else is an error.
    parser.consume_if(&Token::Semicolon);
    if !parser.at_end() {
        return Err(RelationalError::Parse(format!(
            "unexpected trailing input near {:?}",
            parser.peek()
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn consume_if(&mut self, token: &Token) -> bool {
        if self.peek() == Some(token) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &Token) -> Result<()> {
        if self.consume_if(token) {
            Ok(())
        } else {
            Err(RelationalError::Parse(format!(
                "expected {token:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<()> {
        match self.advance() {
            Some(Token::Keyword(k)) if k == kw => Ok(()),
            other => Err(RelationalError::Parse(format!(
                "expected {kw}, found {other:?}"
            ))),
        }
    }

    fn consume_keyword_if(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Keyword(k)) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn identifier(&mut self) -> Result<String> {
        match self.advance() {
            Some(Token::Identifier(name)) => Ok(name),
            other => Err(RelationalError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        match self.peek() {
            Some(Token::Keyword(k)) if k == "SELECT" => self.select(),
            Some(Token::Keyword(k)) if k == "EXPLAIN" => self.explain_expansion(),
            Some(Token::Keyword(k)) if k == "INSERT" => self.insert(),
            Some(Token::Keyword(k)) if k == "CREATE" => self.create_table(),
            Some(Token::Keyword(k)) if k == "ALTER" => self.alter_table(),
            Some(Token::Keyword(k)) if k == "UPDATE" => self.update(),
            Some(Token::Keyword(k)) if k == "DELETE" => self.delete(),
            other => Err(RelationalError::Parse(format!(
                "expected SELECT, EXPLAIN, INSERT, UPDATE, DELETE, CREATE, or ALTER, found {other:?}"
            ))),
        }
    }

    /// `EXPLAIN EXPANSION <select>` — like `WITH`, `EXPANSION` stays a
    /// contextual identifier so schemas using the name keep working.
    fn explain_expansion(&mut self) -> Result<Statement> {
        self.keyword("EXPLAIN")?;
        match self.advance() {
            Some(Token::Identifier(word)) if word == "expansion" => {}
            other => {
                return Err(RelationalError::Parse(format!(
                    "expected EXPANSION after EXPLAIN, found {other:?}"
                )))
            }
        }
        match self.select()? {
            Statement::Select(select) => Ok(Statement::ExplainExpansion(select)),
            other => unreachable!("select() only returns SELECT, got {other:?}"),
        }
    }

    fn update(&mut self) -> Result<Statement> {
        self.keyword("UPDATE")?;
        let table = self.identifier()?;
        self.keyword("SET")?;
        let mut assignments = Vec::new();
        loop {
            let column = self.identifier()?;
            self.expect(&Token::Eq)?;
            let value = self.expression()?;
            assignments.push((column, value));
            if !self.consume_if(&Token::Comma) {
                break;
            }
        }
        let filter = if self.consume_keyword_if("WHERE") {
            Some(self.expression()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            filter,
        })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.keyword("DELETE")?;
        self.keyword("FROM")?;
        let table = self.identifier()?;
        let filter = if self.consume_keyword_if("WHERE") {
            Some(self.expression()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, filter })
    }

    fn select(&mut self) -> Result<Statement> {
        self.keyword("SELECT")?;
        let projection = if self.consume_if(&Token::Star) {
            Projection::All
        } else {
            let mut columns = vec![self.identifier()?];
            while self.consume_if(&Token::Comma) {
                columns.push(self.identifier()?);
            }
            Projection::Columns(columns)
        };
        self.keyword("FROM")?;
        let table = self.identifier()?;
        let filter = if self.consume_keyword_if("WHERE") {
            Some(self.expression()?)
        } else {
            None
        };
        let order_by = if self.consume_keyword_if("ORDER") {
            self.keyword("BY")?;
            let column = self.identifier()?;
            let ascending = if self.consume_keyword_if("DESC") {
                false
            } else {
                self.consume_keyword_if("ASC");
                true
            };
            Some(OrderBy { column, ascending })
        } else {
            None
        };
        let limit = if self.consume_keyword_if("LIMIT") {
            match self.advance() {
                Some(Token::Number(n)) => Some(
                    n.parse::<usize>()
                        .map_err(|_| RelationalError::Parse(format!("invalid LIMIT value: {n}")))?,
                ),
                other => {
                    return Err(RelationalError::Parse(format!(
                        "expected a number after LIMIT, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        let expansion = if self.consume_keyword_if("WITH") {
            // `expansion` is a contextual keyword: it lexes as a plain
            // identifier so schemas may still use it as a name.
            match self.advance() {
                Some(Token::Identifier(word)) if word == "expansion" => {}
                other => {
                    return Err(RelationalError::Parse(format!(
                        "expected EXPANSION after WITH, found {other:?}"
                    )))
                }
            }
            Some(self.expansion_clause()?)
        } else {
            None
        };
        Ok(Statement::Select(SelectStatement {
            projection,
            table,
            filter,
            order_by,
            limit,
            expansion,
        }))
    }

    /// The parenthesized setting list of a `WITH EXPANSION (…)` clause.
    fn expansion_clause(&mut self) -> Result<ExpansionClause> {
        self.expect(&Token::LeftParen)?;
        let mut clause = ExpansionClause::default();
        // An empty setting list is a valid no-op clause — it is what an
        // `ExpansionClause::default()` renders to, and parse(render(c))
        // must round-trip for every clause value.
        if self.consume_if(&Token::RightParen) {
            return Ok(clause);
        }
        loop {
            let key = match self.advance() {
                Some(Token::Identifier(key)) => key,
                other => {
                    return Err(RelationalError::Parse(format!(
                        "expected a WITH EXPANSION key (budget, mode, or quality), found {other:?}"
                    )))
                }
            };
            match key.as_str() {
                "budget" => {
                    if clause.budget.is_some() {
                        return Err(RelationalError::Parse(
                            "duplicate budget in WITH EXPANSION".into(),
                        ));
                    }
                    self.expect(&Token::Eq)?;
                    clause.budget = Some(self.non_negative_number("budget")?);
                }
                "mode" => {
                    self.expect(&Token::Eq)?;
                    let name = match self.advance() {
                        Some(Token::Identifier(name)) => name,
                        other => {
                            return Err(RelationalError::Parse(format!(
                                "expected an expansion mode after 'mode =', found {other:?}"
                            )))
                        }
                    };
                    // One shared mode table: the parser accepts exactly the
                    // spellings `ExpansionClauseMode::from_str` does, so SQL
                    // and the programmatic `FromStr` surface cannot drift.
                    let mode: ExpansionClauseMode = name.parse()?;
                    match clause.mode {
                        Some(previous) if previous != mode => {
                            return Err(RelationalError::Parse(format!(
                                "conflicting expansion modes '{}' and '{}'",
                                previous.as_str(),
                                mode.as_str()
                            )))
                        }
                        Some(_) => {
                            return Err(RelationalError::Parse(
                                "duplicate mode in WITH EXPANSION".into(),
                            ))
                        }
                        None => clause.mode = Some(mode),
                    }
                }
                "quality" => {
                    if clause.quality_floor.is_some() {
                        return Err(RelationalError::Parse(
                            "duplicate quality in WITH EXPANSION".into(),
                        ));
                    }
                    // `quality >= 0.8` reads like the predicate it enforces;
                    // `quality = 0.8` is accepted as a synonym.
                    if !self.consume_if(&Token::GtEq) && !self.consume_if(&Token::Eq) {
                        return Err(RelationalError::Parse(format!(
                            "expected '>=' or '=' after quality, found {:?}",
                            self.peek()
                        )));
                    }
                    let floor = self.non_negative_number("quality")?;
                    if floor > 1.0 {
                        return Err(RelationalError::Parse(format!(
                            "quality floor must lie in [0, 1], got {floor}"
                        )));
                    }
                    clause.quality_floor = Some(floor);
                }
                other => {
                    return Err(RelationalError::Parse(format!(
                        "unknown WITH EXPANSION key '{other}' \
                         (expected budget, mode, or quality)"
                    )))
                }
            }
            if !self.consume_if(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RightParen)?;
        Ok(clause)
    }

    /// A non-negative numeric literal; negative values are rejected with a
    /// message naming the offending setting.
    fn non_negative_number(&mut self, setting: &str) -> Result<f64> {
        match self.advance() {
            Some(Token::Number(n)) => n
                .parse::<f64>()
                .map_err(|_| RelationalError::Parse(format!("invalid number: {n}"))),
            Some(Token::Minus) => Err(RelationalError::Parse(format!(
                "{setting} must be non-negative"
            ))),
            other => Err(RelationalError::Parse(format!(
                "expected a number for {setting}, found {other:?}"
            ))),
        }
    }

    fn insert(&mut self) -> Result<Statement> {
        self.keyword("INSERT")?;
        self.keyword("INTO")?;
        let table = self.identifier()?;
        self.expect(&Token::LeftParen)?;
        let mut columns = vec![self.identifier()?];
        while self.consume_if(&Token::Comma) {
            columns.push(self.identifier()?);
        }
        self.expect(&Token::RightParen)?;
        self.keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LeftParen)?;
            let mut row = vec![self.literal_value()?];
            while self.consume_if(&Token::Comma) {
                row.push(self.literal_value()?);
            }
            self.expect(&Token::RightParen)?;
            if row.len() != columns.len() {
                return Err(RelationalError::Parse(format!(
                    "INSERT lists {} columns but a value tuple has {} values",
                    columns.len(),
                    row.len()
                )));
            }
            rows.push(row);
            if !self.consume_if(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn create_table(&mut self) -> Result<Statement> {
        self.keyword("CREATE")?;
        self.keyword("TABLE")?;
        let table = self.identifier()?;
        self.expect(&Token::LeftParen)?;
        let mut columns = vec![self.column_definition()?];
        while self.consume_if(&Token::Comma) {
            columns.push(self.column_definition()?);
        }
        self.expect(&Token::RightParen)?;
        Ok(Statement::CreateTable { table, columns })
    }

    fn alter_table(&mut self) -> Result<Statement> {
        self.keyword("ALTER")?;
        self.keyword("TABLE")?;
        let table = self.identifier()?;
        self.keyword("ADD")?;
        self.keyword("COLUMN")?;
        let column = self.column_definition()?;
        Ok(Statement::AlterTableAddColumn { table, column })
    }

    fn column_definition(&mut self) -> Result<Column> {
        let name = self.identifier()?;
        let data_type = match self.advance() {
            Some(Token::Keyword(k)) => match k.as_str() {
                "INTEGER" | "INT" => DataType::Integer,
                "FLOAT" | "REAL" | "DOUBLE" => DataType::Float,
                "TEXT" | "VARCHAR" | "STRING" => DataType::Text,
                "BOOLEAN" | "BOOL" => DataType::Boolean,
                other => return Err(RelationalError::Parse(format!("unknown data type {other}"))),
            },
            other => {
                return Err(RelationalError::Parse(format!(
                    "expected a data type, found {other:?}"
                )))
            }
        };
        let nullable = if self.consume_keyword_if("NOT") {
            self.keyword("NULL")?;
            false
        } else {
            self.consume_keyword_if("NULL");
            true
        };
        Ok(Column {
            name,
            data_type,
            nullable,
        })
    }

    fn literal_value(&mut self) -> Result<Value> {
        match self.advance() {
            Some(Token::Number(n)) => parse_number(&n),
            Some(Token::StringLiteral(s)) => Ok(Value::Text(s)),
            Some(Token::Keyword(k)) if k == "TRUE" => Ok(Value::Boolean(true)),
            Some(Token::Keyword(k)) if k == "FALSE" => Ok(Value::Boolean(false)),
            Some(Token::Keyword(k)) if k == "NULL" => Ok(Value::Null),
            Some(Token::Minus) => match self.advance() {
                Some(Token::Number(n)) => match parse_number(&n)? {
                    Value::Integer(i) => Ok(Value::Integer(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    _ => unreachable!("parse_number only returns numeric values"),
                },
                other => Err(RelationalError::Parse(format!(
                    "expected a number after '-', found {other:?}"
                ))),
            },
            other => Err(RelationalError::Parse(format!(
                "expected a literal, found {other:?}"
            ))),
        }
    }

    // Expression grammar, lowest precedence first.
    fn expression(&mut self) -> Result<Expr> {
        self.or_expression()
    }

    fn or_expression(&mut self) -> Result<Expr> {
        let mut left = self.and_expression()?;
        while self.consume_keyword_if("OR") {
            let right = self.and_expression()?;
            left = Expr::binary(left, BinaryOperator::Or, right);
        }
        Ok(left)
    }

    fn and_expression(&mut self) -> Result<Expr> {
        let mut left = self.not_expression()?;
        while self.consume_keyword_if("AND") {
            let right = self.not_expression()?;
            left = Expr::binary(left, BinaryOperator::And, right);
        }
        Ok(left)
    }

    fn not_expression(&mut self) -> Result<Expr> {
        if self.consume_keyword_if("NOT") {
            let inner = self.not_expression()?;
            return Ok(Expr::UnaryOp {
                op: UnaryOperator::Not,
                expr: Box::new(inner),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.consume_keyword_if("IS") {
            let negated = self.consume_keyword_if("NOT");
            self.keyword("NULL")?;
            return Ok(if negated {
                Expr::IsNotNull(Box::new(left))
            } else {
                Expr::IsNull(Box::new(left))
            });
        }
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinaryOperator::Eq),
            Some(Token::NotEq) => Some(BinaryOperator::NotEq),
            Some(Token::Lt) => Some(BinaryOperator::Lt),
            Some(Token::LtEq) => Some(BinaryOperator::LtEq),
            Some(Token::Gt) => Some(BinaryOperator::Gt),
            Some(Token::GtEq) => Some(BinaryOperator::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(Expr::binary(left, op, right));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOperator::Plus,
                Some(Token::Minus) => BinaryOperator::Minus,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.factor()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinaryOperator::Multiply,
                Some(Token::Slash) => BinaryOperator::Divide,
                _ => break,
            };
            self.pos += 1;
            let right = self.factor()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn factor(&mut self) -> Result<Expr> {
        match self.advance() {
            Some(Token::Number(n)) => Ok(Expr::Literal(parse_number(&n)?)),
            Some(Token::StringLiteral(s)) => Ok(Expr::Literal(Value::Text(s))),
            Some(Token::Keyword(k)) if k == "TRUE" => Ok(Expr::Literal(Value::Boolean(true))),
            Some(Token::Keyword(k)) if k == "FALSE" => Ok(Expr::Literal(Value::Boolean(false))),
            Some(Token::Keyword(k)) if k == "NULL" => Ok(Expr::Literal(Value::Null)),
            Some(Token::Identifier(name)) => Ok(Expr::Column(name)),
            Some(Token::Minus) => {
                let inner = self.factor()?;
                Ok(Expr::UnaryOp {
                    op: UnaryOperator::Negate,
                    expr: Box::new(inner),
                })
            }
            Some(Token::LeftParen) => {
                let inner = self.expression()?;
                self.expect(&Token::RightParen)?;
                Ok(inner)
            }
            other => Err(RelationalError::Parse(format!(
                "expected an expression, found {other:?}"
            ))),
        }
    }
}

fn parse_number(text: &str) -> Result<Value> {
    if text.contains('.') {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| RelationalError::Parse(format!("invalid number: {text}")))
    } else {
        text.parse::<i64>()
            .map(Value::Integer)
            .map_err(|_| RelationalError::Parse(format!("invalid number: {text}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn select_filter(sql: &str) -> Expr {
        match parse(sql).unwrap() {
            Statement::Select(s) => s.filter.unwrap(),
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn where_expression_precedence() {
        // AND binds tighter than OR.
        let e = select_filter("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
        match e {
            Expr::BinaryOp {
                op: BinaryOperator::Or,
                right,
                ..
            } => match *right {
                Expr::BinaryOp {
                    op: BinaryOperator::And,
                    ..
                } => {}
                other => panic!("expected AND on the right of OR, got {other:?}"),
            },
            other => panic!("expected OR at the top, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let e = select_filter("SELECT * FROM t WHERE a = 1 + 2 * 3");
        // Right side of '=' must be Plus(1, Multiply(2, 3)).
        match e {
            Expr::BinaryOp {
                op: BinaryOperator::Eq,
                right,
                ..
            } => match *right {
                Expr::BinaryOp {
                    op: BinaryOperator::Plus,
                    right: ref mul,
                    ..
                } => {
                    assert!(matches!(
                        **mul,
                        Expr::BinaryOp {
                            op: BinaryOperator::Multiply,
                            ..
                        }
                    ));
                }
                other => panic!("expected Plus, got {other:?}"),
            },
            other => panic!("expected Eq, got {other:?}"),
        }
    }

    #[test]
    fn parenthesized_expressions_and_not() {
        let e = select_filter("SELECT * FROM t WHERE NOT (a = 1 OR b = 2)");
        assert!(matches!(
            e,
            Expr::UnaryOp {
                op: UnaryOperator::Not,
                ..
            }
        ));
    }

    #[test]
    fn is_null_and_is_not_null() {
        let e = select_filter("SELECT * FROM t WHERE genre IS NULL");
        assert!(matches!(e, Expr::IsNull(_)));
        let e = select_filter("SELECT * FROM t WHERE genre IS NOT NULL");
        assert!(matches!(e, Expr::IsNotNull(_)));
    }

    #[test]
    fn negative_literals_in_insert_and_where() {
        match parse("INSERT INTO t (a) VALUES (-5), (2.5)").unwrap() {
            Statement::Insert { rows, .. } => {
                assert_eq!(rows[0][0], Value::Integer(-5));
                assert_eq!(rows[1][0], Value::Float(2.5));
            }
            other => panic!("expected INSERT, got {other:?}"),
        }
        let e = select_filter("SELECT * FROM t WHERE a > -3");
        match e {
            Expr::BinaryOp { right, .. } => {
                assert!(matches!(
                    *right,
                    Expr::UnaryOp {
                        op: UnaryOperator::Negate,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn insert_arity_mismatch_is_rejected() {
        assert!(parse("INSERT INTO t (a, b) VALUES (1)").is_err());
    }

    #[test]
    fn trailing_semicolon_is_accepted() {
        assert!(parse("SELECT * FROM t;").is_ok());
        assert!(parse("SELECT * FROM t; SELECT * FROM u").is_err());
    }

    fn select_expansion(sql: &str) -> ExpansionClause {
        match parse(sql).unwrap() {
            Statement::Select(s) => s.expansion.unwrap(),
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    fn parse_error(sql: &str) -> String {
        match parse(sql).unwrap_err() {
            RelationalError::Parse(msg) => msg,
            other => panic!("expected a parse error, got {other:?}"),
        }
    }

    #[test]
    fn with_expansion_clause_parses_all_settings() {
        let clause = select_expansion(
            "SELECT name FROM movies WHERE is_comedy = true \
             WITH EXPANSION (budget = 12.5, mode = best_effort, quality >= 0.8)",
        );
        assert_eq!(clause.budget, Some(12.5));
        assert_eq!(clause.mode, Some(ExpansionClauseMode::BestEffort));
        assert_eq!(clause.quality_floor, Some(0.8));
        // Settings are optional and order-free; `quality =` is a synonym.
        let clause = select_expansion(
            "SELECT * FROM t ORDER BY x LIMIT 3 WITH EXPANSION (quality = 0.9, mode = deny)",
        );
        assert_eq!(clause.budget, None);
        assert_eq!(clause.mode, Some(ExpansionClauseMode::Deny));
        assert_eq!(clause.quality_floor, Some(0.9));
        for (name, mode) in [
            ("deny", ExpansionClauseMode::Deny),
            ("cache_only", ExpansionClauseMode::CacheOnly),
            ("best_effort", ExpansionClauseMode::BestEffort),
            ("full", ExpansionClauseMode::Full),
        ] {
            let clause =
                select_expansion(&format!("SELECT * FROM t WITH EXPANSION (mode = {name})"));
            assert_eq!(clause.mode, Some(mode));
        }
    }

    #[test]
    fn with_expansion_clause_round_trips_through_display() {
        for sql in [
            "SELECT * FROM t WITH EXPANSION (budget = 12.5, mode = best_effort, quality >= 0.8)",
            "SELECT * FROM t WITH EXPANSION (mode = cache_only)",
            "SELECT * FROM t WITH EXPANSION (budget = 0.4)",
            "SELECT * FROM t WITH EXPANSION (quality >= 1)",
            "SELECT * FROM t WITH EXPANSION ()",
        ] {
            let clause = select_expansion(sql);
            let rendered = format!("SELECT * FROM t {clause}");
            assert_eq!(
                select_expansion(&rendered),
                clause,
                "clause of {sql:?} did not survive the {rendered:?} round-trip"
            );
        }
    }

    #[test]
    fn with_expansion_rejects_unknown_keys_and_modes() {
        let msg = parse_error("SELECT * FROM t WITH EXPANSION (price = 3)");
        assert!(msg.contains("unknown WITH EXPANSION key 'price'"), "{msg}");
        assert!(msg.contains("budget, mode, or quality"), "{msg}");
        let msg = parse_error("SELECT * FROM t WITH EXPANSION (mode = cheap)");
        assert!(msg.contains("unknown expansion mode 'cheap'"), "{msg}");
        assert!(msg.contains("best_effort"), "{msg}");
    }

    #[test]
    fn with_expansion_rejects_negative_and_out_of_range_values() {
        let msg = parse_error("SELECT * FROM t WITH EXPANSION (budget = -5)");
        assert!(msg.contains("budget must be non-negative"), "{msg}");
        let msg = parse_error("SELECT * FROM t WITH EXPANSION (quality >= -0.1)");
        assert!(msg.contains("quality must be non-negative"), "{msg}");
        let msg = parse_error("SELECT * FROM t WITH EXPANSION (quality >= 1.5)");
        assert!(msg.contains("quality floor must lie in [0, 1]"), "{msg}");
    }

    #[test]
    fn with_expansion_rejects_conflicting_and_duplicate_settings() {
        let msg = parse_error("SELECT * FROM t WITH EXPANSION (mode = deny, mode = best_effort)");
        assert!(
            msg.contains("conflicting expansion modes 'deny' and 'best_effort'"),
            "{msg}"
        );
        let msg = parse_error("SELECT * FROM t WITH EXPANSION (mode = full, mode = full)");
        assert!(msg.contains("duplicate mode"), "{msg}");
        let msg = parse_error("SELECT * FROM t WITH EXPANSION (budget = 1, budget = 2)");
        assert!(msg.contains("duplicate budget"), "{msg}");
        let msg = parse_error("SELECT * FROM t WITH EXPANSION (quality >= 0.5, quality >= 0.6)");
        assert!(msg.contains("duplicate quality"), "{msg}");
    }

    #[test]
    fn explain_expansion_wraps_a_full_select() {
        let stmt = parse(
            "EXPLAIN EXPANSION SELECT name FROM movies WHERE is_comedy = true \
             ORDER BY year DESC LIMIT 5 WITH EXPANSION (budget = 2.5)",
        )
        .unwrap();
        match stmt {
            Statement::ExplainExpansion(select) => {
                assert_eq!(select.table, "movies");
                assert!(select.filter.is_some());
                assert_eq!(select.limit, Some(5));
                assert_eq!(select.expansion.unwrap().budget, Some(2.5));
            }
            other => panic!("expected EXPLAIN EXPANSION, got {other:?}"),
        }
        // The wrapper is read-only, targets the inner table, and references
        // exactly what the wrapped SELECT would.
        let stmt = parse("EXPLAIN EXPANSION SELECT a FROM t WHERE b = 1 ORDER BY c").unwrap();
        assert!(stmt.is_read_only());
        assert_eq!(stmt.target_table(), Some("t"));
        assert_eq!(stmt.referenced_columns(), vec!["a", "b", "c"]);
    }

    #[test]
    fn explain_expansion_rejects_malformed_forms() {
        let msg = parse_error("EXPLAIN SELECT * FROM t");
        assert!(msg.contains("expected EXPANSION after EXPLAIN"), "{msg}");
        assert!(parse("EXPLAIN EXPANSION").is_err());
        assert!(parse("EXPLAIN EXPANSION INSERT INTO t (a) VALUES (1)").is_err());
        assert!(parse("EXPLAIN EXPANSION DELETE FROM t").is_err());
        // EXPLAIN is a reserved keyword; EXPANSION stays contextual.
        assert!(parse("SELECT expansion FROM t").is_ok());
        assert!(parse("SELECT explain FROM t").is_err());
    }

    #[test]
    fn expansion_clause_mode_from_str_matches_the_parser() {
        // The FromStr table and the `mode =` table are the same code path.
        for mode in ExpansionClauseMode::ALL {
            assert_eq!(mode.as_str().parse::<ExpansionClauseMode>().unwrap(), mode);
            assert_eq!(mode.to_string(), mode.as_str());
            let clause =
                select_expansion(&format!("SELECT * FROM t WITH EXPANSION (mode = {mode})"));
            assert_eq!(clause.mode, Some(mode));
        }
        assert!("cheap".parse::<ExpansionClauseMode>().is_err());
        // Case-insensitive, like everything else in the SQL surface.
        assert_eq!(
            "BEST_EFFORT".parse::<ExpansionClauseMode>().unwrap(),
            ExpansionClauseMode::BestEffort
        );
    }

    #[test]
    fn with_expansion_empty_clause_is_a_valid_no_op() {
        let clause = select_expansion("SELECT * FROM t WITH EXPANSION ()");
        assert!(clause.is_empty());
        assert_eq!(clause, ExpansionClause::default());
    }

    #[test]
    fn expansion_stays_usable_as_an_ordinary_identifier() {
        // `expansion` is a contextual keyword (only after WITH): schemas
        // that already use the name keep working.
        match parse("SELECT expansion FROM t WHERE expansion > 1").unwrap() {
            Statement::Select(s) => {
                assert_eq!(s.projection, Projection::Columns(vec!["expansion".into()]));
                assert!(s.filter.is_some());
            }
            other => panic!("expected SELECT, got {other:?}"),
        }
        match parse("CREATE TABLE expansion (expansion INTEGER)").unwrap() {
            Statement::CreateTable { table, columns } => {
                assert_eq!(table, "expansion");
                assert_eq!(columns[0].name, "expansion");
            }
            other => panic!("expected CREATE TABLE, got {other:?}"),
        }
        // But after WITH it introduces the clause, and nothing else does.
        let msg = parse_error("SELECT * FROM t WITH budget (x = 1)");
        assert!(msg.contains("expected EXPANSION after WITH"), "{msg}");
    }

    #[test]
    fn with_expansion_malformed_clauses_are_rejected() {
        assert!(parse("SELECT * FROM t WITH EXPANSION").is_err());
        assert!(parse("SELECT * FROM t WITH EXPANSION (budget)").is_err());
        assert!(parse("SELECT * FROM t WITH EXPANSION (budget = )").is_err());
        assert!(parse("SELECT * FROM t WITH EXPANSION (mode = best_effort").is_err());
        assert!(parse("SELECT * FROM t WITH (budget = 1)").is_err());
        // The clause is a suffix: nothing may follow it.
        assert!(parse("SELECT * FROM t WITH EXPANSION (budget = 1) LIMIT 2").is_err());
    }

    #[test]
    fn boolean_and_null_literals() {
        match parse("INSERT INTO t (a, b, c) VALUES (true, false, NULL)").unwrap() {
            Statement::Insert { rows, .. } => {
                assert_eq!(
                    rows[0],
                    vec![Value::Boolean(true), Value::Boolean(false), Value::Null]
                );
            }
            other => panic!("expected INSERT, got {other:?}"),
        }
    }

    #[test]
    fn type_synonyms() {
        match parse("CREATE TABLE t (a INT, b DOUBLE, c VARCHAR, d BOOL)").unwrap() {
            Statement::CreateTable { columns, .. } => {
                assert_eq!(columns[0].data_type, DataType::Integer);
                assert_eq!(columns[1].data_type, DataType::Float);
                assert_eq!(columns[2].data_type, DataType::Text);
                assert_eq!(columns[3].data_type, DataType::Boolean);
            }
            other => panic!("expected CREATE TABLE, got {other:?}"),
        }
    }
}
