//! Recursive-descent parser for the SQL subset.

use super::lexer::{tokenize, Token};
use super::{OrderBy, Projection, SelectStatement, Statement};
use crate::error::RelationalError;
use crate::expr::{BinaryOperator, Expr, UnaryOperator};
use crate::schema::Column;
use crate::value::{DataType, Value};
use crate::Result;

/// Parses one SQL statement.
pub fn parse(input: &str) -> Result<Statement> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { tokens, pos: 0 };
    let stmt = parser.statement()?;
    // A trailing semicolon is allowed; anything else is an error.
    parser.consume_if(&Token::Semicolon);
    if !parser.at_end() {
        return Err(RelationalError::Parse(format!(
            "unexpected trailing input near {:?}",
            parser.peek()
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn consume_if(&mut self, token: &Token) -> bool {
        if self.peek() == Some(token) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &Token) -> Result<()> {
        if self.consume_if(token) {
            Ok(())
        } else {
            Err(RelationalError::Parse(format!(
                "expected {token:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<()> {
        match self.advance() {
            Some(Token::Keyword(k)) if k == kw => Ok(()),
            other => Err(RelationalError::Parse(format!(
                "expected {kw}, found {other:?}"
            ))),
        }
    }

    fn consume_keyword_if(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Keyword(k)) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn identifier(&mut self) -> Result<String> {
        match self.advance() {
            Some(Token::Identifier(name)) => Ok(name),
            other => Err(RelationalError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        match self.peek() {
            Some(Token::Keyword(k)) if k == "SELECT" => self.select(),
            Some(Token::Keyword(k)) if k == "INSERT" => self.insert(),
            Some(Token::Keyword(k)) if k == "CREATE" => self.create_table(),
            Some(Token::Keyword(k)) if k == "ALTER" => self.alter_table(),
            Some(Token::Keyword(k)) if k == "UPDATE" => self.update(),
            Some(Token::Keyword(k)) if k == "DELETE" => self.delete(),
            other => Err(RelationalError::Parse(format!(
                "expected SELECT, INSERT, UPDATE, DELETE, CREATE, or ALTER, found {other:?}"
            ))),
        }
    }

    fn update(&mut self) -> Result<Statement> {
        self.keyword("UPDATE")?;
        let table = self.identifier()?;
        self.keyword("SET")?;
        let mut assignments = Vec::new();
        loop {
            let column = self.identifier()?;
            self.expect(&Token::Eq)?;
            let value = self.expression()?;
            assignments.push((column, value));
            if !self.consume_if(&Token::Comma) {
                break;
            }
        }
        let filter = if self.consume_keyword_if("WHERE") {
            Some(self.expression()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            filter,
        })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.keyword("DELETE")?;
        self.keyword("FROM")?;
        let table = self.identifier()?;
        let filter = if self.consume_keyword_if("WHERE") {
            Some(self.expression()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, filter })
    }

    fn select(&mut self) -> Result<Statement> {
        self.keyword("SELECT")?;
        let projection = if self.consume_if(&Token::Star) {
            Projection::All
        } else {
            let mut columns = vec![self.identifier()?];
            while self.consume_if(&Token::Comma) {
                columns.push(self.identifier()?);
            }
            Projection::Columns(columns)
        };
        self.keyword("FROM")?;
        let table = self.identifier()?;
        let filter = if self.consume_keyword_if("WHERE") {
            Some(self.expression()?)
        } else {
            None
        };
        let order_by = if self.consume_keyword_if("ORDER") {
            self.keyword("BY")?;
            let column = self.identifier()?;
            let ascending = if self.consume_keyword_if("DESC") {
                false
            } else {
                self.consume_keyword_if("ASC");
                true
            };
            Some(OrderBy { column, ascending })
        } else {
            None
        };
        let limit = if self.consume_keyword_if("LIMIT") {
            match self.advance() {
                Some(Token::Number(n)) => Some(
                    n.parse::<usize>()
                        .map_err(|_| RelationalError::Parse(format!("invalid LIMIT value: {n}")))?,
                ),
                other => {
                    return Err(RelationalError::Parse(format!(
                        "expected a number after LIMIT, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(Statement::Select(SelectStatement {
            projection,
            table,
            filter,
            order_by,
            limit,
        }))
    }

    fn insert(&mut self) -> Result<Statement> {
        self.keyword("INSERT")?;
        self.keyword("INTO")?;
        let table = self.identifier()?;
        self.expect(&Token::LeftParen)?;
        let mut columns = vec![self.identifier()?];
        while self.consume_if(&Token::Comma) {
            columns.push(self.identifier()?);
        }
        self.expect(&Token::RightParen)?;
        self.keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LeftParen)?;
            let mut row = vec![self.literal_value()?];
            while self.consume_if(&Token::Comma) {
                row.push(self.literal_value()?);
            }
            self.expect(&Token::RightParen)?;
            if row.len() != columns.len() {
                return Err(RelationalError::Parse(format!(
                    "INSERT lists {} columns but a value tuple has {} values",
                    columns.len(),
                    row.len()
                )));
            }
            rows.push(row);
            if !self.consume_if(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn create_table(&mut self) -> Result<Statement> {
        self.keyword("CREATE")?;
        self.keyword("TABLE")?;
        let table = self.identifier()?;
        self.expect(&Token::LeftParen)?;
        let mut columns = vec![self.column_definition()?];
        while self.consume_if(&Token::Comma) {
            columns.push(self.column_definition()?);
        }
        self.expect(&Token::RightParen)?;
        Ok(Statement::CreateTable { table, columns })
    }

    fn alter_table(&mut self) -> Result<Statement> {
        self.keyword("ALTER")?;
        self.keyword("TABLE")?;
        let table = self.identifier()?;
        self.keyword("ADD")?;
        self.keyword("COLUMN")?;
        let column = self.column_definition()?;
        Ok(Statement::AlterTableAddColumn { table, column })
    }

    fn column_definition(&mut self) -> Result<Column> {
        let name = self.identifier()?;
        let data_type = match self.advance() {
            Some(Token::Keyword(k)) => match k.as_str() {
                "INTEGER" | "INT" => DataType::Integer,
                "FLOAT" | "REAL" | "DOUBLE" => DataType::Float,
                "TEXT" | "VARCHAR" | "STRING" => DataType::Text,
                "BOOLEAN" | "BOOL" => DataType::Boolean,
                other => return Err(RelationalError::Parse(format!("unknown data type {other}"))),
            },
            other => {
                return Err(RelationalError::Parse(format!(
                    "expected a data type, found {other:?}"
                )))
            }
        };
        let nullable = if self.consume_keyword_if("NOT") {
            self.keyword("NULL")?;
            false
        } else {
            self.consume_keyword_if("NULL");
            true
        };
        Ok(Column {
            name,
            data_type,
            nullable,
        })
    }

    fn literal_value(&mut self) -> Result<Value> {
        match self.advance() {
            Some(Token::Number(n)) => parse_number(&n),
            Some(Token::StringLiteral(s)) => Ok(Value::Text(s)),
            Some(Token::Keyword(k)) if k == "TRUE" => Ok(Value::Boolean(true)),
            Some(Token::Keyword(k)) if k == "FALSE" => Ok(Value::Boolean(false)),
            Some(Token::Keyword(k)) if k == "NULL" => Ok(Value::Null),
            Some(Token::Minus) => match self.advance() {
                Some(Token::Number(n)) => match parse_number(&n)? {
                    Value::Integer(i) => Ok(Value::Integer(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    _ => unreachable!("parse_number only returns numeric values"),
                },
                other => Err(RelationalError::Parse(format!(
                    "expected a number after '-', found {other:?}"
                ))),
            },
            other => Err(RelationalError::Parse(format!(
                "expected a literal, found {other:?}"
            ))),
        }
    }

    // Expression grammar, lowest precedence first.
    fn expression(&mut self) -> Result<Expr> {
        self.or_expression()
    }

    fn or_expression(&mut self) -> Result<Expr> {
        let mut left = self.and_expression()?;
        while self.consume_keyword_if("OR") {
            let right = self.and_expression()?;
            left = Expr::binary(left, BinaryOperator::Or, right);
        }
        Ok(left)
    }

    fn and_expression(&mut self) -> Result<Expr> {
        let mut left = self.not_expression()?;
        while self.consume_keyword_if("AND") {
            let right = self.not_expression()?;
            left = Expr::binary(left, BinaryOperator::And, right);
        }
        Ok(left)
    }

    fn not_expression(&mut self) -> Result<Expr> {
        if self.consume_keyword_if("NOT") {
            let inner = self.not_expression()?;
            return Ok(Expr::UnaryOp {
                op: UnaryOperator::Not,
                expr: Box::new(inner),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.consume_keyword_if("IS") {
            let negated = self.consume_keyword_if("NOT");
            self.keyword("NULL")?;
            return Ok(if negated {
                Expr::IsNotNull(Box::new(left))
            } else {
                Expr::IsNull(Box::new(left))
            });
        }
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinaryOperator::Eq),
            Some(Token::NotEq) => Some(BinaryOperator::NotEq),
            Some(Token::Lt) => Some(BinaryOperator::Lt),
            Some(Token::LtEq) => Some(BinaryOperator::LtEq),
            Some(Token::Gt) => Some(BinaryOperator::Gt),
            Some(Token::GtEq) => Some(BinaryOperator::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(Expr::binary(left, op, right));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOperator::Plus,
                Some(Token::Minus) => BinaryOperator::Minus,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.factor()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinaryOperator::Multiply,
                Some(Token::Slash) => BinaryOperator::Divide,
                _ => break,
            };
            self.pos += 1;
            let right = self.factor()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn factor(&mut self) -> Result<Expr> {
        match self.advance() {
            Some(Token::Number(n)) => Ok(Expr::Literal(parse_number(&n)?)),
            Some(Token::StringLiteral(s)) => Ok(Expr::Literal(Value::Text(s))),
            Some(Token::Keyword(k)) if k == "TRUE" => Ok(Expr::Literal(Value::Boolean(true))),
            Some(Token::Keyword(k)) if k == "FALSE" => Ok(Expr::Literal(Value::Boolean(false))),
            Some(Token::Keyword(k)) if k == "NULL" => Ok(Expr::Literal(Value::Null)),
            Some(Token::Identifier(name)) => Ok(Expr::Column(name)),
            Some(Token::Minus) => {
                let inner = self.factor()?;
                Ok(Expr::UnaryOp {
                    op: UnaryOperator::Negate,
                    expr: Box::new(inner),
                })
            }
            Some(Token::LeftParen) => {
                let inner = self.expression()?;
                self.expect(&Token::RightParen)?;
                Ok(inner)
            }
            other => Err(RelationalError::Parse(format!(
                "expected an expression, found {other:?}"
            ))),
        }
    }
}

fn parse_number(text: &str) -> Result<Value> {
    if text.contains('.') {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| RelationalError::Parse(format!("invalid number: {text}")))
    } else {
        text.parse::<i64>()
            .map(Value::Integer)
            .map_err(|_| RelationalError::Parse(format!("invalid number: {text}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn select_filter(sql: &str) -> Expr {
        match parse(sql).unwrap() {
            Statement::Select(s) => s.filter.unwrap(),
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn where_expression_precedence() {
        // AND binds tighter than OR.
        let e = select_filter("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
        match e {
            Expr::BinaryOp {
                op: BinaryOperator::Or,
                right,
                ..
            } => match *right {
                Expr::BinaryOp {
                    op: BinaryOperator::And,
                    ..
                } => {}
                other => panic!("expected AND on the right of OR, got {other:?}"),
            },
            other => panic!("expected OR at the top, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let e = select_filter("SELECT * FROM t WHERE a = 1 + 2 * 3");
        // Right side of '=' must be Plus(1, Multiply(2, 3)).
        match e {
            Expr::BinaryOp {
                op: BinaryOperator::Eq,
                right,
                ..
            } => match *right {
                Expr::BinaryOp {
                    op: BinaryOperator::Plus,
                    right: ref mul,
                    ..
                } => {
                    assert!(matches!(
                        **mul,
                        Expr::BinaryOp {
                            op: BinaryOperator::Multiply,
                            ..
                        }
                    ));
                }
                other => panic!("expected Plus, got {other:?}"),
            },
            other => panic!("expected Eq, got {other:?}"),
        }
    }

    #[test]
    fn parenthesized_expressions_and_not() {
        let e = select_filter("SELECT * FROM t WHERE NOT (a = 1 OR b = 2)");
        assert!(matches!(
            e,
            Expr::UnaryOp {
                op: UnaryOperator::Not,
                ..
            }
        ));
    }

    #[test]
    fn is_null_and_is_not_null() {
        let e = select_filter("SELECT * FROM t WHERE genre IS NULL");
        assert!(matches!(e, Expr::IsNull(_)));
        let e = select_filter("SELECT * FROM t WHERE genre IS NOT NULL");
        assert!(matches!(e, Expr::IsNotNull(_)));
    }

    #[test]
    fn negative_literals_in_insert_and_where() {
        match parse("INSERT INTO t (a) VALUES (-5), (2.5)").unwrap() {
            Statement::Insert { rows, .. } => {
                assert_eq!(rows[0][0], Value::Integer(-5));
                assert_eq!(rows[1][0], Value::Float(2.5));
            }
            other => panic!("expected INSERT, got {other:?}"),
        }
        let e = select_filter("SELECT * FROM t WHERE a > -3");
        match e {
            Expr::BinaryOp { right, .. } => {
                assert!(matches!(
                    *right,
                    Expr::UnaryOp {
                        op: UnaryOperator::Negate,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn insert_arity_mismatch_is_rejected() {
        assert!(parse("INSERT INTO t (a, b) VALUES (1)").is_err());
    }

    #[test]
    fn trailing_semicolon_is_accepted() {
        assert!(parse("SELECT * FROM t;").is_ok());
        assert!(parse("SELECT * FROM t; SELECT * FROM u").is_err());
    }

    #[test]
    fn boolean_and_null_literals() {
        match parse("INSERT INTO t (a, b, c) VALUES (true, false, NULL)").unwrap() {
            Statement::Insert { rows, .. } => {
                assert_eq!(
                    rows[0],
                    vec![Value::Boolean(true), Value::Boolean(false), Value::Null]
                );
            }
            other => panic!("expected INSERT, got {other:?}"),
        }
    }

    #[test]
    fn type_synonyms() {
        match parse("CREATE TABLE t (a INT, b DOUBLE, c VARCHAR, d BOOL)").unwrap() {
            Statement::CreateTable { columns, .. } => {
                assert_eq!(columns[0].data_type, DataType::Integer);
                assert_eq!(columns[1].data_type, DataType::Float);
                assert_eq!(columns[2].data_type, DataType::Text);
                assert_eq!(columns[3].data_type, DataType::Boolean);
            }
            other => panic!("expected CREATE TABLE, got {other:?}"),
        }
    }
}
