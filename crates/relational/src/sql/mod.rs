//! A SQL-subset parser.
//!
//! The grammar covers exactly what the paper's scenarios need:
//!
//! ```sql
//! SELECT name FROM movies WHERE humor >= 8;
//! SELECT * FROM movies WHERE is_comedy = true ORDER BY year DESC LIMIT 10;
//! INSERT INTO movies (id, name, year) VALUES (1, 'Rocky', 1976);
//! CREATE TABLE movies (id INTEGER NOT NULL, name TEXT, year INTEGER);
//! ALTER TABLE movies ADD COLUMN is_comedy BOOLEAN;
//! ```

mod lexer;
mod parser;

pub use lexer::{tokenize, Token};
pub use parser::parse;

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::expr::Expr;
use crate::schema::Column;
use crate::value::Value;

/// The projection list of a `SELECT`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Projection {
    /// `SELECT *`
    All,
    /// `SELECT col1, col2, …`
    Columns(Vec<String>),
}

/// `ORDER BY <column> [ASC | DESC]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderBy {
    /// Column to sort by.
    pub column: String,
    /// Ascending (`true`) or descending order.
    pub ascending: bool,
}

/// The expansion mode named in a `WITH EXPANSION (mode = …)` clause.
///
/// This is the *syntactic* mode — the crowd layer maps it onto its semantic
/// policy type.  The relational engine itself never expands anything; it
/// only carries the requester's instructions through the AST.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExpansionClauseMode {
    /// `mode = deny` — error out instead of expanding missing columns.
    Deny,
    /// `mode = cache_only` — serve already-acquired judgments, `NULL`
    /// otherwise; never dispatch new crowd work.
    CacheOnly,
    /// `mode = best_effort` — expand until the budget is exhausted and
    /// return partial columns for the rest.
    BestEffort,
    /// `mode = full` — expand everything regardless of cost.
    Full,
}

impl ExpansionClauseMode {
    /// The keyword as it appears in SQL.
    pub fn as_str(&self) -> &'static str {
        match self {
            ExpansionClauseMode::Deny => "deny",
            ExpansionClauseMode::CacheOnly => "cache_only",
            ExpansionClauseMode::BestEffort => "best_effort",
            ExpansionClauseMode::Full => "full",
        }
    }

    /// Every mode with its SQL spelling — the single table the parser,
    /// [`std::str::FromStr`], and the crowd layer's `ExpansionMode`
    /// conversions are all built on, so the accepted spellings cannot
    /// drift between surfaces.
    pub const ALL: [ExpansionClauseMode; 4] = [
        ExpansionClauseMode::Deny,
        ExpansionClauseMode::CacheOnly,
        ExpansionClauseMode::BestEffort,
        ExpansionClauseMode::Full,
    ];
}

impl fmt::Display for ExpansionClauseMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for ExpansionClauseMode {
    type Err = crate::error::RelationalError;

    /// Parses the SQL spelling of a mode (`deny`, `cache_only`,
    /// `best_effort`, `full`), case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ExpansionClauseMode::ALL
            .into_iter()
            .find(|mode| mode.as_str().eq_ignore_ascii_case(s))
            .ok_or_else(|| {
                crate::error::RelationalError::Parse(format!(
                    "unknown expansion mode '{s}' \
                     (expected deny, cache_only, best_effort, or full)"
                ))
            })
    }
}

/// A parsed `WITH EXPANSION (budget = …, mode = …, quality >= …)` suffix
/// clause: the per-query expansion policy expressed in SQL itself.
///
/// Every setting is optional; the crowd layer fills unset fields from the
/// session defaults.  The clause renders back to SQL via [`fmt::Display`],
/// and `parse(render(clause))` round-trips.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExpansionClause {
    /// `budget = <dollars>` — the most this query may spend on crowd work.
    pub budget: Option<f64>,
    /// `mode = <deny | cache_only | best_effort | full>`.
    pub mode: Option<ExpansionClauseMode>,
    /// `quality >= <floor>` — drop crowd verdicts whose inter-worker
    /// agreement lies below the floor (in `[0, 1]`).
    pub quality_floor: Option<f64>,
}

impl ExpansionClause {
    /// True when no setting was provided.
    pub fn is_empty(&self) -> bool {
        self.budget.is_none() && self.mode.is_none() && self.quality_floor.is_none()
    }
}

impl fmt::Display for ExpansionClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WITH EXPANSION (")?;
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            Ok(())
        };
        if let Some(budget) = self.budget {
            sep(f)?;
            write!(f, "budget = {budget}")?;
        }
        if let Some(mode) = self.mode {
            sep(f)?;
            write!(f, "mode = {}", mode.as_str())?;
        }
        if let Some(floor) = self.quality_floor {
            sep(f)?;
            write!(f, "quality >= {floor}")?;
        }
        write!(f, ")")
    }
}

/// A parsed `SELECT` statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectStatement {
    /// Projection list.
    pub projection: Projection,
    /// Source table.
    pub table: String,
    /// Optional `WHERE` predicate.
    pub filter: Option<Expr>,
    /// Optional `ORDER BY` clause.
    pub order_by: Option<OrderBy>,
    /// Optional `LIMIT` clause.
    pub limit: Option<usize>,
    /// Optional `WITH EXPANSION (…)` suffix clause carrying the per-query
    /// expansion policy.
    pub expansion: Option<ExpansionClause>,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Statement {
    /// `SELECT …`
    Select(SelectStatement),
    /// `EXPLAIN EXPANSION SELECT …` — ask what crowd work the wrapped
    /// `SELECT` *would* trigger (planned concepts, cache hits, a priced
    /// dollar preview) without dispatching any of it.  The relational
    /// engine only carries the request; the crowd layer answers it.
    ExplainExpansion(SelectStatement),
    /// `INSERT INTO …`
    Insert {
        /// Target table.
        table: String,
        /// Column list.
        columns: Vec<String>,
        /// One or more value tuples.
        rows: Vec<Vec<Value>>,
    },
    /// `CREATE TABLE …`
    CreateTable {
        /// New table name.
        table: String,
        /// Column definitions.
        columns: Vec<Column>,
    },
    /// `ALTER TABLE … ADD COLUMN …` — the DDL form of schema expansion.
    AlterTableAddColumn {
        /// Target table.
        table: String,
        /// The new column.
        column: Column,
    },
    /// `UPDATE … SET … [WHERE …]` — used e.g. to overwrite crowd-derived
    /// values after a re-crowd-sourcing round.
    Update {
        /// Target table.
        table: String,
        /// `(column, value expression)` assignments.
        assignments: Vec<(String, Expr)>,
        /// Optional `WHERE` predicate selecting the rows to update.
        filter: Option<Expr>,
    },
    /// `DELETE FROM … [WHERE …]`.
    Delete {
        /// Target table.
        table: String,
        /// Optional `WHERE` predicate selecting the rows to delete.
        filter: Option<Expr>,
    },
}

impl Statement {
    /// All column names the statement references (lower-cased, in
    /// first-appearance order, without duplicates).  This is the AST-level
    /// half of the static analysis pass: [`crate::executor::analyze`]
    /// intersects this set with the catalog to report *every* unknown
    /// column of a statement in one shot, so the crowd layer can plan a
    /// single expansion round instead of discovering missing attributes one
    /// failed execution at a time.
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut push = |name: &str| {
            let lower = name.to_lowercase();
            if !out.contains(&lower) {
                out.push(lower);
            }
        };
        match self {
            // An EXPLAIN references exactly what its wrapped SELECT would:
            // the crowd layer analyzes both through the same pass.
            Statement::Select(select) | Statement::ExplainExpansion(select) => {
                if let Projection::Columns(names) = &select.projection {
                    names.iter().for_each(|n| push(n));
                }
                if let Some(filter) = &select.filter {
                    filter.referenced_columns().iter().for_each(|n| push(n));
                }
                if let Some(OrderBy { column, .. }) = &select.order_by {
                    push(column);
                }
            }
            Statement::Insert { columns, .. } => columns.iter().for_each(|n| push(n)),
            Statement::Update {
                assignments,
                filter,
                ..
            } => {
                for (column, expr) in assignments {
                    push(column);
                    expr.referenced_columns().iter().for_each(|n| push(n));
                }
                if let Some(filter) = filter {
                    filter.referenced_columns().iter().for_each(|n| push(n));
                }
            }
            Statement::Delete { filter, .. } => {
                if let Some(filter) = filter {
                    filter.referenced_columns().iter().for_each(|n| push(n));
                }
            }
            Statement::CreateTable { .. } | Statement::AlterTableAddColumn { .. } => {}
        }
        out
    }

    /// True when executing the statement cannot modify the catalog — i.e.
    /// it is a `SELECT` (or an `EXPLAIN EXPANSION` over one, which by
    /// definition performs no work at all).  Concurrent engines use this to
    /// route read-only statements through [`crate::executor::execute_read`]
    /// under a shared lock while writes take the exclusive one.
    pub fn is_read_only(&self) -> bool {
        matches!(self, Statement::Select(_) | Statement::ExplainExpansion(_))
    }

    /// The table the statement operates on, when it targets an existing
    /// table (`CREATE TABLE` introduces its table instead of reading one).
    pub fn target_table(&self) -> Option<&str> {
        match self {
            Statement::Select(select) | Statement::ExplainExpansion(select) => Some(&select.table),
            Statement::Insert { table, .. }
            | Statement::AlterTableAddColumn { table, .. }
            | Statement::Update { table, .. }
            | Statement::Delete { table, .. } => Some(table),
            Statement::CreateTable { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    #[test]
    fn parse_select_star() {
        let stmt = parse("SELECT * FROM movies WHERE is_comedy = true").unwrap();
        match stmt {
            Statement::Select(s) => {
                assert_eq!(s.projection, Projection::All);
                assert_eq!(s.table, "movies");
                assert!(s.filter.is_some());
                assert!(s.order_by.is_none());
                assert!(s.limit.is_none());
            }
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn parse_select_with_projection_order_limit() {
        let stmt =
            parse("SELECT name, year FROM movies WHERE humor >= 8 ORDER BY year DESC LIMIT 5")
                .unwrap();
        match stmt {
            Statement::Select(s) => {
                assert_eq!(
                    s.projection,
                    Projection::Columns(vec!["name".into(), "year".into()])
                );
                let order = s.order_by.unwrap();
                assert_eq!(order.column, "year");
                assert!(!order.ascending);
                assert_eq!(s.limit, Some(5));
            }
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn parse_insert_multiple_rows() {
        let stmt = parse(
            "INSERT INTO movies (id, name, year) VALUES (1, 'Rocky', 1976), (2, 'Psycho', 1960)",
        )
        .unwrap();
        match stmt {
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                assert_eq!(table, "movies");
                assert_eq!(columns, vec!["id", "name", "year"]);
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0][1], Value::Text("Rocky".into()));
                assert_eq!(rows[1][2], Value::Integer(1960));
            }
            other => panic!("expected INSERT, got {other:?}"),
        }
    }

    #[test]
    fn parse_create_table() {
        let stmt = parse(
            "CREATE TABLE movies (id INTEGER NOT NULL, name TEXT, rating FLOAT, fun BOOLEAN)",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable { table, columns } => {
                assert_eq!(table, "movies");
                assert_eq!(columns.len(), 4);
                assert_eq!(columns[0].data_type, DataType::Integer);
                assert!(!columns[0].nullable);
                assert_eq!(columns[1].data_type, DataType::Text);
                assert!(columns[1].nullable);
                assert_eq!(columns[2].data_type, DataType::Float);
                assert_eq!(columns[3].data_type, DataType::Boolean);
            }
            other => panic!("expected CREATE TABLE, got {other:?}"),
        }
    }

    #[test]
    fn parse_alter_table_add_column() {
        let stmt = parse("ALTER TABLE movies ADD COLUMN is_comedy BOOLEAN").unwrap();
        match stmt {
            Statement::AlterTableAddColumn { table, column } => {
                assert_eq!(table, "movies");
                assert_eq!(column.name, "is_comedy");
                assert_eq!(column.data_type, DataType::Boolean);
                assert!(column.nullable);
            }
            other => panic!("expected ALTER TABLE, got {other:?}"),
        }
    }

    #[test]
    fn parse_update_and_delete() {
        match parse("UPDATE movies SET is_comedy = true, rating = rating + 1 WHERE year < 1980")
            .unwrap()
        {
            Statement::Update {
                table,
                assignments,
                filter,
            } => {
                assert_eq!(table, "movies");
                assert_eq!(assignments.len(), 2);
                assert_eq!(assignments[0].0, "is_comedy");
                assert!(filter.is_some());
            }
            other => panic!("expected UPDATE, got {other:?}"),
        }
        match parse("DELETE FROM movies WHERE year < 1950").unwrap() {
            Statement::Delete { table, filter } => {
                assert_eq!(table, "movies");
                assert!(filter.is_some());
            }
            other => panic!("expected DELETE, got {other:?}"),
        }
        match parse("DELETE FROM movies").unwrap() {
            Statement::Delete { filter, .. } => assert!(filter.is_none()),
            other => panic!("expected DELETE, got {other:?}"),
        }
        assert!(parse("UPDATE movies").is_err());
        assert!(parse("UPDATE movies SET").is_err());
        assert!(parse("DELETE movies").is_err());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("").is_err());
        assert!(parse("SELEKT * FROM movies").is_err());
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("SELECT * FROM movies WHERE").is_err());
        assert!(parse("INSERT INTO movies VALUES").is_err());
        assert!(parse("CREATE TABLE t ()").is_err());
        assert!(parse("ALTER TABLE t DROP COLUMN c").is_err());
        assert!(parse("SELECT * FROM movies extra garbage").is_err());
    }
}
