//! Property-based tests for the relational engine: SQL literal round trips,
//! three-valued logic laws, and executor invariants.

use proptest::prelude::*;

use relational::{executor, parse, Catalog, Column, DataType, Expr, Schema, Table, Value};

fn identifier() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,10}".prop_filter("avoid SQL keywords", |s| {
        !matches!(
            s.as_str(),
            "select"
                | "from"
                | "where"
                | "order"
                | "by"
                | "asc"
                | "desc"
                | "limit"
                | "insert"
                | "into"
                | "values"
                | "create"
                | "table"
                | "alter"
                | "add"
                | "column"
                | "not"
                | "null"
                | "and"
                | "or"
                | "true"
                | "false"
                | "is"
                | "integer"
                | "int"
                | "float"
                | "real"
                | "double"
                | "text"
                | "varchar"
                | "string"
                | "boolean"
                | "bool"
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn integer_literals_round_trip_through_insert(value in -1_000_000i64..1_000_000) {
        let mut catalog = Catalog::new();
        executor::execute(&parse("CREATE TABLE t (v INTEGER)").unwrap(), &mut catalog).unwrap();
        let sql = format!("INSERT INTO t (v) VALUES ({value})");
        executor::execute(&parse(&sql).unwrap(), &mut catalog).unwrap();
        let result = executor::execute(&parse("SELECT v FROM t").unwrap(), &mut catalog).unwrap();
        prop_assert_eq!(&result.rows[0][0], &Value::Integer(value));
    }

    #[test]
    fn text_literals_round_trip(text in "[a-zA-Z0-9 ]{0,24}") {
        let mut catalog = Catalog::new();
        executor::execute(&parse("CREATE TABLE t (v TEXT)").unwrap(), &mut catalog).unwrap();
        let sql = format!("INSERT INTO t (v) VALUES ('{text}')");
        executor::execute(&parse(&sql).unwrap(), &mut catalog).unwrap();
        let result = executor::execute(&parse("SELECT v FROM t").unwrap(), &mut catalog).unwrap();
        prop_assert_eq!(&result.rows[0][0], &Value::Text(text));
    }

    #[test]
    fn parser_accepts_arbitrary_identifiers(table in identifier(), column in identifier()) {
        let create = format!("CREATE TABLE {table} ({column} INTEGER)");
        let stmt = parse(&create);
        prop_assert!(stmt.is_ok(), "failed to parse {create}: {stmt:?}");
        let select = format!("SELECT {column} FROM {table} WHERE {column} > 0");
        prop_assert!(parse(&select).is_ok());
    }

    #[test]
    fn filtered_rows_never_exceed_table_and_satisfy_predicate(
        values in prop::collection::vec(-50i64..50, 1..40),
        threshold in -50i64..50,
    ) {
        let mut catalog = Catalog::new();
        executor::execute(&parse("CREATE TABLE t (v INTEGER)").unwrap(), &mut catalog).unwrap();
        for v in &values {
            executor::execute(
                &parse(&format!("INSERT INTO t (v) VALUES ({v})")).unwrap(),
                &mut catalog,
            )
            .unwrap();
        }
        let result = executor::execute(
            &parse(&format!("SELECT v FROM t WHERE v >= {threshold}")).unwrap(),
            &mut catalog,
        )
        .unwrap();
        let expected = values.iter().filter(|&&v| v >= threshold).count();
        prop_assert_eq!(result.rows.len(), expected);
        for row in &result.rows {
            match row[0] {
                Value::Integer(v) => prop_assert!(v >= threshold),
                ref other => prop_assert!(false, "unexpected value {other:?}"),
            }
        }
    }

    #[test]
    fn order_by_produces_sorted_output(values in prop::collection::vec(-1000i64..1000, 1..40)) {
        let mut catalog = Catalog::new();
        let schema = Schema::new(vec![Column::new("v", DataType::Integer)]).unwrap();
        let mut table = Table::new("t", schema);
        for v in &values {
            table.insert_row(vec![Value::Integer(*v)]).unwrap();
        }
        catalog.create_table(table).unwrap();
        let result = executor::execute(
            &parse("SELECT v FROM t ORDER BY v ASC").unwrap(),
            &mut catalog,
        )
        .unwrap();
        let sorted: Vec<i64> = result
            .rows
            .iter()
            .map(|r| match r[0] {
                Value::Integer(v) => v,
                _ => unreachable!(),
            })
            .collect();
        let mut expected = values.clone();
        expected.sort_unstable();
        prop_assert_eq!(sorted, expected);
    }

    #[test]
    fn three_valued_logic_laws(a in any::<Option<bool>>(), b in any::<Option<bool>>()) {
        // Encode Option<bool> as Value (None = NULL) and check Kleene laws
        // through the expression evaluator.
        let schema = Schema::new(vec![
            Column::new("a", DataType::Boolean),
            Column::new("b", DataType::Boolean),
        ])
        .unwrap();
        let to_value = |x: Option<bool>| x.map(Value::Boolean).unwrap_or(Value::Null);
        let row = vec![to_value(a), to_value(b)];
        let and = Expr::binary(Expr::column("a"), relational::BinaryOperator::And, Expr::column("b"));
        let or = Expr::binary(Expr::column("a"), relational::BinaryOperator::Or, Expr::column("b"));
        let and_rev = Expr::binary(Expr::column("b"), relational::BinaryOperator::And, Expr::column("a"));
        let or_rev = Expr::binary(Expr::column("b"), relational::BinaryOperator::Or, Expr::column("a"));
        // Commutativity.
        prop_assert_eq!(and.evaluate(&schema, &row, "t").unwrap(), and_rev.evaluate(&schema, &row, "t").unwrap());
        prop_assert_eq!(or.evaluate(&schema, &row, "t").unwrap(), or_rev.evaluate(&schema, &row, "t").unwrap());
        // Kleene truth tables.
        let expected_and = match (a, b) {
            (Some(false), _) | (_, Some(false)) => Value::Boolean(false),
            (Some(true), Some(true)) => Value::Boolean(true),
            _ => Value::Null,
        };
        let expected_or = match (a, b) {
            (Some(true), _) | (_, Some(true)) => Value::Boolean(true),
            (Some(false), Some(false)) => Value::Boolean(false),
            _ => Value::Null,
        };
        prop_assert_eq!(and.evaluate(&schema, &row, "t").unwrap(), expected_and);
        prop_assert_eq!(or.evaluate(&schema, &row, "t").unwrap(), expected_or);
        // A WHERE predicate never accepts a NULL outcome.
        let matches = and.matches(&schema, &row, "t").unwrap();
        prop_assert_eq!(matches, a == Some(true) && b == Some(true));
    }

    #[test]
    fn schema_expansion_preserves_existing_data(
        values in prop::collection::vec(-100i64..100, 1..30),
        new_column in identifier(),
    ) {
        let mut catalog = Catalog::new();
        executor::execute(&parse("CREATE TABLE t (v INTEGER)").unwrap(), &mut catalog).unwrap();
        for v in &values {
            executor::execute(
                &parse(&format!("INSERT INTO t (v) VALUES ({v})")).unwrap(),
                &mut catalog,
            )
            .unwrap();
        }
        prop_assume!(new_column != "v");
        executor::execute(
            &parse(&format!("ALTER TABLE t ADD COLUMN {new_column} BOOLEAN")).unwrap(),
            &mut catalog,
        )
        .unwrap();
        let result = executor::execute(&parse("SELECT * FROM t").unwrap(), &mut catalog).unwrap();
        prop_assert_eq!(result.columns.len(), 2);
        prop_assert_eq!(result.rows.len(), values.len());
        for (row, original) in result.rows.iter().zip(values.iter()) {
            prop_assert_eq!(&row[0], &Value::Integer(*original));
            prop_assert_eq!(&row[1], &Value::Null);
        }
    }
}
