//! Blocking remote client for the CrowdDb network service layer.
//!
//! [`RemoteCrowdDb`] speaks the framed, checksummed wire protocol of
//! [`crowddb_server::wire`] to a [`CrowdDbServer`] and mirrors the
//! in-process query surface: [`query`](RemoteCrowdDb::query) returns a
//! [`RemoteQueryBuilder`] with the same `budget` / `mode` /
//! `quality_floor` / `adaptive` knobs, [`run`](RemoteQueryBuilder::run)
//! blocks for the final [`QueryOutcome`], and
//! [`stream`](RemoteQueryBuilder::stream) yields the same typed
//! [`QueryEvent`]s — snapshot, progress, deltas, completion — the
//! in-process [`QueryStream`](crowddb_core::QueryStream) would, as the
//! server forwards them.  Failures arrive as typed [`CrowdDbError`]s
//! round-tripped through the codec, not strings.
//!
//! One connection multiplexes any number of concurrent queries: a
//! background demux thread reads frames and routes each response to its
//! query's stream by request id.  Dropping a stream abandons only the
//! notifications — the server-side expansion completes, pays its owner's
//! share, and leaves its judgments in the shared cache.
//!
//! [`CrowdDbServer`]: crowddb_server::CrowdDbServer

#![warn(missing_docs)]

use crowddb_core::{
    CrowdDbError, ExpansionMode, ExpansionPolicy, PartitionSpec, QueryEvent, QueryOutcome, Result,
};
use crowddb_server::wire::{
    read_frame, write_frame, ClientHello, HandshakeReply, Request, Response, PROTOCOL_VERSION,
};
use std::collections::HashMap;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};

pub use crowddb_server::ServerStats;
pub use telemetry::MonitorTree;

/// Connection options for [`RemoteCrowdDb::connect_with`].
#[derive(Debug, Clone, Default)]
pub struct ClientConfig {
    /// Auth token presented in the handshake; must match the server's.
    pub auth_token: Option<String>,
}

/// What the demux thread forwards to one query's stream.
enum Incoming {
    Event(QueryEvent),
    Failed(CrowdDbError),
    Ack,
    Stats(ServerStats),
    Metrics(String),
    Monitor(MonitorTree),
}

struct ClientInner {
    writer: Mutex<TcpStream>,
    pending: Mutex<HashMap<u64, mpsc::Sender<Incoming>>>,
    next_id: AtomicU64,
    session_id: u64,
}

impl ClientInner {
    fn send(&self, request: &Request) -> Result<()> {
        let mut writer = self.writer.lock().unwrap();
        write_frame(&mut *writer, &request.to_payload())
    }

    fn register(&self, id: u64) -> mpsc::Receiver<Incoming> {
        let (tx, rx) = mpsc::channel();
        self.pending.lock().unwrap().insert(id, tx);
        rx
    }

    fn deregister(&self, id: u64) {
        self.pending.lock().unwrap().remove(&id);
    }
}

/// A blocking connection to a remote CrowdDb, mirroring the in-process
/// [`CrowdDb`](crowddb_core::CrowdDb) query API.
pub struct RemoteCrowdDb {
    inner: Arc<ClientInner>,
    demux: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for RemoteCrowdDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteCrowdDb")
            .field("session_id", &self.inner.session_id)
            .finish_non_exhaustive()
    }
}

impl RemoteCrowdDb {
    /// Connects and handshakes with no auth token.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<RemoteCrowdDb> {
        RemoteCrowdDb::connect_with(addr, ClientConfig::default())
    }

    /// Connects, handshakes (protocol version + auth token), and starts
    /// the demux thread.  A rejected handshake is a typed
    /// [`CrowdDbError::Protocol`] carrying the server's reason.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<RemoteCrowdDb> {
        let mut sock = TcpStream::connect(addr)
            .map_err(|e| CrowdDbError::protocol(format!("connect failed: {e}")))?;
        let _ = sock.set_nodelay(true);
        let hello = ClientHello {
            protocol_version: PROTOCOL_VERSION,
            auth_token: config.auth_token,
        };
        write_frame(&mut sock, &hello.to_payload())?;
        let session_id = match read_frame(&mut sock)? {
            Some(payload) => match HandshakeReply::from_payload(&payload)? {
                HandshakeReply::Accepted { session_id, .. } => session_id,
                HandshakeReply::Rejected { reason } => {
                    return Err(CrowdDbError::protocol(format!(
                        "handshake rejected: {reason}"
                    )))
                }
            },
            None => {
                return Err(CrowdDbError::protocol(
                    "server closed the connection during the handshake",
                ))
            }
        };
        let reader = sock
            .try_clone()
            .map_err(|e| CrowdDbError::protocol(format!("socket clone failed: {e}")))?;
        let inner = Arc::new(ClientInner {
            writer: Mutex::new(sock),
            pending: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            session_id,
        });
        let demux_inner = Arc::clone(&inner);
        let demux = std::thread::Builder::new()
            .name("crowddb-client-demux".into())
            .spawn(move || demux_loop(reader, demux_inner))
            .map_err(|e| CrowdDbError::protocol(format!("demux thread spawn failed: {e}")))?;
        Ok(RemoteCrowdDb {
            inner,
            demux: Some(demux),
        })
    }

    /// The server-assigned id of this connection's session.
    pub fn session_id(&self) -> u64 {
        self.inner.session_id
    }

    /// Starts building a remote query — same knobs, same semantics as the
    /// in-process [`QueryBuilder`](crowddb_core::QueryBuilder).
    pub fn query(&self, sql: impl Into<String>) -> RemoteQueryBuilder<'_> {
        RemoteQueryBuilder {
            client: self,
            sql: sql.into(),
            policy: ExpansionPolicy::full(),
            mode_explicit: false,
            customized: false,
        }
    }

    /// Round-trips a liveness check through the server.
    pub fn ping(&self) -> Result<()> {
        self.request_ack(|id| Request::Ping { id })
    }

    /// Replaces this connection's server-side default
    /// [`ExpansionPolicy`], applied to queries that do not set their own.
    pub fn set_defaults(&self, policy: ExpansionPolicy) -> Result<()> {
        self.request_ack(|id| Request::SetDefaults { id, policy })
    }

    /// Creates a table on the remote database from `CREATE TABLE` DDL
    /// with an explicit storage [`PartitionSpec`] — the remote twin of
    /// the in-process
    /// [`create_table_with`](crowddb_core::CrowdDb::create_table_with) /
    /// [`TableOptions`](crowddb_core::TableOptions) builder.  Plain SQL
    /// `CREATE TABLE` sent through [`query`](RemoteCrowdDb::query) stays
    /// single-partition.  Errors (bad DDL, duplicate table, a layout the
    /// engine refuses) come back as the same typed [`CrowdDbError`] the
    /// in-process call would return.
    pub fn create_table(&self, sql: impl Into<String>, partitions: PartitionSpec) -> Result<()> {
        let sql = sql.into();
        self.request_ack(move |id| Request::CreateTable {
            id,
            sql,
            partitions,
        })
    }

    /// Snapshots the server's connection and query counters.
    pub fn server_stats(&self) -> Result<ServerStats> {
        match self.request_reply(|id| Request::Stats { id })? {
            Incoming::Stats(stats) => Ok(stats),
            Incoming::Failed(error) => Err(error),
            _ => Err(CrowdDbError::protocol(
                "server answered a stats request with the wrong reply",
            )),
        }
    }

    /// Scrapes the server's full metric catalog — engine and server
    /// families — as Prometheus text exposition.  Parse it with
    /// [`telemetry::parse_text`].
    pub fn metrics(&self) -> Result<String> {
        match self.request_reply(|id| Request::Metrics { id })? {
            Incoming::Metrics(text) => Ok(text),
            Incoming::Failed(error) => Err(error),
            _ => Err(CrowdDbError::protocol(
                "server answered a metrics request with the wrong reply",
            )),
        }
    }

    /// Snapshots the server's live state-monitor tree — active sessions,
    /// running queries, in-flight expansions with cost-so-far.
    pub fn monitor(&self) -> Result<MonitorTree> {
        match self.request_reply(|id| Request::Monitor { id })? {
            Incoming::Monitor(tree) => Ok(tree),
            Incoming::Failed(error) => Err(error),
            _ => Err(CrowdDbError::protocol(
                "server answered a monitor request with the wrong reply",
            )),
        }
    }

    fn request_ack(&self, make: impl FnOnce(u64) -> Request) -> Result<()> {
        match self.request_reply(make)? {
            Incoming::Ack => Ok(()),
            Incoming::Failed(error) => Err(error),
            _ => Err(CrowdDbError::protocol(
                "server answered a control request with the wrong reply",
            )),
        }
    }

    /// Sends one request and blocks for its single reply, routed back by
    /// request id.
    fn request_reply(&self, make: impl FnOnce(u64) -> Request) -> Result<Incoming> {
        let id = self.inner.next_id.fetch_add(1, Ordering::SeqCst);
        let rx = self.inner.register(id);
        if let Err(e) = self.inner.send(&make(id)) {
            self.inner.deregister(id);
            return Err(e);
        }
        let result = rx
            .recv()
            .map_err(|_| CrowdDbError::protocol("connection lost awaiting a reply"));
        self.inner.deregister(id);
        result
    }

    /// Sends a clean goodbye and closes the connection.  In-flight
    /// server-side work completes and is cached; only notifications stop.
    /// Dropping the client without calling this closes the socket the
    /// abrupt way — the server handles both identically.
    pub fn close(mut self) -> Result<()> {
        let result = self.inner.send(&Request::Goodbye);
        self.teardown();
        result
    }

    fn teardown(&mut self) {
        if let Ok(writer) = self.inner.writer.lock() {
            let _ = writer.shutdown(Shutdown::Both);
        }
        if let Some(handle) = self.demux.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for RemoteCrowdDb {
    fn drop(&mut self) {
        self.teardown();
    }
}

/// Reads every frame off the connection and routes responses to their
/// queries by request id.  Exits (dropping all pending senders, which
/// surfaces a connection-lost error on every waiting stream) when the
/// server closes the connection or a frame fails to parse.
fn demux_loop(mut sock: TcpStream, inner: Arc<ClientInner>) {
    while let Ok(Some(payload)) = read_frame(&mut sock) {
        let response = match Response::from_payload(&payload) {
            Ok(response) => response,
            Err(_) => break,
        };
        let (id, incoming) = match response {
            Response::Event { id, event } => (id, Incoming::Event(event)),
            Response::QueryFailed { id, error } => (id, Incoming::Failed(error)),
            Response::Ack { id } => (id, Incoming::Ack),
            Response::Stats { id, stats } => (id, Incoming::Stats(stats)),
            Response::Metrics { id, text } => (id, Incoming::Metrics(text)),
            Response::Monitor { id, tree } => (id, Incoming::Monitor(tree)),
        };
        // An unknown id is a dropped stream's late event: discard.
        if let Some(tx) = inner.pending.lock().unwrap().get(&id) {
            let _ = tx.send(incoming);
        }
    }
    inner.pending.lock().unwrap().clear();
}

/// A remote query under construction — the wire twin of the in-process
/// [`QueryBuilder`](crowddb_core::QueryBuilder), with identical knobs and
/// identical implied-mode semantics.
#[must_use = "a query builder does nothing until .run() is called"]
pub struct RemoteQueryBuilder<'client> {
    client: &'client RemoteCrowdDb,
    sql: String,
    policy: ExpansionPolicy,
    mode_explicit: bool,
    // Untouched builders send no policy, so the connection's server-side
    // session defaults apply — touched ones always send their own.
    customized: bool,
}

impl std::fmt::Debug for RemoteQueryBuilder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteQueryBuilder")
            .field("sql", &self.sql)
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl RemoteQueryBuilder<'_> {
    /// Caps this query's crowd spend at `dollars`; implies
    /// [`ExpansionMode::BestEffort`] unless a mode was set explicitly.
    pub fn budget(mut self, dollars: f64) -> Self {
        self.policy.budget = Some(dollars);
        if !self.mode_explicit {
            self.policy.mode = ExpansionMode::BestEffort;
        }
        self.customized = true;
        self
    }

    /// Sets the expansion mode.
    pub fn mode(mut self, mode: ExpansionMode) -> Self {
        self.policy.mode = mode;
        self.mode_explicit = true;
        self.customized = true;
        self
    }

    /// Requires at least `floor` inter-worker agreement for a crowd
    /// verdict to appear in this query's results.
    pub fn quality_floor(mut self, floor: f64) -> Self {
        self.policy.quality_floor = Some(floor);
        self.customized = true;
        self
    }

    /// Enables adaptive judgment acquisition for this query.
    pub fn adaptive(mut self, enabled: bool) -> Self {
        self.policy.adaptive = enabled;
        self.customized = true;
        self
    }

    /// Replaces the whole policy at once.
    pub fn policy(mut self, policy: ExpansionPolicy) -> Self {
        self.mode_explicit = policy.mode != ExpansionMode::Full;
        self.policy = policy;
        self.customized = true;
        self
    }

    /// Runs the query to completion and returns the final
    /// [`QueryOutcome`] — a drain over [`stream`](Self::stream), exactly
    /// like the in-process `run`.  Intermediate events stay server-side.
    pub fn run(self) -> Result<QueryOutcome> {
        self.launch(false).wait()
    }

    /// Starts the query as an **anytime** query: returns immediately with
    /// a blocking [`RemoteQueryStream`] yielding the same typed
    /// [`QueryEvent`]s the in-process stream would, as the server forwards
    /// them.  Dropping the stream does not cancel the server-side
    /// expansion — dispatched crowd work completes and is paid for; only
    /// the notifications stop.
    pub fn stream(self) -> RemoteQueryStream {
        self.launch(true)
    }

    fn launch(self, events: bool) -> RemoteQueryStream {
        let inner = Arc::clone(&self.client.inner);
        let id = inner.next_id.fetch_add(1, Ordering::SeqCst);
        let rx = inner.register(id);
        let request = Request::Query {
            id,
            sql: self.sql,
            policy: self.customized.then_some(self.policy),
            events,
        };
        let outcome = match inner.send(&request) {
            Ok(()) => None,
            Err(error) => {
                inner.deregister(id);
                Some(Err(error))
            }
        };
        RemoteQueryStream {
            inner,
            id,
            rx,
            outcome,
            done: false,
        }
    }
}

/// A blocking stream of [`QueryEvent`]s from one remote anytime query —
/// iterate for events, then [`wait`](RemoteQueryStream::wait) for the
/// final [`QueryOutcome`], exactly like the in-process
/// [`QueryStream`](crowddb_core::QueryStream).
#[must_use = "a query stream does nothing until iterated or waited on"]
pub struct RemoteQueryStream {
    inner: Arc<ClientInner>,
    id: u64,
    rx: mpsc::Receiver<Incoming>,
    outcome: Option<Result<QueryOutcome>>,
    done: bool,
}

impl std::fmt::Debug for RemoteQueryStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteQueryStream")
            .field("id", &self.id)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl RemoteQueryStream {
    /// Drains the remaining events and returns the final outcome.
    pub fn wait(mut self) -> Result<QueryOutcome> {
        while self.next().is_some() {}
        self.outcome.take().unwrap_or_else(|| {
            Err(CrowdDbError::protocol(
                "connection lost before the query completed",
            ))
        })
    }

    /// The final outcome, once the stream has ended (`None` while events
    /// are still pending).
    pub fn outcome(&self) -> Option<&Result<QueryOutcome>> {
        self.outcome.as_ref()
    }
}

impl Iterator for RemoteQueryStream {
    type Item = QueryEvent;

    fn next(&mut self) -> Option<QueryEvent> {
        if self.done {
            return None;
        }
        if self.outcome.is_some() {
            // The request never made it onto the wire.
            self.done = true;
            return None;
        }
        match self.rx.recv() {
            Ok(Incoming::Event(event)) => {
                if let QueryEvent::Completed(outcome) = &event {
                    self.outcome = Some(Ok(outcome.clone()));
                    self.done = true;
                }
                Some(event)
            }
            Ok(Incoming::Failed(error)) => {
                self.outcome = Some(Err(error));
                self.done = true;
                None
            }
            Ok(_) => {
                self.outcome = Some(Err(CrowdDbError::protocol(
                    "server answered a query with a non-query reply",
                )));
                self.done = true;
                None
            }
            Err(mpsc::RecvError) => {
                self.outcome = Some(Err(CrowdDbError::protocol(
                    "connection lost before the query completed",
                )));
                self.done = true;
                None
            }
        }
    }
}

impl Drop for RemoteQueryStream {
    fn drop(&mut self) {
        self.inner.deregister(self.id);
    }
}
