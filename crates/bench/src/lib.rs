//! # bench — experiment harnesses reproducing the paper's tables and figures
//!
//! Every table and figure of the evaluation section has a dedicated binary
//! under `src/bin/` (see `DESIGN.md` for the index); this library holds the
//! shared plumbing:
//!
//! * [`ExperimentScale`] — one knob (`CROWDDB_SCALE=quick|default|full`)
//!   that controls domain size, embedding dimensionality, and repetition
//!   counts for all harnesses,
//! * [`MovieContext`] — the movie domain, its perceptual space, its LSI
//!   "metadata space", and the simulated expert panel, built once per run,
//! * [`small_sample_gmean`] — the Table 3 / 5 / 6 inner loop (draw a
//!   balanced sample of `n` positives + `n` negatives, train the SVM on a
//!   space, evaluate the g-mean on the remaining items),
//! * small table-formatting helpers.
//!
//! The binaries print the same rows/series the paper reports so that
//! `EXPERIMENTS.md` can list paper-vs-measured values side by side.

#![warn(missing_docs)]

use mlkit::{BinaryConfusion, LabeledDataset, LsiModel};
use perceptual::PerceptualSpace;

use crowddb_core::{extract_binary_attribute, ExtractionConfig};
use datagen::{DomainConfig, ExpertPanel, MetadataGenerator, SyntheticDomain};

/// Global knob for how big and how long the experiment harnesses run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentScale {
    /// Scale factor applied to the domain presets.
    pub domain_factor: f64,
    /// Number of random repetitions for sample-based experiments
    /// (the paper uses 20).
    pub repetitions: usize,
    /// Dimensionality of the perceptual space (the paper uses 100).
    pub space_dimensions: usize,
    /// SGD epochs for the factor model.
    pub space_epochs: usize,
    /// Dimensionality of the LSI metadata space (the paper uses 100).
    pub lsi_dimensions: usize,
}

impl ExperimentScale {
    /// The default scale: runs every harness in seconds-to-minutes on a
    /// laptop while preserving the paper's qualitative shapes.
    pub fn default_scale() -> Self {
        ExperimentScale {
            domain_factor: 0.5,
            repetitions: 5,
            space_dimensions: 24,
            space_epochs: 25,
            lsi_dimensions: 40,
        }
    }

    /// A fast smoke-test scale used by integration tests.
    pub fn quick() -> Self {
        ExperimentScale {
            domain_factor: 0.1,
            repetitions: 2,
            space_dimensions: 12,
            space_epochs: 15,
            lsi_dimensions: 20,
        }
    }

    /// The paper-sized scale (10,562 movies, d = 100, 20 repetitions).
    /// Expect multi-hour runtimes; only useful for full benchmark sessions.
    pub fn full() -> Self {
        ExperimentScale {
            domain_factor: 1.0,
            repetitions: 20,
            space_dimensions: 100,
            space_epochs: 30,
            lsi_dimensions: 100,
        }
    }

    /// Reads the scale from the `CROWDDB_SCALE` environment variable
    /// (`quick`, `default`, or `full`); unknown values fall back to the
    /// default scale.
    pub fn from_env() -> Self {
        match std::env::var("CROWDDB_SCALE").as_deref() {
            Ok("quick") => ExperimentScale::quick(),
            Ok("full") => ExperimentScale::full(),
            _ => ExperimentScale::default_scale(),
        }
    }
}

/// Everything the movie-domain harnesses need, built once.
pub struct MovieContext {
    /// The synthetic movie domain (items, ratings, ground-truth genres).
    pub domain: SyntheticDomain,
    /// The perceptual space built from the ratings.
    pub space: PerceptualSpace,
    /// The LSI "metadata space" baseline built from generated metadata text.
    pub metadata_space: PerceptualSpace,
    /// The simulated IMDb / Netflix / RT expert panel.
    pub experts: ExpertPanel,
    /// The scale the context was built at.
    pub scale: ExperimentScale,
}

impl MovieContext {
    /// Builds the movie context at the given scale.
    pub fn build(scale: ExperimentScale, seed: u64) -> Self {
        let config = DomainConfig::movies().scaled(scale.domain_factor);
        let domain = SyntheticDomain::generate(&config, seed).expect("domain generation");
        let space = crowddb_core::build_space_for_domain(
            &domain,
            scale.space_dimensions,
            scale.space_epochs,
        )
        .expect("perceptual space");
        let metadata_space = build_metadata_space(&domain, scale.lsi_dimensions, seed ^ 0x5151);
        let experts = ExpertPanel::standard(&domain, seed ^ 0xe59);
        MovieContext {
            domain,
            space,
            metadata_space,
            experts,
            scale,
        }
    }
}

/// Builds a context for an arbitrary domain preset (used by the restaurant
/// and board-game harnesses, which do not need the expert panel).
pub fn build_domain_and_space(
    config: &DomainConfig,
    scale: ExperimentScale,
    seed: u64,
) -> (SyntheticDomain, PerceptualSpace) {
    let domain = SyntheticDomain::generate(&config.scaled(scale.domain_factor), seed)
        .expect("domain generation");
    let space =
        crowddb_core::build_space_for_domain(&domain, scale.space_dimensions, scale.space_epochs)
            .expect("perceptual space");
    (domain, space)
}

/// Builds the LSI metadata space of a domain: metadata text → TF-IDF →
/// truncated SVD → per-item latent coordinates.
pub fn build_metadata_space(
    domain: &SyntheticDomain,
    dimensions: usize,
    seed: u64,
) -> PerceptualSpace {
    let docs = MetadataGenerator::default().generate(domain, seed);
    let lsi = LsiModel::fit(&docs, dimensions, 2, seed).expect("LSI model");
    PerceptualSpace::new(lsi.document_coordinates().to_vec()).expect("metadata space")
}

/// One measurement of the Table 3 / 5 / 6 protocol: draw `n` positive and
/// `n` negative training examples for `category`, train the extractor on the
/// given space, and return the g-mean over the remaining items.
///
/// Returns `None` when the domain does not contain `n` examples of each
/// class (rare categories at small scales).
pub fn small_sample_gmean(
    space: &PerceptualSpace,
    labels: &[bool],
    n_per_class: usize,
    seed: u64,
) -> Option<f64> {
    let features: Vec<Vec<f64>> = space.all_coordinates().to_vec();
    let dataset = LabeledDataset::new(features, labels.to_vec()).ok()?;
    let sample = dataset.balanced_sample(n_per_class, seed).ok()?;
    let labeled: Vec<(u32, bool)> = sample
        .train_indices
        .iter()
        .map(|&i| (i as u32, labels[i]))
        .collect();
    let predicted = extract_binary_attribute(space, &labeled, &ExtractionConfig::default()).ok()?;
    // Evaluate on the items outside the training sample.
    let eval_pred: Vec<bool> = sample.eval_indices.iter().map(|&i| predicted[i]).collect();
    let eval_truth: Vec<bool> = sample.eval_indices.iter().map(|&i| labels[i]).collect();
    Some(BinaryConfusion::from_predictions(&eval_pred, &eval_truth).gmean())
}

/// Mean of [`small_sample_gmean`] over `repetitions` random samples.
pub fn mean_small_sample_gmean(
    space: &PerceptualSpace,
    labels: &[bool],
    n_per_class: usize,
    repetitions: usize,
    seed: u64,
) -> Option<f64> {
    let mut values = Vec::new();
    for rep in 0..repetitions {
        if let Some(g) = small_sample_gmean(space, labels, n_per_class, seed + rep as u64) {
            values.push(g);
        }
    }
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// g-mean of one expert source (or any full labeling) against the reference
/// labels — the "Reference" columns of Table 3.
pub fn labeling_gmean(labeling: &[bool], reference: &[bool]) -> f64 {
    BinaryConfusion::from_predictions(labeling, reference).gmean()
}

/// Formats an optional g-mean for table output.
pub fn fmt_gmean(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{v:.2}"),
        None => "  - ".to_string(),
    }
}

/// Prints a table header followed by a separator line of matching width.
pub fn print_header(title: &str, columns: &str) {
    println!("\n=== {title} ===");
    println!("{columns}");
    println!("{}", "-".repeat(columns.len().max(20)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_resolve_and_order_sensibly() {
        let q = ExperimentScale::quick();
        let d = ExperimentScale::default_scale();
        let f = ExperimentScale::full();
        assert!(q.domain_factor < d.domain_factor);
        assert!(d.domain_factor < f.domain_factor);
        assert!(q.repetitions <= d.repetitions);
        assert_eq!(f.space_dimensions, 100);
        // Environment fallback: unknown values give the default scale.
        std::env::remove_var("CROWDDB_SCALE");
        assert_eq!(ExperimentScale::from_env(), d);
    }

    #[test]
    fn movie_context_and_gmean_pipeline_work_at_quick_scale() {
        let scale = ExperimentScale::quick();
        let ctx = MovieContext::build(scale, 123);
        assert_eq!(ctx.space.len(), ctx.domain.items().len());
        assert_eq!(ctx.metadata_space.len(), ctx.domain.items().len());
        assert_eq!(ctx.experts.sources().len(), 3);

        let labels = ctx.domain.labels_for_category(0);
        let g = small_sample_gmean(&ctx.space, &labels, 10, 7);
        assert!(g.is_some());
        let g = g.unwrap();
        assert!((0.0..=1.0).contains(&g));
        // The perceptual space must carry real signal even at quick scale.
        assert!(g > 0.5, "g-mean {g} too low for the perceptual space");

        let meta_g = small_sample_gmean(&ctx.metadata_space, &labels, 10, 7).unwrap();
        assert!(
            meta_g < g + 0.15,
            "metadata space ({meta_g}) should not outperform the perceptual space ({g})"
        );

        // Reference labels of a simulated expert source score very high.
        let reference = ctx.experts.majority(0);
        let source_g = labeling_gmean(ctx.experts.sources()[0].category_labels(0), &reference);
        assert!(source_g > 0.85);
    }

    #[test]
    fn mean_gmean_handles_impossible_sample_sizes() {
        let scale = ExperimentScale::quick();
        let ctx = MovieContext::build(scale, 5);
        let labels = ctx.domain.labels_for_category(0);
        // Asking for more positives than exist yields None.
        let impossible = mean_small_sample_gmean(&ctx.space, &labels, 10_000, 2, 1);
        assert!(impossible.is_none());
        let ok = mean_small_sample_gmean(&ctx.space, &labels, 5, 2, 1);
        assert!(ok.is_some());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_gmean(Some(0.755)), "0.76");
        assert_eq!(fmt_gmean(None), "  - ");
        // print_header only writes to stdout; just exercise it.
        print_header("Test", "a b c");
    }
}
