//! Figure 2 — Overview of crowd-driven schema expansion.
//!
//! Figure 2 of the paper is a workflow diagram: query → missing attribute
//! detected → gold sample crowd-sourced → extractor trained on the
//! perceptual space → column materialized → query answered.  The harness
//! runs that exact workflow end-to-end on the crowd-enabled database and
//! prints every stage with its measurable side effects, demonstrating that
//! the implementation follows the published architecture.

use bench::{ExperimentScale, MovieContext};
use crowddb_core::{CrowdDb, CrowdDbConfig, ExpansionStrategy, ExtractionConfig, SimulatedCrowd};
use crowdsim::ExperimentRegime;

fn main() {
    let scale = ExperimentScale::from_env();
    println!(
        "Building the movie context (scale factor {}) …",
        scale.domain_factor
    );
    let ctx = MovieContext::build(scale, 4004);

    let crowd = SimulatedCrowd::new(&ctx.domain, ExperimentRegime::TrustedWorkers, 41);
    let db = CrowdDb::new(CrowdDbConfig {
        strategy: ExpansionStrategy::PerceptualSpace {
            gold_sample_size: 100,
            extraction: ExtractionConfig::default(),
        },
        ..Default::default()
    });
    db.load_domain("movies", &ctx.domain, ctx.space.clone(), Box::new(crowd))
        .expect("load domain");
    db.register_attribute("movies", "is_comedy", "Comedy")
        .expect("register attribute");

    let sql = "SELECT name FROM movies WHERE is_comedy = true LIMIT 5";
    println!("\nFigure 2: crowd-driven schema expansion workflow");
    println!("  incoming query: {sql}");
    let result = db.execute(sql).expect("query");
    let events = db.expansion_events();
    let event = &events[0];

    println!("\n  workflow stages executed:");
    for (i, stage) in event.report.stages.iter().enumerate() {
        println!("    {}. {:?}", i + 1, stage);
    }

    println!("\n  measurable side effects:");
    println!(
        "    crowd-sourcing service : {} HIT judgments on {} gold movies",
        event.report.judgments_collected, event.report.items_crowd_sourced
    );
    println!(
        "    cost / time            : ${:.2} / {:.0} simulated minutes",
        event.report.crowd_cost, event.report.crowd_minutes
    );
    println!(
        "    extractor training set : {} movies with a clear majority",
        event.report.training_set_size
    );
    println!(
        "    column materialized    : {} of {} rows filled",
        event.report.rows_filled,
        event.report.rows_filled + event.report.rows_unfilled
    );
    println!(
        "    query answer           : {} rows returned",
        result.rows.len()
    );

    println!(
        "\n  (Basic crowd-enabled databases, by contrast, would have sent every movie to the \
         crowd-sourcing service — the right-hand path of Figure 2.)"
    );
}
