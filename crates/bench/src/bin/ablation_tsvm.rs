//! Section 5 — Semi-supervised learning: TSVM vs. plain SVM.
//!
//! The paper repeats the Table 3 experiment with a transductive SVM and
//! finds almost identical accuracy (mean g-means 0.70 / 0.77 / 0.79) but
//! runtimes of ~90 minutes per classification instead of ~3 seconds, ruling
//! the method out for real-time crowd-sourcing.  The harness compares the
//! two classifiers on the same balanced samples and reports both g-mean and
//! wall-clock time.

use std::time::Instant;

use bench::{print_header, ExperimentScale, MovieContext};
use mlkit::{
    BinaryConfusion, Kernel, LabeledDataset, SvmClassifier, SvmParams, TsvmClassifier, TsvmParams,
};

fn main() {
    let scale = ExperimentScale::from_env();
    println!(
        "Building the movie context (scale factor {}) …",
        scale.domain_factor
    );
    let ctx = MovieContext::build(scale, 12012);
    let labels = ctx.domain.labels_for_category(0); // Comedy
    let dataset =
        LabeledDataset::new(ctx.space.all_coordinates().to_vec(), labels.clone()).unwrap();

    print_header(
        "Section 5 ablation: supervised SVM vs transductive SVM",
        &format!(
            "{:<8} {:>12} {:>12} {:>14} {:>14}",
            "n", "SVM g-mean", "TSVM g-mean", "SVM time (s)", "TSVM time (s)"
        ),
    );

    // The TSVM sees a bounded number of unlabeled items; its cost grows
    // quadratically, which is exactly the effect the paper reports.
    let unlabeled_cap = 400.min(ctx.space.len());
    for &n in &[10usize, 20, 40] {
        let sample = match dataset.balanced_sample(n, 77 + n as u64) {
            Ok(s) => s,
            Err(_) => continue,
        };
        let kernel = Kernel::rbf_for_dim(ctx.space.dimensions());
        let svm_params = SvmParams {
            kernel,
            c: 10.0,
            ..Default::default()
        };

        let start = Instant::now();
        let svm = SvmClassifier::train(sample.train.features(), sample.train.labels(), &svm_params)
            .expect("svm");
        let svm_pred: Vec<bool> = sample
            .eval
            .features()
            .iter()
            .map(|x| svm.predict(x))
            .collect();
        let svm_time = start.elapsed().as_secs_f64();
        let svm_gmean = BinaryConfusion::from_predictions(&svm_pred, sample.eval.labels()).gmean();

        let unlabeled: Vec<Vec<f64>> = sample
            .eval
            .features()
            .iter()
            .take(unlabeled_cap)
            .cloned()
            .collect();
        let start = Instant::now();
        let tsvm = TsvmClassifier::train(
            sample.train.features(),
            sample.train.labels(),
            &unlabeled,
            &TsvmParams {
                base: svm_params.clone(),
                ..Default::default()
            },
        )
        .expect("tsvm");
        let tsvm_pred: Vec<bool> = sample
            .eval
            .features()
            .iter()
            .map(|x| tsvm.predict(x))
            .collect();
        let tsvm_time = start.elapsed().as_secs_f64();
        let tsvm_gmean =
            BinaryConfusion::from_predictions(&tsvm_pred, sample.eval.labels()).gmean();

        println!(
            "{:<8} {:>12.2} {:>12.2} {:>14.3} {:>14.3}",
            n, svm_gmean, tsvm_gmean, svm_time, tsvm_time
        );
    }

    println!(
        "\nPaper reference: TSVM g-means 0.70 / 0.77 / 0.79 (vs 0.69 / 0.76 / 0.80 for the SVM) \
         but ~90 minutes per run against ~3 seconds.  Expected shape: near-identical quality, \
         order(s)-of-magnitude slower transductive training."
    );
}
