//! Figure 3 — Correctly classified movies over (relative) time.
//!
//! Experiments 4–6 of the paper re-use the judgment streams of Experiments
//! 1–3 and, every few minutes, retrain an SVM on the movies that already
//! have a crowd majority, then classify all 1,000 movies from the perceptual
//! space.  The figure plots correctly classified movies against the fraction
//! of the task's total runtime for all six curves (three crowd-only, three
//! boosted).
//!
//! The harness prints the same series as a table: one row per 10 % of the
//! relative runtime, one column per experiment.

use bench::{print_header, ExperimentScale, MovieContext};
use crowddb_core::{evaluate_boost_over_time, BoostCurve, ExtractionConfig};
use crowdsim::ExperimentRegime;
use datagen::CategoryOracle;

struct RegimeCurves {
    name: &'static str,
    curve: BoostCurve,
    total_minutes: f64,
}

fn main() {
    let scale = ExperimentScale::from_env();
    println!(
        "Building the movie context (scale factor {}) …",
        scale.domain_factor
    );
    let ctx = MovieContext::build(scale, 5005);
    let category = ctx.domain.category_index("Comedy").unwrap();
    let truth = ctx.domain.labels_for_category(category);
    let oracle = CategoryOracle::new(&ctx.domain, category);
    let sample_size = ctx.domain.items().len().min(1000);
    let items: Vec<u32> = (0..sample_size as u32).collect();

    let mut results = Vec::new();
    for (regime, name, seed) in [
        (ExperimentRegime::AllWorkers, "Exp1/4 (all workers)", 51u64),
        (ExperimentRegime::TrustedWorkers, "Exp2/5 (trusted)", 52),
        (ExperimentRegime::LookupWithGold, "Exp3/6 (lookup)", 53),
    ] {
        println!("Simulating {name} …");
        let pool = regime.worker_pool(seed);
        let config = regime.hit_config(items.len());
        let run = crowdsim::CrowdPlatform::new(config)
            .run(&items, &oracle, &pool, seed + 100)
            .expect("crowd run");
        let judgments = match regime {
            ExperimentRegime::LookupWithGold => run.trusted_judgments(),
            _ => run.judgments.clone(),
        };
        let filtered_run = crowdsim::CrowdRun { judgments, ..run };
        let curve = evaluate_boost_over_time(
            &filtered_run,
            &ctx.space,
            &items,
            &truth,
            filtered_run.total_minutes / 10.0,
            &ExtractionConfig::default(),
        )
        .expect("boost curve");
        results.push(RegimeCurves {
            name,
            total_minutes: filtered_run.total_minutes,
            curve,
        });
    }

    print_header(
        &format!(
            "Figure 3: correctly classified movies (of {}) over relative time",
            items.len()
        ),
        &format!(
            "{:>9} | {:>11} {:>11} | {:>11} {:>11} | {:>11} {:>11}",
            "rel.time", "crowd 1", "boost 4", "crowd 2", "boost 5", "crowd 3", "boost 6"
        ),
    );
    let steps = results
        .iter()
        .map(|r| r.curve.checkpoints.len())
        .max()
        .unwrap_or(0);
    for step in 0..steps {
        let rel = (step + 1) as f64 / steps as f64;
        let mut row = format!("{:>8.0}% |", rel * 100.0);
        for r in &results {
            match r.curve.checkpoints.get(step) {
                Some(c) => {
                    row.push_str(&format!(
                        " {:>11} {:>11}",
                        c.crowd_correct,
                        c.boosted_correct.map_or("-".into(), |b| b.to_string())
                    ));
                }
                None => row.push_str(&format!(" {:>11} {:>11}", "-", "-")),
            }
            row.push_str(" |");
        }
        println!("{}", row.trim_end_matches(" |"));
    }

    println!("\nTotal runtimes (simulated minutes):");
    for r in &results {
        println!("  {:<22} {:>7.0} min", r.name, r.total_minutes);
    }
    println!(
        "\nPaper reference (1,000 movies): after 15 min Exp4 classifies 538 correctly vs 349 for \
         crowd-only Exp1; Exp5 reaches 654 after 15 min; Exp6 reaches 732 after 15 min; final \
         values 670 / 766 / 831 for the boosted runs vs 533 / 636 / 903 for the crowd."
    );
}
