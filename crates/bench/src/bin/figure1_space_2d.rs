//! Figure 1 — An example perceptual space in ℝ².
//!
//! The paper illustrates a two-dimensional space in which a judgment of a
//! movie's humor can be extracted even though the axes carry no direct
//! semantics.  The harness trains a 2-dimensional Euclidean embedding of a
//! small movie sample and prints the coordinates grouped by comedy /
//! non-comedy, plus a coarse ASCII scatter plot, showing that the two genre
//! groups occupy different regions.

use bench::{ExperimentScale, MovieContext};
use perceptual::{EuclideanEmbeddingConfig, EuclideanEmbeddingModel};

fn main() {
    let scale = ExperimentScale::quick();
    println!("Building a small movie context for the 2-D illustration …");
    let ctx = MovieContext::build(scale, 3003);

    // Re-train a dedicated 2-dimensional embedding (Figure 1 is an
    // illustration, not the space used by the experiments).
    let config = EuclideanEmbeddingConfig {
        dimensions: 2,
        epochs: 40,
        learning_rate: 0.02,
        ..Default::default()
    };
    let model = EuclideanEmbeddingModel::train(ctx.domain.ratings(), &config).expect("2-D model");
    let space = model.to_space();
    let comedy = ctx.domain.labels_for_category(0);

    let points = space.two_dimensional_projection();
    let (min_x, max_x) = points.iter().fold((f64::MAX, f64::MIN), |(lo, hi), p| {
        (lo.min(p.0), hi.max(p.0))
    });
    let (min_y, max_y) = points.iter().fold((f64::MAX, f64::MIN), |(lo, hi), p| {
        (lo.min(p.1), hi.max(p.1))
    });

    // ASCII scatter plot: C = comedy, . = non-comedy.
    const W: usize = 70;
    const H: usize = 24;
    let mut grid = vec![vec![' '; W]; H];
    for (i, (x, y)) in points.iter().enumerate() {
        let col = (((x - min_x) / (max_x - min_x).max(1e-9)) * (W - 1) as f64) as usize;
        let row = (((y - min_y) / (max_y - min_y).max(1e-9)) * (H - 1) as f64) as usize;
        let mark = if comedy[i] { 'C' } else { '.' };
        // Comedy markers win ties so the cluster stays visible.
        if grid[row][col] != 'C' {
            grid[row][col] = mark;
        }
    }

    println!("\nFigure 1: 2-D perceptual space (C = comedy, . = other)\n");
    for row in &grid {
        println!("{}", row.iter().collect::<String>());
    }

    // Quantify the separation: mean intra-comedy distance vs comedy-to-other.
    let comedies: Vec<u32> = ctx.domain.items_with_category(0);
    let others: Vec<u32> = (0..ctx.domain.items().len() as u32)
        .filter(|i| !comedy[*i as usize])
        .collect();
    let mean_dist = |from: &[u32], to: &[u32]| {
        let mut total = 0.0;
        let mut count = 0;
        for &a in from.iter().take(60) {
            for &b in to.iter().take(60) {
                if a != b {
                    total += space.distance(a, b).unwrap();
                    count += 1;
                }
            }
        }
        total / count.max(1) as f64
    };
    let intra = mean_dist(&comedies, &comedies);
    let inter = mean_dist(&comedies, &others);
    println!(
        "\nMean distance comedy↔comedy: {intra:.3}, comedy↔other: {inter:.3} \
         (ratio {:.2} — comedies cluster together even in 2 dimensions).",
        inter / intra.max(1e-9)
    );
}
