//! Section 4.2 — Correlation between perceptual-space distances and the
//! user consensus on movie similarity.
//!
//! The paper reports a Pearson correlation of 0.52 between distances in the
//! perceptual space and the consensus of user studies on perceived movie
//! similarity — roughly as high as the agreement of an individual user with
//! that consensus (0.55).  We cannot rerun a human user study, so the
//! harness simulates it: the "consensus dissimilarity" of two movies is the
//! (noisy) disagreement of their ground-truth category sets plus latent
//! distance, and the "individual user" adds further personal noise.

use bench::{ExperimentScale, MovieContext};
use mlkit::pearson_correlation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let scale = ExperimentScale::from_env();
    println!(
        "Building the movie context (scale factor {}) …",
        scale.domain_factor
    );
    let ctx = MovieContext::build(scale, 11011);
    let mut rng = StdRng::seed_from_u64(4242);
    let n_items = ctx.domain.items().len();

    // Sample random movie pairs and build the simulated consensus.
    let n_pairs = 2_000.min(n_items * (n_items - 1) / 2);
    let mut space_distance = Vec::with_capacity(n_pairs);
    let mut consensus = Vec::with_capacity(n_pairs);
    let mut individual_user = Vec::with_capacity(n_pairs);
    for _ in 0..n_pairs {
        let a = rng.gen_range(0..n_items) as u32;
        let mut b = rng.gen_range(0..n_items) as u32;
        while b == a {
            b = rng.gen_range(0..n_items) as u32;
        }
        let item_a = ctx.domain.item(a).unwrap();
        let item_b = ctx.domain.item(b).unwrap();
        // Consensus dissimilarity: latent-trait distance plus category
        // disagreement, plus a little noise (user studies are noisy too).
        let latent: f64 = item_a
            .latent
            .iter()
            .zip(item_b.latent.iter())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        let disagreement = item_a
            .categories
            .iter()
            .zip(item_b.categories.iter())
            .filter(|(x, y)| x != y)
            .count() as f64;
        let base = latent + 0.5 * disagreement;
        consensus.push(base + 0.3 * rng.gen::<f64>());
        individual_user.push(base + 1.8 * (rng.gen::<f64>() - 0.5) * base.max(1.0));
        space_distance.push(ctx.space.distance(a, b).unwrap());
    }

    let space_vs_consensus = pearson_correlation(&space_distance, &consensus);
    let user_vs_consensus = pearson_correlation(&individual_user, &consensus);

    println!("\n=== Section 4.2: distance correlation with the user consensus ===");
    println!("movie pairs sampled                    : {n_pairs}");
    println!("perceptual-space distance vs consensus : Pearson r = {space_vs_consensus:.2}");
    println!("simulated individual user vs consensus : Pearson r = {user_vs_consensus:.2}");
    println!(
        "\nPaper reference: space vs consensus 0.52, average individual user vs consensus 0.55 — \
         the space is about as accurate as a single human judge.  Expected shape here: both \
         correlations are of comparable magnitude and clearly positive."
    );
}
