//! Design-choice ablation — rating sparsity ("scarce data", Section 5).
//!
//! Section 5 discusses what happens in less popular domains where only few
//! ratings are available: "only little can be learned about an item's
//! properties … if no or only very few ratings are available", but active
//! core users go a long way.  The ablation subsamples the rating collection
//! to various fractions, rebuilds the space, and measures the downstream
//! extraction quality.

use bench::{fmt_gmean, mean_small_sample_gmean, print_header, ExperimentScale};
use datagen::{DomainConfig, SyntheticDomain};
use perceptual::{EuclideanEmbeddingConfig, EuclideanEmbeddingModel, Rating, RatingDataset};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let scale = ExperimentScale::from_env();
    println!(
        "Generating the movie domain (scale factor {}) …",
        scale.domain_factor
    );
    let domain =
        SyntheticDomain::generate(&DomainConfig::movies().scaled(scale.domain_factor), 15015)
            .expect("domain");
    let labels = domain.labels_for_category(0); // Comedy
    let all: Vec<Rating> = domain.ratings().ratings().to_vec();
    let mut rng = StdRng::seed_from_u64(123);

    print_header(
        "Ablation: rating sparsity vs extraction quality",
        &format!(
            "{:<16} {:>12} {:>14} {:>20}",
            "ratings kept", "#ratings", "density", "comedy g-mean (n=40)"
        ),
    );

    for &fraction in &[1.0f64, 0.5, 0.25, 0.1, 0.05, 0.02] {
        let mut subset = all.clone();
        subset.shuffle(&mut rng);
        subset.truncate(((all.len() as f64) * fraction) as usize);
        let dataset = match RatingDataset::from_ratings(
            domain.ratings().n_items(),
            domain.ratings().n_users(),
            subset,
        ) {
            Ok(d) => d,
            Err(_) => continue,
        };
        let config = EuclideanEmbeddingConfig {
            dimensions: scale.space_dimensions,
            epochs: scale.space_epochs,
            learning_rate: 0.02,
            ..Default::default()
        };
        let model = EuclideanEmbeddingModel::train(&dataset, &config).expect("embedding");
        let space = model.to_space();
        let g = mean_small_sample_gmean(
            &space,
            &labels,
            40,
            scale.repetitions.min(3),
            1100 + (fraction * 100.0) as u64,
        );
        println!(
            "{:<15.0}% {:>12} {:>13.3}% {:>20}",
            fraction * 100.0,
            dataset.len(),
            dataset.density() * 100.0,
            fmt_gmean(g)
        );
    }

    println!(
        "\nExpected shape: extraction quality degrades gracefully as ratings are removed and \
         collapses toward the 0.5 random baseline only at extreme sparsity — matching the \
         paper's 'scarce data' discussion."
    );
}
