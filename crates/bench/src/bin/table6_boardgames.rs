//! Table 6 — Automatic schema expansion from small samples: board games.
//!
//! The Table 3 protocol on the BoardGameGeek-like domain (20 categories,
//! 1–10 ratings).  Paper means: 0.63 / 0.68 / 0.73 for n = 10 / 20 / 40;
//! the paper highlights that truly perceptual categories such as "Party
//! Game" are identified much better than factual ones such as "Modular
//! Board" — the same contrast the harness prints.

use bench::{
    build_domain_and_space, fmt_gmean, mean_small_sample_gmean, print_header, ExperimentScale,
};
use datagen::DomainConfig;

fn main() {
    let scale = ExperimentScale::from_env();
    println!(
        "Building the board-game domain (scale factor {}, {} repetitions) …",
        scale.domain_factor, scale.repetitions
    );
    let (domain, space) = build_domain_and_space(&DomainConfig::board_games(), scale, 10010);
    let ns = [10usize, 20, 40];

    print_header(
        "Table 6: schema expansion from small samples — board games (g-mean)",
        &format!(
            "{:<26} {:>8} {:>8} {:>8}",
            "Category", "n = 10", "n = 20", "n = 40"
        ),
    );

    let mut sums = [0.0f64; 3];
    let mut counts = [0usize; 3];
    let mut perceptual_40 = Vec::new();
    let mut factual_40 = Vec::new();
    for (cat_idx, category) in domain.category_names().iter().enumerate() {
        let labels = domain.labels_for_category(cat_idx);
        let spec = &domain.config().categories[cat_idx];
        let mut row = format!("{:<26}", category);
        for (slot, &n) in ns.iter().enumerate() {
            let g = mean_small_sample_gmean(
                &space,
                &labels,
                n,
                scale.repetitions,
                600 + cat_idx as u64,
            );
            if let Some(v) = g {
                sums[slot] += v;
                counts[slot] += 1;
                if slot == 2 {
                    if spec.perceptual_strength >= 0.5 {
                        perceptual_40.push(v);
                    } else {
                        factual_40.push(v);
                    }
                }
            }
            row.push_str(&format!(" {:>8}", fmt_gmean(g)));
        }
        println!("{row}");
    }
    println!(
        "{:<26} {:>8} {:>8} {:>8}",
        "Mean",
        fmt_gmean((counts[0] > 0).then(|| sums[0] / counts[0] as f64)),
        fmt_gmean((counts[1] > 0).then(|| sums[1] / counts[1] as f64)),
        fmt_gmean((counts[2] > 0).then(|| sums[2] / counts[2] as f64)),
    );

    let mean = |v: &[f64]| {
        if v.is_empty() {
            f64::NAN
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    println!(
        "\nAt n = 40: perceptual categories mean g-mean {:.2}, mostly-factual categories {:.2}.",
        mean(&perceptual_40),
        mean(&factual_40)
    );
    println!(
        "Paper means: 0.63 / 0.68 / 0.73; 'Party Game' 0.71 vs 'Modular Board' 0.52 at n = 40 — \
         perceptual categories are extracted much better than factual ones."
    );
}
