//! Table 2 — Example movies and their five nearest neighbours in the
//! perceptual space.
//!
//! The paper lists the five nearest neighbours of *Rocky*, *Dirty Dancing*,
//! and *The Birds* and argues that the lists are perceptually coherent
//! (sports underdog dramas, formulaic romances, Hitchcock thrillers).  With
//! synthetic items there are no famous titles, so the harness measures the
//! same property quantitatively: for a set of query items, how much more do
//! the nearest neighbours share the query's genres than randomly chosen
//! items do (category coherence)?

use bench::{print_header, ExperimentScale, MovieContext};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn jaccard(a: &[bool], b: &[bool]) -> f64 {
    let both = a.iter().zip(b).filter(|(x, y)| **x && **y).count();
    let either = a.iter().zip(b).filter(|(x, y)| **x || **y).count();
    if either == 0 {
        // Two items without any category are perceptually "plain but alike".
        1.0
    } else {
        both as f64 / either as f64
    }
}

fn main() {
    let scale = ExperimentScale::from_env();
    println!(
        "Building the movie context (scale factor {}) …",
        scale.domain_factor
    );
    let ctx = MovieContext::build(scale, 2002);
    let mut rng = StdRng::seed_from_u64(77);
    let n_items = ctx.domain.items().len();
    let k = 5;

    print_header(
        "Table 2: nearest-neighbour coherence in the perceptual space",
        &format!(
            "{:<16} {:>22} {:>22}",
            "query item", "genre overlap (5-NN)", "genre overlap (random)"
        ),
    );

    let mut nn_total = 0.0;
    let mut random_total = 0.0;
    let queries: Vec<u32> = (0..8).map(|_| rng.gen_range(0..n_items) as u32).collect();
    for &query in &queries {
        let query_cats = &ctx.domain.item(query).unwrap().categories;
        let neighbors = ctx.space.nearest_neighbors(query, k).unwrap();
        let nn_overlap: f64 = neighbors
            .iter()
            .map(|n| jaccard(query_cats, &ctx.domain.item(n.item).unwrap().categories))
            .sum::<f64>()
            / k as f64;
        let random_overlap: f64 = (0..k)
            .map(|_| {
                let other = rng.gen_range(0..n_items) as u32;
                jaccard(query_cats, &ctx.domain.item(other).unwrap().categories)
            })
            .sum::<f64>()
            / k as f64;
        nn_total += nn_overlap;
        random_total += random_overlap;
        println!(
            "{:<16} {:>22.3} {:>22.3}",
            ctx.domain.item(query).unwrap().name,
            nn_overlap,
            random_overlap
        );
    }

    println!(
        "\nMean genre overlap: nearest neighbours {:.3} vs random {:.3} \
         ({}x more coherent).",
        nn_total / queries.len() as f64,
        random_total / queries.len() as f64,
        (nn_total / random_total * 10.0).round() / 10.0
    );
    println!(
        "Paper reference (qualitative): the 5-NN lists of Rocky, Dirty Dancing, and The Birds \
         consist of perceptually similar movies."
    );
}
