//! Table 5 — Automatic schema expansion from small samples: restaurants.
//!
//! The Table 3 protocol repeated on the Yelp-like restaurant domain
//! (10 categories, 1–5 star ratings).  Paper means: 0.62 / 0.67 / 0.75 for
//! n = 10 / 20 / 40 — slightly below the movie domain, with perceptual
//! categories (trendy ambience, noise level) extracted much better than
//! factual ones.

use bench::{
    build_domain_and_space, fmt_gmean, mean_small_sample_gmean, print_header, ExperimentScale,
};
use datagen::DomainConfig;

fn main() {
    let scale = ExperimentScale::from_env();
    println!(
        "Building the restaurant domain (scale factor {}, {} repetitions) …",
        scale.domain_factor, scale.repetitions
    );
    let (domain, space) = build_domain_and_space(&DomainConfig::restaurants(), scale, 9009);
    let ns = [10usize, 20, 40];

    print_header(
        "Table 5: schema expansion from small samples — restaurants (g-mean)",
        &format!(
            "{:<26} {:>8} {:>8} {:>8}",
            "Category", "n = 10", "n = 20", "n = 40"
        ),
    );

    let mut sums = [0.0f64; 3];
    let mut counts = [0usize; 3];
    for (cat_idx, category) in domain.category_names().iter().enumerate() {
        let labels = domain.labels_for_category(cat_idx);
        let mut row = format!("{:<26}", category);
        for (slot, &n) in ns.iter().enumerate() {
            let g = mean_small_sample_gmean(
                &space,
                &labels,
                n,
                scale.repetitions,
                500 + cat_idx as u64,
            );
            if let Some(v) = g {
                sums[slot] += v;
                counts[slot] += 1;
            }
            row.push_str(&format!(" {:>8}", fmt_gmean(g)));
        }
        println!("{row}");
    }
    println!(
        "{:<26} {:>8} {:>8} {:>8}",
        "Mean",
        fmt_gmean((counts[0] > 0).then(|| sums[0] / counts[0] as f64)),
        fmt_gmean((counts[1] > 0).then(|| sums[1] / counts[1] as f64)),
        fmt_gmean((counts[2] > 0).then(|| sums[2] / counts[2] as f64)),
    );

    println!(
        "\nPaper means: 0.62 / 0.67 / 0.75.  Expected shape: g-means rise with n, stay somewhat \
         below the movie domain, and factual categories (credit cards, open late) trail the \
         perceptual ones."
    );
}
