//! Table 3 — Automatic schema expansion from small samples.
//!
//! For each of the six shared genres the paper draws n ∈ {10, 20, 40}
//! positive and n negative training movies (20 random repetitions), trains
//! an SVM on (a) the perceptual space and (b) the LSI metadata space, and
//! reports the g-mean over the remaining 10,562 movies, next to the g-mean
//! of the three individual expert databases against the majority reference.
//!
//! Paper means: perceptual 0.69 / 0.76 / 0.80, metadata 0.50 / 0.41 / 0.44,
//! references Netflix 0.91, RT 0.94, IMDb 0.95, random baseline 0.50.

use bench::{
    fmt_gmean, labeling_gmean, mean_small_sample_gmean, print_header, ExperimentScale, MovieContext,
};

fn main() {
    let scale = ExperimentScale::from_env();
    println!(
        "Building the movie context (scale factor {}, {} repetitions) …",
        scale.domain_factor, scale.repetitions
    );
    let ctx = MovieContext::build(scale, 7007);
    let ns = [10usize, 20, 40];

    print_header(
        "Table 3: automatic schema expansion from small samples (g-mean)",
        &format!(
            "{:<14} {:>6} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6} | {:>8} {:>6} {:>6}",
            "Genre",
            "Random",
            "P n=10",
            "P n=20",
            "P n=40",
            "M n=10",
            "M n=20",
            "M n=40",
            "Netflix",
            "RT",
            "IMDb"
        ),
    );

    let mut sums = [0.0f64; 9];
    let mut counts = [0usize; 9];
    for (cat_idx, genre) in ctx.domain.category_names().iter().enumerate() {
        let labels = ctx.domain.labels_for_category(cat_idx);
        let reference = ctx.experts.majority(cat_idx);

        let mut row = format!("{:<14} {:>6.2} |", genre, 0.50);
        let mut cell = |value: Option<f64>, slot: usize, row: &mut String| {
            row.push_str(&format!(" {:>6}", fmt_gmean(value)));
            if let Some(v) = value {
                sums[slot] += v;
                counts[slot] += 1;
            }
        };

        for (i, &n) in ns.iter().enumerate() {
            let g = mean_small_sample_gmean(
                &ctx.space,
                &labels,
                n,
                scale.repetitions,
                100 + cat_idx as u64,
            );
            cell(g, i, &mut row);
        }
        row.push_str(" |");
        for (i, &n) in ns.iter().enumerate() {
            let g = mean_small_sample_gmean(
                &ctx.metadata_space,
                &labels,
                n,
                scale.repetitions,
                200 + cat_idx as u64,
            );
            cell(g, 3 + i, &mut row);
        }
        row.push_str(" |");
        for (i, source) in ctx.experts.sources().iter().enumerate() {
            let g = labeling_gmean(source.category_labels(cat_idx), &reference);
            let width = if i == 0 { 8 } else { 6 };
            row.push_str(&format!(" {:>width$.2}", g, width = width));
            sums[6 + i] += g;
            counts[6 + i] += 1;
        }
        println!("{row}");
    }

    let mean = |slot: usize| {
        if counts[slot] == 0 {
            "  - ".to_string()
        } else {
            format!("{:.2}", sums[slot] / counts[slot] as f64)
        }
    };
    println!(
        "{:<14} {:>6.2} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6} | {:>8} {:>6} {:>6}",
        "Mean",
        0.50,
        mean(0),
        mean(1),
        mean(2),
        mean(3),
        mean(4),
        mean(5),
        mean(6),
        mean(7),
        mean(8)
    );

    println!(
        "\nPaper means: perceptual 0.69 / 0.76 / 0.80; metadata 0.50 / 0.41 / 0.44; \
         references Netflix 0.91, RT 0.94, IMDb 0.95.\n\
         Expected shape: perceptual g-means rise with n and clearly beat the metadata space, \
         which hovers at or below the 0.50 random baseline; expert references stay above 0.9."
    );
}
