//! Table 1 — Classification accuracy for direct crowd-sourcing.
//!
//! Paper values (1,000 movies, 10 judgments each):
//!
//! | Evaluation        | #Classified | %Correct | Time    |
//! |-------------------|-------------|----------|---------|
//! | Exp. 1: All       | 893         | 59.7 %   | 105 min |
//! | Exp. 2: Trusted   | 801         | 79.4 %   | 116 min |
//! | Exp. 3: Lookup    | 966         | 93.5 %   | 562 min |
//!
//! The harness runs the three crowd regimes against the synthetic movie
//! domain and prints the same three columns (plus cost).  Absolute values
//! differ from the paper (simulated crowd, synthetic movies) but the
//! ordering — Exp. 1 < Exp. 2 < Exp. 3 in accuracy, Exp. 3 slowest — must
//! hold.

use bench::{print_header, ExperimentScale, MovieContext};
use crowdsim::ExperimentRegime;
use datagen::CategoryOracle;

fn main() {
    let scale = ExperimentScale::from_env();
    println!(
        "Building the movie context (scale factor {}) …",
        scale.domain_factor
    );
    let ctx = MovieContext::build(scale, 1001);
    let category = ctx
        .domain
        .category_index("Comedy")
        .expect("comedy category");
    let oracle = CategoryOracle::new(&ctx.domain, category);

    // The paper samples 1,000 movies; we take the same number (or all items
    // when the scaled domain is smaller).
    let sample_size = ctx.domain.items().len().min(1000);
    let items: Vec<u32> = (0..sample_size as u32).collect();

    print_header(
        "Table 1: classification accuracy for direct crowd-sourcing",
        &format!(
            "{:<18} {:>12} {:>10} {:>10} {:>8}",
            "Evaluation", "#Classified", "%Correct", "Time(min)", "Cost($)"
        ),
    );

    for (regime, seed) in [
        (ExperimentRegime::AllWorkers, 11u64),
        (ExperimentRegime::TrustedWorkers, 12),
        (ExperimentRegime::LookupWithGold, 13),
    ] {
        let outcome = regime.run(&items, &oracle, seed).expect("crowd run");
        println!(
            "{:<18} {:>12} {:>9.1}% {:>10.0} {:>8.2}",
            regime.name(),
            outcome.classified(),
            outcome.percent_correct() * 100.0,
            outcome.total_minutes(),
            outcome.total_cost()
        );
    }

    println!(
        "\nPaper reference: Exp1 893 / 59.7% / 105 min, Exp2 801 / 79.4% / 116 min, \
         Exp3 966 / 93.5% / 562 min (out of 1,000 movies, $20–$33)."
    );
}
