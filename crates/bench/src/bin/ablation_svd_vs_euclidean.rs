//! Design-choice ablation — Euclidean embedding vs. dot-product SVD model.
//!
//! Section 3.3 argues for the Euclidean embedding because, unlike the
//! classic SVD factor model, its item coordinates come with a meaningful
//! distance.  The ablation builds both spaces from the same ratings and runs
//! the Table 3 small-sample extraction on each, confirming that the
//! Euclidean space supports attribute extraction at least as well — and that
//! both rating-based spaces dwarf the metadata/LSI baseline.

use bench::{fmt_gmean, mean_small_sample_gmean, print_header, ExperimentScale, MovieContext};
use perceptual::{SvdConfig, SvdModel};

fn main() {
    let scale = ExperimentScale::from_env();
    println!(
        "Building the movie context (scale factor {}) …",
        scale.domain_factor
    );
    let ctx = MovieContext::build(scale, 13013);

    println!("Training the SVD (dot-product) factor model on the same ratings …");
    let svd = SvdModel::train(
        ctx.domain.ratings(),
        &SvdConfig {
            dimensions: scale.space_dimensions,
            epochs: scale.space_epochs,
            learning_rate: 0.02,
            ..Default::default()
        },
    )
    .expect("svd model");
    let svd_space = svd.to_space();

    print_header(
        "Ablation: factor model choice (mean g-mean across genres)",
        &format!(
            "{:<10} {:>12} {:>12} {:>12}",
            "n", "Euclidean", "SVD", "Metadata/LSI"
        ),
    );

    for &n in &[10usize, 20, 40] {
        let mut sums = [0.0f64; 3];
        let mut counts = [0usize; 3];
        for cat_idx in 0..ctx.domain.category_names().len() {
            let labels = ctx.domain.labels_for_category(cat_idx);
            for (slot, space) in [&ctx.space, &svd_space, &ctx.metadata_space]
                .iter()
                .enumerate()
            {
                if let Some(g) = mean_small_sample_gmean(
                    space,
                    &labels,
                    n,
                    scale.repetitions,
                    700 + cat_idx as u64,
                ) {
                    sums[slot] += g;
                    counts[slot] += 1;
                }
            }
        }
        let mean = |slot: usize| (counts[slot] > 0).then(|| sums[slot] / counts[slot] as f64);
        println!(
            "{:<10} {:>12} {:>12} {:>12}",
            n,
            fmt_gmean(mean(0)),
            fmt_gmean(mean(1)),
            fmt_gmean(mean(2))
        );
    }

    println!(
        "\nExpected shape: both rating-based spaces carry the perceptual signal (g-means well \
         above 0.5 and rising with n) while the metadata space does not; the Euclidean embedding \
         is competitive with or better than the SVD factors, justifying the paper's model choice."
    );
}
