//! Figure 4 — Correctly classified movies over money spent.
//!
//! Same runs as Figure 3, but keyed by the cumulative dollars paid to the
//! crowd instead of elapsed time: the paper's headline observation is that
//! after spending only $2.82 the boosted Experiment 4 already classifies
//! more movies correctly than the full $20 of pure crowd-sourcing
//! (538 vs 533).

use bench::{print_header, ExperimentScale, MovieContext};
use crowddb_core::{evaluate_boost_over_time, ExtractionConfig};
use crowdsim::ExperimentRegime;
use datagen::CategoryOracle;

fn main() {
    let scale = ExperimentScale::from_env();
    println!(
        "Building the movie context (scale factor {}) …",
        scale.domain_factor
    );
    let ctx = MovieContext::build(scale, 6006);
    let category = ctx.domain.category_index("Comedy").unwrap();
    let truth = ctx.domain.labels_for_category(category);
    let oracle = CategoryOracle::new(&ctx.domain, category);
    let sample_size = ctx.domain.items().len().min(1000);
    let items: Vec<u32> = (0..sample_size as u32).collect();

    print_header(
        &format!(
            "Figure 4: correctly classified movies (of {}) over money spent",
            items.len()
        ),
        &format!(
            "{:<22} {:>10} {:>14} {:>16} {:>18}",
            "experiment", "budget $", "crowd correct", "boosted correct", "boosted full-$ "
        ),
    );

    for (regime, name, seed) in [
        (ExperimentRegime::AllWorkers, "Exp1/4 (all workers)", 61u64),
        (ExperimentRegime::TrustedWorkers, "Exp2/5 (trusted)", 62),
        (ExperimentRegime::LookupWithGold, "Exp3/6 (lookup)", 63),
    ] {
        let pool = regime.worker_pool(seed);
        let config = regime.hit_config(items.len());
        let run = crowdsim::CrowdPlatform::new(config)
            .run(&items, &oracle, &pool, seed + 200)
            .expect("crowd run");
        let judgments = match regime {
            ExperimentRegime::LookupWithGold => run.trusted_judgments(),
            _ => run.judgments.clone(),
        };
        let run = crowdsim::CrowdRun { judgments, ..run };
        let curve = evaluate_boost_over_time(
            &run,
            &ctx.space,
            &items,
            &truth,
            run.total_minutes / 12.0,
            &ExtractionConfig::default(),
        )
        .expect("boost curve");

        // Report checkpoints at ~15 % and 100 % of the total budget.
        let budget_levels = [0.15, 0.5, 1.0];
        let last = curve.checkpoints.last().cloned();
        for &fraction in &budget_levels {
            let budget = run.total_cost * fraction;
            let checkpoint = curve
                .checkpoints
                .iter()
                .rfind(|c| c.cost <= budget + 1e-9)
                .cloned();
            if let Some(c) = checkpoint {
                println!(
                    "{:<22} {:>10.2} {:>14} {:>16} {:>18}",
                    name,
                    c.cost,
                    c.crowd_correct,
                    c.boosted_correct.map_or("-".into(), |b| b.to_string()),
                    last.as_ref()
                        .and_then(|l| l.boosted_correct)
                        .map_or("-".into(), |b| b.to_string()),
                );
            }
        }
        println!();
    }

    println!(
        "Paper reference: Exp4 classifies 538 movies correctly after $2.82 (Exp1 needed the full \
         $20 for 533); Exp5 reaches 654 after $2.16; Exp6 reaches 732 after $0.32; full-budget \
         boosted values are 670 / 766 / 831."
    );
}
