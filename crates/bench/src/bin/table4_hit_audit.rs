//! Table 4 — Automatic identification of questionable HIT responses.
//!
//! For each genre the paper swaps the labels of x ∈ {5 %, 10 %, 20 %} of all
//! movies, trains an SVM on the (corrupted) labels over the perceptual
//! space, flags every movie whose label disagrees with the model, and
//! reports precision / recall of the flags against the known swaps — once
//! for the perceptual space and once for the metadata space (20 runs each).
//!
//! Paper means (perceptual): 0.46/0.88, 0.60/0.89, 0.73/0.88 for x = 5, 10,
//! 20 %; metadata space: 0.09/0.40, 0.10/0.31, 0.16/0.31.

use bench::{print_header, ExperimentScale, MovieContext};
use crowddb_core::{audit_binary_labels, ExtractionConfig};
use mlkit::LabeledDataset;
use perceptual::PerceptualSpace;

fn audit_mean(
    space: &PerceptualSpace,
    labels: &[bool],
    corruption: f64,
    repetitions: usize,
    seed: u64,
) -> (f64, f64) {
    let dataset =
        LabeledDataset::new(space.all_coordinates().to_vec(), labels.to_vec()).expect("dataset");
    let mut precision_sum = 0.0;
    let mut recall_sum = 0.0;
    let mut runs = 0;
    for rep in 0..repetitions {
        let (corrupted, swapped) = dataset.with_swapped_labels(corruption, seed + rep as u64);
        let swapped: Vec<u32> = swapped.iter().map(|&i| i as u32).collect();
        let outcome = audit_binary_labels(space, corrupted.labels(), &ExtractionConfig::default())
            .expect("audit");
        let (p, r) = outcome.precision_recall(&swapped);
        precision_sum += p;
        recall_sum += r;
        runs += 1;
    }
    (precision_sum / runs as f64, recall_sum / runs as f64)
}

fn main() {
    let scale = ExperimentScale::from_env();
    println!(
        "Building the movie context (scale factor {}, {} repetitions) …",
        scale.domain_factor, scale.repetitions
    );
    let ctx = MovieContext::build(scale, 8008);
    let corruption_levels = [0.05, 0.10, 0.20];

    print_header(
        "Table 4: identification of questionable HIT responses (precision / recall)",
        &format!(
            "{:<14} | {:>12} {:>12} {:>12} | {:>12} {:>12} {:>12}",
            "Genre", "P x=5%", "P x=10%", "P x=20%", "M x=5%", "M x=10%", "M x=20%"
        ),
    );

    let mut totals = [(0.0f64, 0.0f64); 6];
    let n_genres = ctx.domain.category_names().len();
    for (cat_idx, genre) in ctx.domain.category_names().iter().enumerate() {
        let labels = ctx.domain.labels_for_category(cat_idx);
        let mut row = format!("{:<14} |", genre);
        for (slot, &x) in corruption_levels.iter().enumerate() {
            let (p, r) = audit_mean(
                &ctx.space,
                &labels,
                x,
                scale.repetitions,
                300 + cat_idx as u64,
            );
            totals[slot].0 += p;
            totals[slot].1 += r;
            row.push_str(&format!(" {:>5.2}/{:>5.2} ", p, r));
        }
        row.push('|');
        for (slot, &x) in corruption_levels.iter().enumerate() {
            let (p, r) = audit_mean(
                &ctx.metadata_space,
                &labels,
                x,
                scale.repetitions,
                400 + cat_idx as u64,
            );
            totals[3 + slot].0 += p;
            totals[3 + slot].1 += r;
            row.push_str(&format!(" {:>5.2}/{:>5.2} ", p, r));
        }
        println!("{row}");
    }

    let mut mean_row = format!("{:<14} |", "Mean");
    for (slot, (p, r)) in totals.iter().enumerate() {
        if slot == 3 {
            mean_row.push('|');
        }
        mean_row.push_str(&format!(
            " {:>5.2}/{:>5.2} ",
            p / n_genres as f64,
            r / n_genres as f64
        ));
    }
    println!("{mean_row}");

    println!(
        "\nPaper means (perceptual space): 0.46/0.88 at 5%, 0.60/0.89 at 10%, 0.73/0.88 at 20%; \
         metadata space: 0.09/0.40, 0.10/0.31, 0.16/0.31.\n\
         Expected shape: recall stays high (~0.85+) across corruption levels, precision grows \
         with x, and the metadata space is far worse on both."
    );
}
