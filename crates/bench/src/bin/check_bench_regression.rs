//! Bench-regression guard: compares the deterministic *cost* fields of the
//! smoke-bench reports (`BENCH_policy.json`, `BENCH_stream.json`,
//! `BENCH_shard.json`, `BENCH_server.json`, `BENCH_overload.json`)
//! against the baselines committed under `ci/`, and fails on any drift.
//!
//! The guarded fields are the seeded, machine-independent outputs of the
//! policy engine — crowd dollars per mode and missing-cell counts — which
//! is exactly the paper's cost model: an accidental change that makes a
//! query pay the crowd more (or leave more holes) than the committed
//! baseline is a regression even when every test still passes.  The flaky
//! wall-clock fields (`*_ms`) are deliberately ignored.
//!
//! Run after the smoke benches, from the workspace root:
//!
//! ```text
//! cargo bench -p bench --bench policy_modes -- --test
//! cargo bench -p bench --bench stream_latency -- --test
//! cargo run -p bench --bin check_bench_regression
//! ```
//!
//! To bless an intentional cost change, copy the fresh reports over the
//! baselines (the failure message prints the exact command).

use std::path::PathBuf;
use std::process::ExitCode;

/// The deterministic fields guarded per report file.
const POLICY_FIELDS: &[&str] = &[
    "items",
    "full_cost_dollars",
    "full_accuracy",
    "adaptive_cost_dollars",
    "adaptive_accuracy",
    "adaptive_classified_cells",
    "adaptive_flat_cost_dollars",
    "adaptive_flat_accuracy",
    "adaptive_flat_classified_cells",
    "best_effort_budget_dollars",
    "best_effort_cost_dollars",
    "best_effort_missing_cells",
    "cache_only_warm_cost_dollars",
];
const STREAM_FIELDS: &[&str] = &[
    "items",
    "budget_dollars",
    "full_cost_dollars",
    "full_missing_cells",
    "best_effort_cost_dollars",
    "best_effort_missing_cells",
];
const SERVER_FIELDS: &[&str] = &[
    "clients",
    "items",
    "server_crowd_rounds",
    "server_cold_cost_dollars",
    "server_warm_cost_dollars",
];
const OVERLOAD_FIELDS: &[&str] = &[
    "items",
    "overload_admitted",
    "overload_degraded",
    "overload_shed",
    "overload_dollars_charged",
    "overload_full_cost_dollars",
    "overload_degraded_cost_dollars",
];
const SHARD_FIELDS: &[&str] = &[
    "threads",
    "tables",
    "rows_written",
    "archive_rows_per_table",
    "expansion_items_per_table",
    "expansion_cost_dollars",
    "expansion_missing_cells",
    "count_partition",
    "giant_rows_partition",
    "rows_written_partition",
];

/// Numeric comparisons use an epsilon: the reports print floats with fixed
/// precision, so equality up to rounding noise is the contract.
const EPSILON: f64 = 1e-6;

/// Extracts the numeric value of `"key": <number>` from a (flat, trusted,
/// self-emitted) JSON report.  A full JSON parser would be overkill for
/// the two files this binary audits — both are written by our own benches
/// with unique key names.
fn field(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)?;
    let rest = &json[at + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/bench; the reports and baselines live
    // relative to the workspace root, two levels up.
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    root.pop();
    root.pop();
    root
}

fn compare(report: &str, baseline: &str, fields: &[&str]) -> Result<(), Vec<String>> {
    let root = workspace_root();
    let report_path = root.join(report);
    let baseline_path = root.join("ci").join(baseline);
    let fresh = match std::fs::read_to_string(&report_path) {
        Ok(s) => s,
        Err(e) => return Err(vec![format!("cannot read {}: {e}", report_path.display())]),
    };
    let committed = match std::fs::read_to_string(&baseline_path) {
        Ok(s) => s,
        Err(e) => {
            return Err(vec![format!(
                "cannot read baseline {}: {e}",
                baseline_path.display()
            )])
        }
    };
    let mut drifts = Vec::new();
    for key in fields {
        match (field(&committed, key), field(&fresh, key)) {
            (Some(want), Some(got)) if (want - got).abs() <= EPSILON => {}
            (Some(want), Some(got)) => drifts.push(format!(
                "{report}: {key} drifted from baseline {want} to {got}"
            )),
            (None, _) => drifts.push(format!("{baseline}: baseline is missing field {key}")),
            (_, None) => drifts.push(format!("{report}: report is missing field {key}")),
        }
    }
    if drifts.is_empty() {
        Ok(())
    } else {
        Err(drifts)
    }
}

fn main() -> ExitCode {
    let checks = [
        (
            "BENCH_policy.json",
            "BENCH_policy.baseline.json",
            POLICY_FIELDS,
        ),
        (
            "BENCH_stream.json",
            "BENCH_stream.baseline.json",
            STREAM_FIELDS,
        ),
        (
            "BENCH_shard.json",
            "BENCH_shard.baseline.json",
            SHARD_FIELDS,
        ),
        (
            "BENCH_server.json",
            "BENCH_server.baseline.json",
            SERVER_FIELDS,
        ),
        (
            "BENCH_overload.json",
            "BENCH_overload.baseline.json",
            OVERLOAD_FIELDS,
        ),
    ];
    let mut failed = false;
    for (report, baseline, fields) in checks {
        match compare(report, baseline, fields) {
            Ok(()) => println!("ok: {report} matches ci/{baseline} on {fields:?}"),
            Err(drifts) => {
                failed = true;
                for drift in drifts {
                    eprintln!("bench regression: {drift}");
                }
                eprintln!(
                    "  if the cost change is intentional, re-bless with:\n  cp {report} ci/{baseline}"
                );
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::field;

    #[test]
    fn extracts_flat_and_nested_numbers() {
        let json = r#"{ "items": 100, "full_cost_dollars": 2.0000,
                        "best_effort": { "budget_dollars": 20.0000, "first_row_ms": 0.2 } }"#;
        assert_eq!(field(json, "items"), Some(100.0));
        assert_eq!(field(json, "full_cost_dollars"), Some(2.0));
        assert_eq!(field(json, "budget_dollars"), Some(20.0));
        assert_eq!(field(json, "missing"), None);
    }
}
