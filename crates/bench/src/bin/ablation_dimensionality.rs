//! Design-choice ablation — dimensionality d and regularization λ.
//!
//! Section 3.3: "the specific choice of d does not significantly influence
//! the properties of the space as long as d is large enough … we found the
//! exact choice of λ to be of minor importance (λ = 0.02 worked well)".
//! The ablation sweeps both parameters and reports (a) the held-out rating
//! RMSE of the embedding and (b) the downstream extraction g-mean for the
//! comedy genre, confirming the flat plateaus the paper describes.

use bench::{fmt_gmean, mean_small_sample_gmean, print_header, ExperimentScale};
use datagen::{DomainConfig, SyntheticDomain};
use perceptual::{EuclideanEmbeddingConfig, EuclideanEmbeddingModel};

fn main() {
    let scale = ExperimentScale::from_env();
    println!(
        "Generating the movie domain (scale factor {}) …",
        scale.domain_factor
    );
    let domain =
        SyntheticDomain::generate(&DomainConfig::movies().scaled(scale.domain_factor), 14014)
            .expect("domain");
    let (train, holdout) = domain.ratings().split(0.1, 5).expect("split");
    let labels = domain.labels_for_category(0); // Comedy

    print_header(
        "Ablation: embedding dimensionality d (λ = 0.02)",
        &format!(
            "{:<8} {:>14} {:>18}",
            "d", "holdout RMSE", "comedy g-mean (n=40)"
        ),
    );
    for &d in &[2usize, 4, 8, 16, 32, 64] {
        let config = EuclideanEmbeddingConfig {
            dimensions: d,
            epochs: scale.space_epochs,
            learning_rate: 0.02,
            ..Default::default()
        };
        let model = EuclideanEmbeddingModel::train(&train, &config).expect("embedding");
        let rmse = model.rmse(&holdout).expect("rmse");
        let space = model.to_space();
        let g = mean_small_sample_gmean(
            &space,
            &labels,
            40,
            scale.repetitions.min(3),
            900 + d as u64,
        );
        println!("{:<8} {:>14.3} {:>18}", d, rmse, fmt_gmean(g));
    }

    print_header(
        "Ablation: regularization λ (d at the experiment scale)",
        &format!(
            "{:<8} {:>14} {:>18}",
            "lambda", "holdout RMSE", "comedy g-mean (n=40)"
        ),
    );
    for &lambda in &[0.0f64, 0.005, 0.02, 0.08, 0.3] {
        let config = EuclideanEmbeddingConfig {
            dimensions: scale.space_dimensions,
            epochs: scale.space_epochs,
            learning_rate: 0.02,
            lambda,
            ..Default::default()
        };
        let model = EuclideanEmbeddingModel::train(&train, &config).expect("embedding");
        let rmse = model.rmse(&holdout).expect("rmse");
        let space = model.to_space();
        let g = mean_small_sample_gmean(
            &space,
            &labels,
            40,
            scale.repetitions.min(3),
            1000 + (lambda * 1000.0) as u64,
        );
        println!("{:<8} {:>14.3} {:>18}", lambda, rmse, fmt_gmean(g));
    }

    println!(
        "\nExpected shape (paper, Section 3.3): quality saturates once d is large enough and is \
         insensitive to λ over a wide range around 0.02; only extreme settings (d ≤ 2, very \
         large λ) degrade the space."
    );
}
