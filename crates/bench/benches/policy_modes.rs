//! Criterion bench: expansion-policy modes on the cold/warm pipeline.
//!
//! Compares a cold `Full` expansion, a cold `BestEffort` expansion whose
//! budget covers roughly half the items, and a warm `CacheOnly` query, so
//! the policy path has a tracked perf baseline next to the unpoliced
//! pipeline bench.  Besides the timings, the run emits `BENCH_policy.json`
//! at the workspace root with the measured crowd *dollars* per mode — the
//! cost axis criterion cannot see.
//!
//! Run with `cargo bench -p bench --bench policy_modes`; pass `-- --test`
//! for the CI smoke mode (one sample per benchmark, same JSON).

use std::path::PathBuf;

use criterion::Criterion;
use crowddb_core::{
    build_space_for_domain, CrowdDb, CrowdDbConfig, ExpansionMode, ExpansionStrategy,
    SimulatedCrowd,
};
use crowdsim::ExperimentRegime;
use datagen::{DomainConfig, SyntheticDomain};
use perceptual::PerceptualSpace;
use relational::Value;

const QUERY: &str = "SELECT item_id, is_comedy FROM movies";

fn make_db(domain: &SyntheticDomain, space: PerceptualSpace) -> CrowdDb {
    make_regime_db(domain, space, ExperimentRegime::TrustedWorkers)
}

fn make_regime_db(
    domain: &SyntheticDomain,
    space: PerceptualSpace,
    regime: ExperimentRegime,
) -> CrowdDb {
    let crowd = SimulatedCrowd::new(domain, regime, 17);
    // Direct crowd-sourcing prices every item, which is what makes the
    // budget meaningful (perceptual extraction would extrapolate around it).
    let db = CrowdDb::new(CrowdDbConfig {
        strategy: ExpansionStrategy::DirectCrowd,
        ..Default::default()
    });
    db.load_domain("movies", domain, space, Box::new(crowd))
        .unwrap();
    db.register_attribute("movies", "is_comedy", "Comedy")
        .unwrap();
    db
}

struct ModeCosts {
    full: f64,
    full_accuracy: f64,
    adaptive: f64,
    adaptive_accuracy: f64,
    adaptive_cells: usize,
    adaptive_flat: f64,
    adaptive_flat_accuracy: f64,
    adaptive_flat_cells: usize,
    best_effort: f64,
    best_effort_budget: f64,
    best_effort_missing: usize,
    cache_only_warm: f64,
    items: usize,
}

/// Classified-cell count and the fraction of those matching the domain's
/// ground truth — the answer-quality axis of the adaptive-vs-flat
/// comparison.
fn accuracy_vs_oracle(domain: &SyntheticDomain, rows: &crowddb_core::RowSet) -> (usize, f64) {
    let comedy = domain
        .category_names()
        .iter()
        .position(|n| n == "Comedy")
        .expect("movies domain has a Comedy category");
    let truth = domain.labels_for_category(comedy);
    let item_col = rows
        .columns
        .iter()
        .position(|c| c.eq_ignore_ascii_case("item_id"))
        .unwrap();
    let label_col = rows
        .columns
        .iter()
        .position(|c| c.eq_ignore_ascii_case("is_comedy"))
        .unwrap();
    let mut classified = 0usize;
    let mut correct = 0usize;
    for row in &rows.rows {
        let item = match row[item_col] {
            Value::Integer(i) => i as usize,
            _ => continue,
        };
        if let Value::Boolean(label) = row[label_col] {
            classified += 1;
            if truth.get(item) == Some(&label) {
                correct += 1;
            }
        }
    }
    (classified, correct as f64 / classified.max(1) as f64)
}

/// One un-timed pass per mode, capturing the crowd dollars each policy
/// spends — the numbers `BENCH_policy.json` records.
fn measure_costs(domain: &SyntheticDomain, space: &PerceptualSpace, budget: f64) -> ModeCosts {
    let full = make_db(domain, space.clone())
        .query(QUERY)
        .mode(ExpansionMode::Full)
        .run()
        .unwrap();
    // Adaptive vs flat on the lookup crowd (Experiment 3): every worker
    // answers (no "don't know" option), so flat's 10 assignments per item
    // are mostly redundant confirmation — the setting where posterior
    // early-stopping pays.  Both passes run cold on identical worker pools
    // and HIT pricing; only the acquisition policy differs.
    let adaptive_flat = make_regime_db(domain, space.clone(), ExperimentRegime::LookupWithGold)
        .query(QUERY)
        .mode(ExpansionMode::Full)
        .run()
        .unwrap();
    let adaptive = make_regime_db(domain, space.clone(), ExperimentRegime::LookupWithGold)
        .query(QUERY)
        .mode(ExpansionMode::Full)
        .adaptive(true)
        .run()
        .unwrap();
    let best_effort_db = make_db(domain, space.clone());
    let best_effort = best_effort_db.query(QUERY).budget(budget).run().unwrap();
    // Warm cache-only: reuse the budgeted database's cache.
    let cache_only = best_effort_db
        .query(QUERY)
        .mode(ExpansionMode::CacheOnly)
        .run()
        .unwrap();
    let (_, full_accuracy) = accuracy_vs_oracle(domain, full.rows().unwrap());
    let (adaptive_cells, adaptive_accuracy) = accuracy_vs_oracle(domain, adaptive.rows().unwrap());
    let (adaptive_flat_cells, adaptive_flat_accuracy) =
        accuracy_vs_oracle(domain, adaptive_flat.rows().unwrap());
    ModeCosts {
        full: full.crowd_cost,
        full_accuracy,
        adaptive: adaptive.crowd_cost,
        adaptive_accuracy,
        adaptive_cells,
        adaptive_flat: adaptive_flat.crowd_cost,
        adaptive_flat_accuracy,
        adaptive_flat_cells,
        best_effort: best_effort.crowd_cost,
        best_effort_budget: budget,
        best_effort_missing: best_effort.rows().unwrap().missing_cells(),
        cache_only_warm: cache_only.crowd_cost,
        items: domain.items().len(),
    }
}

fn write_report(costs: &ModeCosts) {
    // CARGO_MANIFEST_DIR is crates/bench; the report belongs at the
    // workspace root regardless of where cargo runs the bench binary.
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path.push("BENCH_policy.json");
    let json = format!(
        "{{\n  \"bench\": \"policy_modes\",\n  \"items\": {},\n  \
         \"full_cost_dollars\": {:.4},\n  \"full_accuracy\": {:.4},\n  \
         \"adaptive_cost_dollars\": {:.4},\n  \"adaptive_accuracy\": {:.4},\n  \
         \"adaptive_classified_cells\": {},\n  \
         \"adaptive_flat_cost_dollars\": {:.4},\n  \"adaptive_flat_accuracy\": {:.4},\n  \
         \"adaptive_flat_classified_cells\": {},\n  \
         \"best_effort_budget_dollars\": {:.4},\n  \
         \"best_effort_cost_dollars\": {:.4},\n  \"best_effort_missing_cells\": {},\n  \
         \"cache_only_warm_cost_dollars\": {:.4}\n}}\n",
        costs.items,
        costs.full,
        costs.full_accuracy,
        costs.adaptive,
        costs.adaptive_accuracy,
        costs.adaptive_cells,
        costs.adaptive_flat,
        costs.adaptive_flat_accuracy,
        costs.adaptive_flat_cells,
        costs.best_effort_budget,
        costs.best_effort,
        costs.best_effort_missing,
        costs.cache_only_warm,
    );
    std::fs::write(&path, json).expect("write BENCH_policy.json");
    println!("wrote {}", path.display());
}

fn bench_policy_modes(
    c: &mut Criterion,
    domain: &SyntheticDomain,
    space: &PerceptualSpace,
    budget: f64,
) {
    let mut group = c.benchmark_group("policy_modes");
    group.sample_size(10);

    // Cold full expansion: every item judged, every dollar spent.
    group.bench_function("full_cold", |b| {
        b.iter(|| {
            let db = make_db(domain, space.clone());
            db.query(QUERY).mode(ExpansionMode::Full).run().unwrap()
        })
    });

    // Cold best-effort under a half-coverage budget: fewer rounds, partial
    // column, Missing-provenance cells.
    group.bench_function("best_effort_half_budget_cold", |b| {
        b.iter(|| {
            let db = make_db(domain, space.clone());
            let outcome = db.query(QUERY).budget(budget).run().unwrap();
            assert!(outcome.crowd_cost <= budget + 1e-9);
            outcome
        })
    });

    // Warm cache-only: zero crowd work, pure cache + catalog reads.
    group.bench_function("cache_only_warm", |b| {
        let db = make_db(domain, space.clone());
        db.query(QUERY).mode(ExpansionMode::Full).run().unwrap();
        b.iter(|| {
            let outcome = db
                .query(QUERY)
                .mode(ExpansionMode::CacheOnly)
                .run()
                .unwrap();
            assert_eq!(outcome.crowd_cost, 0.0);
            outcome
        })
    });

    group.finish();
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let domain = SyntheticDomain::generate(&DomainConfig::movies().scaled(0.05), 6).unwrap();
    let space = build_space_for_domain(&domain, 8, 10).unwrap();
    // Half-coverage budget under trusted-worker pricing; the platform's
    // own inversion confirms what that budget buys.
    let half = domain.items().len() / 2;
    let pricing = ExperimentRegime::TrustedWorkers.hit_config(half);
    let budget = pricing.total_cost(half);
    assert_eq!(pricing.max_items_within_budget(budget), half);

    let costs = measure_costs(&domain, &space, budget);
    assert!(costs.best_effort <= costs.best_effort_budget + 1e-9);
    assert!(costs.full > costs.best_effort);
    assert_eq!(costs.cache_only_warm, 0.0);
    // Adaptive acquisition must buy classified cells at least 20% cheaper
    // than flat assignments-per-item on the same crowd, without giving up
    // accuracy against the domain's ground truth.
    let adaptive_per_cell = costs.adaptive / costs.adaptive_cells.max(1) as f64;
    let flat_per_cell = costs.adaptive_flat / costs.adaptive_flat_cells.max(1) as f64;
    assert!(
        adaptive_per_cell <= 0.8 * flat_per_cell,
        "adaptive ${adaptive_per_cell:.4}/cell vs flat ${flat_per_cell:.4}/cell"
    );
    assert!(
        costs.adaptive_accuracy >= costs.adaptive_flat_accuracy,
        "adaptive accuracy {:.4} below flat {:.4}",
        costs.adaptive_accuracy,
        costs.adaptive_flat_accuracy
    );
    write_report(&costs);

    let mut criterion = Criterion::default();
    if smoke {
        // CI smoke mode: compile-and-exercise the policy path, one sample
        // per benchmark, no timing fidelity intended.
        let mut group = criterion.benchmark_group("policy_modes_smoke");
        group.sample_size(1);
        group.bench_function("smoke", |b| {
            b.iter(|| {
                let db = make_db(&domain, space.clone());
                db.query(QUERY).budget(budget).run().unwrap()
            })
        });
        group.finish();
        return;
    }
    bench_policy_modes(&mut criterion, &domain, &space, budget);
}
