//! Criterion bench: expansion-policy modes on the cold/warm pipeline.
//!
//! Compares a cold `Full` expansion, a cold `BestEffort` expansion whose
//! budget covers roughly half the items, and a warm `CacheOnly` query, so
//! the policy path has a tracked perf baseline next to the unpoliced
//! pipeline bench.  Besides the timings, the run emits `BENCH_policy.json`
//! at the workspace root with the measured crowd *dollars* per mode — the
//! cost axis criterion cannot see.
//!
//! Run with `cargo bench -p bench --bench policy_modes`; pass `-- --test`
//! for the CI smoke mode (one sample per benchmark, same JSON).

use std::path::PathBuf;

use criterion::Criterion;
use crowddb_core::{
    build_space_for_domain, CrowdDb, CrowdDbConfig, ExpansionMode, ExpansionStrategy,
    SimulatedCrowd,
};
use crowdsim::ExperimentRegime;
use datagen::{DomainConfig, SyntheticDomain};
use perceptual::PerceptualSpace;

const QUERY: &str = "SELECT item_id, is_comedy FROM movies";

fn make_db(domain: &SyntheticDomain, space: PerceptualSpace) -> CrowdDb {
    let crowd = SimulatedCrowd::new(domain, ExperimentRegime::TrustedWorkers, 17);
    // Direct crowd-sourcing prices every item, which is what makes the
    // budget meaningful (perceptual extraction would extrapolate around it).
    let db = CrowdDb::new(CrowdDbConfig {
        strategy: ExpansionStrategy::DirectCrowd,
        ..Default::default()
    });
    db.load_domain("movies", domain, space, Box::new(crowd))
        .unwrap();
    db.register_attribute("movies", "is_comedy", "Comedy")
        .unwrap();
    db
}

struct ModeCosts {
    full: f64,
    best_effort: f64,
    best_effort_budget: f64,
    best_effort_missing: usize,
    cache_only_warm: f64,
    items: usize,
}

/// One un-timed pass per mode, capturing the crowd dollars each policy
/// spends — the numbers `BENCH_policy.json` records.
fn measure_costs(domain: &SyntheticDomain, space: &PerceptualSpace, budget: f64) -> ModeCosts {
    let full = make_db(domain, space.clone())
        .query(QUERY)
        .mode(ExpansionMode::Full)
        .run()
        .unwrap();
    let best_effort_db = make_db(domain, space.clone());
    let best_effort = best_effort_db.query(QUERY).budget(budget).run().unwrap();
    // Warm cache-only: reuse the budgeted database's cache.
    let cache_only = best_effort_db
        .query(QUERY)
        .mode(ExpansionMode::CacheOnly)
        .run()
        .unwrap();
    ModeCosts {
        full: full.crowd_cost,
        best_effort: best_effort.crowd_cost,
        best_effort_budget: budget,
        best_effort_missing: best_effort.rows().unwrap().missing_cells(),
        cache_only_warm: cache_only.crowd_cost,
        items: domain.items().len(),
    }
}

fn write_report(costs: &ModeCosts) {
    // CARGO_MANIFEST_DIR is crates/bench; the report belongs at the
    // workspace root regardless of where cargo runs the bench binary.
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path.push("BENCH_policy.json");
    let json = format!(
        "{{\n  \"bench\": \"policy_modes\",\n  \"items\": {},\n  \
         \"full_cost_dollars\": {:.4},\n  \"best_effort_budget_dollars\": {:.4},\n  \
         \"best_effort_cost_dollars\": {:.4},\n  \"best_effort_missing_cells\": {},\n  \
         \"cache_only_warm_cost_dollars\": {:.4}\n}}\n",
        costs.items,
        costs.full,
        costs.best_effort_budget,
        costs.best_effort,
        costs.best_effort_missing,
        costs.cache_only_warm,
    );
    std::fs::write(&path, json).expect("write BENCH_policy.json");
    println!("wrote {}", path.display());
}

fn bench_policy_modes(
    c: &mut Criterion,
    domain: &SyntheticDomain,
    space: &PerceptualSpace,
    budget: f64,
) {
    let mut group = c.benchmark_group("policy_modes");
    group.sample_size(10);

    // Cold full expansion: every item judged, every dollar spent.
    group.bench_function("full_cold", |b| {
        b.iter(|| {
            let db = make_db(domain, space.clone());
            db.query(QUERY).mode(ExpansionMode::Full).run().unwrap()
        })
    });

    // Cold best-effort under a half-coverage budget: fewer rounds, partial
    // column, Missing-provenance cells.
    group.bench_function("best_effort_half_budget_cold", |b| {
        b.iter(|| {
            let db = make_db(domain, space.clone());
            let outcome = db.query(QUERY).budget(budget).run().unwrap();
            assert!(outcome.crowd_cost <= budget + 1e-9);
            outcome
        })
    });

    // Warm cache-only: zero crowd work, pure cache + catalog reads.
    group.bench_function("cache_only_warm", |b| {
        let db = make_db(domain, space.clone());
        db.query(QUERY).mode(ExpansionMode::Full).run().unwrap();
        b.iter(|| {
            let outcome = db
                .query(QUERY)
                .mode(ExpansionMode::CacheOnly)
                .run()
                .unwrap();
            assert_eq!(outcome.crowd_cost, 0.0);
            outcome
        })
    });

    group.finish();
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let domain = SyntheticDomain::generate(&DomainConfig::movies().scaled(0.05), 6).unwrap();
    let space = build_space_for_domain(&domain, 8, 10).unwrap();
    // Half-coverage budget under trusted-worker pricing; the platform's
    // own inversion confirms what that budget buys.
    let half = domain.items().len() / 2;
    let pricing = ExperimentRegime::TrustedWorkers.hit_config(half);
    let budget = pricing.total_cost(half);
    assert_eq!(pricing.max_items_within_budget(budget), half);

    let costs = measure_costs(&domain, &space, budget);
    assert!(costs.best_effort <= costs.best_effort_budget + 1e-9);
    assert!(costs.full > costs.best_effort);
    assert_eq!(costs.cache_only_warm, 0.0);
    write_report(&costs);

    let mut criterion = Criterion::default();
    if smoke {
        // CI smoke mode: compile-and-exercise the policy path, one sample
        // per benchmark, no timing fidelity intended.
        let mut group = criterion.benchmark_group("policy_modes_smoke");
        group.sample_size(1);
        group.bench_function("smoke", |b| {
            b.iter(|| {
                let db = make_db(&domain, space.clone());
                db.query(QUERY).budget(budget).run().unwrap()
            })
        });
        group.finish();
        return;
    }
    bench_policy_modes(&mut criterion, &domain, &space, budget);
}
