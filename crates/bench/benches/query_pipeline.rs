//! Criterion bench: end-to-end query execution in the crowd-enabled
//! database — factual queries (no expansion) and the full query-driven
//! schema expansion pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use crowddb_core::{CrowdDb, CrowdDbConfig, ExpansionStrategy, ExtractionConfig, SimulatedCrowd};
use crowdsim::ExperimentRegime;
use datagen::{DomainConfig, SyntheticDomain};

fn make_db(domain: &SyntheticDomain, space: perceptual::PerceptualSpace) -> CrowdDb {
    let crowd = SimulatedCrowd::new(domain, ExperimentRegime::TrustedWorkers, 9);
    let db = CrowdDb::new(CrowdDbConfig {
        strategy: ExpansionStrategy::PerceptualSpace {
            gold_sample_size: 60,
            extraction: ExtractionConfig::default(),
        },
        ..Default::default()
    });
    db.load_domain("movies", domain, space, Box::new(crowd))
        .unwrap();
    db.register_attribute("movies", "is_comedy", "Comedy")
        .unwrap();
    db
}

fn bench_pipeline(c: &mut Criterion) {
    let domain = SyntheticDomain::generate(&DomainConfig::movies().scaled(0.1), 4).unwrap();
    let space = crowddb_core::build_space_for_domain(&domain, 16, 10).unwrap();

    c.bench_function("factual_select", |b| {
        let db = make_db(&domain, space.clone());
        b.iter(|| {
            db.execute("SELECT name FROM movies WHERE year < 1990 ORDER BY year LIMIT 20")
                .unwrap()
        })
    });

    let mut group = c.benchmark_group("schema_expansion_end_to_end");
    group.sample_size(10);
    group.bench_function("perceptual_strategy", |b| {
        b.iter(|| {
            let db = make_db(&domain, space.clone());
            db.execute("SELECT item_id FROM movies WHERE is_comedy = true")
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
