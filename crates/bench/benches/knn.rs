//! Criterion bench: nearest-neighbour queries in the perceptual space
//! (the Table 2 operation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{DomainConfig, SyntheticDomain};

fn bench_knn(c: &mut Criterion) {
    let domain = SyntheticDomain::generate(&DomainConfig::movies().scaled(0.5), 3).unwrap();
    let space = crowddb_core::build_space_for_domain(&domain, 50, 10).unwrap();
    let mut group = c.benchmark_group("knn");
    for &k in &[5usize, 20] {
        group.bench_with_input(BenchmarkId::new("nearest_neighbors", k), &k, |b, &k| {
            let mut query = 0u32;
            b.iter(|| {
                query = (query + 17) % space.len() as u32;
                space.nearest_neighbors(query, k).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_knn);
criterion_main!(benches);
