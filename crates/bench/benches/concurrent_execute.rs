//! Criterion bench: concurrent `CrowdDb::execute` throughput.
//!
//! The concurrency refactor's promise is that N threads sharing one
//! database scale read throughput beyond the single-thread baseline:
//! `SELECT`s run under the shared catalog lock and execute in parallel.
//! This bench fixes a total budget of queries per iteration and compares
//! one thread running all of them against 2/4/8 threads splitting them —
//! wall-clock per iteration should drop as threads are added (up to core
//! count), while the cold-expansion cost stays a one-off paid in setup.

use std::thread;

use criterion::{criterion_group, criterion_main, Criterion};
use crowddb_core::{
    build_space_for_domain, CrowdDb, CrowdDbConfig, ExpansionStrategy, ExtractionConfig,
    SimulatedCrowd,
};
use crowdsim::ExperimentRegime;
use datagen::{DomainConfig, SyntheticDomain};

const QUERY: &str = "SELECT item_id FROM movies WHERE is_comedy = true AND popularity > 0.3";
/// Total queries per measured iteration, split across the thread count.
const QUERIES_PER_ITER: usize = 64;

fn warmed_db(domain: &SyntheticDomain) -> CrowdDb {
    let space = build_space_for_domain(domain, 12, 12).unwrap();
    let crowd = SimulatedCrowd::new(domain, ExperimentRegime::TrustedWorkers, 17);
    let db = CrowdDb::new(CrowdDbConfig {
        strategy: ExpansionStrategy::PerceptualSpace {
            gold_sample_size: 60,
            extraction: ExtractionConfig::default(),
        },
        ..Default::default()
    });
    db.load_domain("movies", domain, space, Box::new(crowd))
        .unwrap();
    db.register_attribute("movies", "is_comedy", "Comedy")
        .unwrap();
    // Materialize the perceptual column once; the measured iterations are
    // pure concurrent reads.
    db.execute(QUERY).unwrap();
    db
}

fn run_queries(db: &CrowdDb, threads: usize) {
    if threads == 1 {
        for _ in 0..QUERIES_PER_ITER {
            criterion::black_box(db.execute(QUERY).unwrap());
        }
        return;
    }
    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                for _ in 0..QUERIES_PER_ITER / threads {
                    criterion::black_box(db.execute(QUERY).unwrap());
                }
            });
        }
    });
}

fn bench_concurrent_execute(c: &mut Criterion) {
    let domain = SyntheticDomain::generate(&DomainConfig::movies().scaled(0.25), 6).unwrap();
    let db = warmed_db(&domain);

    let mut group = c.benchmark_group("concurrent_execute");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(
            format!("{QUERIES_PER_ITER}_queries_{threads}_threads"),
            |b| {
                b.iter(|| run_queries(&db, threads));
            },
        );
    }

    // The coalescing path: M threads all forcing the same cold expansion.
    // Every iteration builds a fresh database (cold cache, missing column)
    // and lets 4 threads race; the in-flight registry must collapse the
    // race onto one crowd round, so this approaches the single-thread cold
    // cost instead of quadrupling it.  Compare against the *independent*
    // baseline below (what 4 uncoordinated queries would pay: 4 rounds,
    // 4 extractions) — the gap is the coalescing win and shows up even on
    // a single-core machine, where the thread-scaling numbers above are
    // capped at parity.
    let space = build_space_for_domain(&domain, 12, 12).unwrap();
    let make_cold_db = || {
        let crowd = SimulatedCrowd::new(&domain, ExperimentRegime::TrustedWorkers, 17);
        let db = CrowdDb::new(CrowdDbConfig {
            strategy: ExpansionStrategy::PerceptualSpace {
                gold_sample_size: 60,
                extraction: ExtractionConfig::default(),
            },
            ..Default::default()
        });
        db.load_domain("movies", &domain, space.clone(), Box::new(crowd))
            .unwrap();
        db.register_attribute("movies", "is_comedy", "Comedy")
            .unwrap();
        db
    };
    group.bench_function("cold_expansion_4_threads_coalesced", |b| {
        b.iter(|| {
            let db = make_cold_db();
            thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| db.execute(QUERY).unwrap());
                }
            });
            assert_eq!(db.inflight_stats().owned, 1, "one crowd round total");
            db
        });
    });
    group.bench_function("cold_expansion_4_threads_independent", |b| {
        b.iter(|| {
            // Four databases = four uncoordinated queries: every thread
            // pays its own crowd round and trains its own extractor.
            let dbs: Vec<CrowdDb> = (0..4).map(|_| make_cold_db()).collect();
            thread::scope(|scope| {
                for db in &dbs {
                    scope.spawn(move || db.execute(QUERY).unwrap());
                }
            });
            dbs
        });
    });
    group.finish();
}

criterion_group!(benches, bench_concurrent_execute);
criterion_main!(benches);
