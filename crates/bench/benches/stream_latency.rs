//! Criterion bench: anytime-query latency — time-to-first-row vs
//! time-to-complete, streaming vs blocking, `Full` vs `BestEffort`.
//!
//! The streaming API's whole promise is that the first answer arrives
//! while the crowd is still working.  Besides the criterion timings, the
//! run emits `BENCH_stream.json` at the workspace root with the measured
//! milliseconds per path on the cold-expansion workload — the latency axis
//! criterion's per-iteration means do not narrate.
//!
//! Run with `cargo bench -p bench --bench stream_latency`; pass `-- --test`
//! for the CI smoke mode (one sample per benchmark, same JSON).

use std::path::PathBuf;
use std::time::Instant;

use criterion::Criterion;
use crowddb_core::{
    build_space_for_domain, CrowdDb, CrowdDbConfig, ExpansionStrategy, QueryEvent, SimulatedCrowd,
};
use crowdsim::ExperimentRegime;
use datagen::{DomainConfig, SyntheticDomain};
use perceptual::PerceptualSpace;

const QUERY: &str = "SELECT item_id, is_comedy FROM movies";

fn make_db(domain: &SyntheticDomain, space: PerceptualSpace) -> CrowdDb {
    let crowd = SimulatedCrowd::new(domain, ExperimentRegime::TrustedWorkers, 17);
    // Direct crowd-sourcing judges every item, making the acquisition the
    // dominant cost the snapshot gets ahead of.
    let db = CrowdDb::new(CrowdDbConfig {
        strategy: ExpansionStrategy::DirectCrowd,
        ..Default::default()
    });
    db.load_domain("movies", domain, space, Box::new(crowd))
        .unwrap();
    db.register_attribute("movies", "is_comedy", "Comedy")
        .unwrap();
    db
}

/// One cold streaming pass: milliseconds to the snapshot (first rows in
/// hand) and to completion.
fn measure_stream(db: &CrowdDb, budget: Option<f64>) -> (f64, f64) {
    let start = Instant::now();
    let builder = db.query(QUERY);
    let builder = match budget {
        Some(dollars) => builder.budget(dollars),
        None => builder,
    };
    let mut stream = builder.stream();
    let mut first_row_ms = None;
    for event in &mut stream {
        if first_row_ms.is_none() {
            if let QueryEvent::Snapshot(rows) = &event {
                assert!(!rows.rows.is_empty(), "the snapshot must carry rows");
                first_row_ms = Some(start.elapsed().as_secs_f64() * 1e3);
            }
        }
    }
    let complete_ms = start.elapsed().as_secs_f64() * 1e3;
    stream.wait().unwrap();
    (first_row_ms.expect("no snapshot arrived"), complete_ms)
}

/// One cold blocking pass: milliseconds to the full answer, plus the
/// deterministic outcome facts (crowd dollars, missing cells) the
/// regression guard compares against its committed baseline.
fn measure_blocking(db: &CrowdDb, budget: Option<f64>) -> (f64, f64, usize) {
    let start = Instant::now();
    let builder = db.query(QUERY);
    let builder = match budget {
        Some(dollars) => builder.budget(dollars),
        None => builder,
    };
    let outcome = builder.run().unwrap();
    let ms = start.elapsed().as_secs_f64() * 1e3;
    let missing_cells = outcome.rows().map(|r| r.missing_cells()).unwrap_or(0);
    (ms, outcome.crowd_cost, missing_cells)
}

struct ModeLatency {
    first_row_ms: f64,
    stream_complete_ms: f64,
    blocking_complete_ms: f64,
    cost_dollars: f64,
    missing_cells: usize,
}

fn measure_mode(
    domain: &SyntheticDomain,
    space: &PerceptualSpace,
    budget: Option<f64>,
) -> ModeLatency {
    let (first_row_ms, stream_complete_ms) =
        measure_stream(&make_db(domain, space.clone()), budget);
    let (blocking_complete_ms, cost_dollars, missing_cells) =
        measure_blocking(&make_db(domain, space.clone()), budget);
    ModeLatency {
        first_row_ms,
        stream_complete_ms,
        blocking_complete_ms,
        cost_dollars,
        missing_cells,
    }
}

fn write_report(items: usize, full: &ModeLatency, best_effort: &ModeLatency, budget: f64) {
    // CARGO_MANIFEST_DIR is crates/bench; the report belongs at the
    // workspace root regardless of where cargo runs the bench binary.
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path.push("BENCH_stream.json");
    // Key names are globally unique (not nested-scoped) so the flat field
    // extraction in check_bench_regression stays unambiguous.
    let json = format!(
        "{{\n  \"bench\": \"stream_latency\",\n  \"items\": {items},\n  \"full\": {{\n    \
         \"first_row_ms\": {:.3},\n    \"stream_complete_ms\": {:.3},\n    \
         \"blocking_complete_ms\": {:.3},\n    \"full_cost_dollars\": {:.4},\n    \
         \"full_missing_cells\": {}\n  }},\n  \"best_effort\": {{\n    \
         \"budget_dollars\": {budget:.4},\n    \"first_row_ms\": {:.3},\n    \
         \"stream_complete_ms\": {:.3},\n    \"blocking_complete_ms\": {:.3},\n    \
         \"best_effort_cost_dollars\": {:.4},\n    \"best_effort_missing_cells\": {}\n  }}\n}}\n",
        full.first_row_ms,
        full.stream_complete_ms,
        full.blocking_complete_ms,
        full.cost_dollars,
        full.missing_cells,
        best_effort.first_row_ms,
        best_effort.stream_complete_ms,
        best_effort.blocking_complete_ms,
        best_effort.cost_dollars,
        best_effort.missing_cells,
    );
    std::fs::write(&path, json).expect("write BENCH_stream.json");
    println!("wrote {}", path.display());
}

fn bench_stream_latency(
    c: &mut Criterion,
    domain: &SyntheticDomain,
    space: &PerceptualSpace,
    budget: f64,
) {
    let mut group = c.benchmark_group("stream_latency");
    group.sample_size(10);

    // Cold full expansion: the whole pipeline, blocking.
    group.bench_function("blocking_full_cold", |b| {
        b.iter(|| make_db(domain, space.clone()).query(QUERY).run().unwrap())
    });

    // Cold full expansion via the stream: time to the snapshot only — the
    // latency an anytime consumer actually waits for rows.
    group.bench_function("stream_first_row_full_cold", |b| {
        b.iter(|| {
            let db = make_db(domain, space.clone());
            let mut stream = db.query(QUERY).stream();
            let first = stream
                .find(|event| matches!(event, QueryEvent::Snapshot(_)))
                .expect("no snapshot");
            // Drain off-the-clock work is unavoidable inside iter; the
            // timed section above still dominates by the stream setup.
            stream.wait().unwrap();
            first
        })
    });

    // Budgeted best-effort, blocking, for the policy-latency comparison.
    group.bench_function("blocking_best_effort_cold", |b| {
        b.iter(|| {
            make_db(domain, space.clone())
                .query(QUERY)
                .budget(budget)
                .run()
                .unwrap()
        })
    });

    group.finish();
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    // Full-size movie domain (2 000 items): with direct crowd-sourcing the
    // acquisition simulation dominates wall-clock, which is the regime the
    // anytime API exists for (a real crowd takes minutes, not the
    // simulator's milliseconds — the *ratio* is what the bench tracks).
    let domain = SyntheticDomain::generate(&DomainConfig::movies(), 6).unwrap();
    let space = build_space_for_domain(&domain, 8, 10).unwrap();
    // A half-coverage budget under trusted-worker pricing.
    let half = domain.items().len() / 2;
    let budget = ExperimentRegime::TrustedWorkers
        .hit_config(half)
        .total_cost(half);

    let full = measure_mode(&domain, &space, None);
    let best_effort = measure_mode(&domain, &space, Some(budget));
    // The acceptance bar: on the cold-expansion workload the first rows
    // arrive materially before a blocking query would have returned.
    assert!(
        full.first_row_ms * 2.0 < full.blocking_complete_ms,
        "first row ({:.3} ms) not materially below blocking completion ({:.3} ms)",
        full.first_row_ms,
        full.blocking_complete_ms
    );
    write_report(domain.items().len(), &full, &best_effort, budget);

    let mut criterion = Criterion::default();
    if smoke {
        // CI smoke mode: compile-and-exercise the streaming path, one
        // sample per benchmark, no timing fidelity intended.
        let mut group = criterion.benchmark_group("stream_latency_smoke");
        group.sample_size(1);
        group.bench_function("smoke", |b| {
            b.iter(|| measure_stream(&make_db(&domain, space.clone()), None))
        });
        group.finish();
        return;
    }
    bench_stream_latency(&mut criterion, &domain, &space, budget);
}
