//! Criterion bench: SVM training and batch classification.
//!
//! Section 4.2 reports ~0.5 s to retrain the SVM during a running crowd task
//! and ~3 s for a full Table 3 classification run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowddb_core::{extract_binary_attribute, ExtractionConfig};
use datagen::{DomainConfig, SyntheticDomain};
use mlkit::LabeledDataset;

fn bench_svm(c: &mut Criterion) {
    let domain = SyntheticDomain::generate(&DomainConfig::movies().scaled(0.25), 2).unwrap();
    let space = crowddb_core::build_space_for_domain(&domain, 24, 15).unwrap();
    let labels = domain.labels_for_category(0);
    let dataset = LabeledDataset::new(space.all_coordinates().to_vec(), labels.clone()).unwrap();

    let mut group = c.benchmark_group("svm_train_and_classify_all");
    group.sample_size(10);
    for &n in &[10usize, 40, 100] {
        let sample = dataset.balanced_sample(n, 3).unwrap();
        let labeled: Vec<(u32, bool)> = sample
            .train_indices
            .iter()
            .map(|&i| (i as u32, labels[i]))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &labeled, |b, labeled| {
            b.iter(|| {
                extract_binary_attribute(&space, labeled, &ExtractionConfig::default()).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_svm);
criterion_main!(benches);
