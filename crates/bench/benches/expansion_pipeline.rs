//! Criterion bench: the plan → acquire → materialize expansion pipeline.
//!
//! Compares cold execution of a two-attribute query (one planning round,
//! one batched crowd dispatch, two extractor trainings) against cache-warm
//! re-expansion (every judgment served by the `JudgmentCache`, zero crowd
//! dispatch), so future PRs have a perf baseline for the hot path.

use criterion::{criterion_group, criterion_main, Criterion};
use crowddb_core::{
    build_space_for_domain, CrowdDb, CrowdDbConfig, ExpansionStrategy, ExtractionConfig,
    SimulatedCrowd,
};
use crowdsim::ExperimentRegime;
use datagen::{DomainConfig, SyntheticDomain};
use perceptual::PerceptualSpace;

const QUERY: &str = "SELECT item_id FROM movies WHERE is_comedy = true AND is_other = false";

fn make_db(domain: &SyntheticDomain, space: PerceptualSpace, second: &str) -> CrowdDb {
    let crowd = SimulatedCrowd::new(domain, ExperimentRegime::TrustedWorkers, 17);
    let db = CrowdDb::new(CrowdDbConfig {
        strategy: ExpansionStrategy::PerceptualSpace {
            gold_sample_size: 60,
            extraction: ExtractionConfig::default(),
        },
        ..Default::default()
    });
    db.load_domain("movies", domain, space, Box::new(crowd))
        .unwrap();
    db.register_attribute("movies", "is_comedy", "Comedy")
        .unwrap();
    db.register_attribute("movies", "is_other", second).unwrap();
    db
}

fn bench_expansion_pipeline(c: &mut Criterion) {
    let domain = SyntheticDomain::generate(&DomainConfig::movies().scaled(0.1), 6).unwrap();
    let space = build_space_for_domain(&domain, 16, 12).unwrap();
    let second = domain.category_names()[1].clone();

    let mut group = c.benchmark_group("expansion_pipeline");
    group.sample_size(10);

    // Cold: plan, one batched crowd round, extraction, materialization.
    group.bench_function("two_attribute_query_cold", |b| {
        b.iter(|| {
            let db = make_db(&domain, space.clone(), &second);
            db.execute(QUERY).unwrap()
        })
    });

    // Cache-warm: the same two attributes re-expanded with every judgment
    // served from the cache — no crowd dispatch, extraction only.
    group.bench_function("two_attribute_reexpansion_warm", |b| {
        let db = make_db(&domain, space.clone(), &second);
        db.execute(QUERY).unwrap();
        b.iter(|| {
            let reports = db
                .expand_columns("movies", &["is_comedy".into(), "is_other".into()])
                .unwrap();
            assert_eq!(
                reports.iter().map(|r| r.judgments_collected).sum::<usize>(),
                0
            );
            reports
        })
    });

    // Steady state: the columns exist, the query is a plain scan — the
    // pipeline must add zero overhead to factual execution.
    group.bench_function("materialized_query_steady_state", |b| {
        let db = make_db(&domain, space.clone(), &second);
        db.execute(QUERY).unwrap();
        b.iter(|| db.execute(QUERY).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_expansion_pipeline);
criterion_main!(benches);
