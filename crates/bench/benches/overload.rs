//! Criterion bench: admission control under overload — graceful
//! degradation for a dollar-rate tenant, hard-cap shedding for a
//! concurrency-capped tenant, and the latency of stored-only queries
//! while the engine is saturated.
//!
//! Overload is made deterministic the same way the admission tests do
//! it: a gate parks the crowd dispatch so a tenant's single slot stays
//! pinned while shed attempts pile up, and the dollar window is an hour
//! no bench run outlives.  The run emits `BENCH_overload.json` at the
//! workspace root whose deterministic fields — admitted / degraded /
//! shed counts and the dollars the limiter charged — are guarded by
//! `check_bench_regression` against `ci/BENCH_overload.baseline.json`.
//! The wall-clock fields (`*_ms`) are narration only.
//!
//! Run with `cargo bench -p bench --bench overload`; pass `-- --test`
//! for the CI smoke mode (one sample per benchmark, same JSON).

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use criterion::Criterion;
use crowddb_core::{
    build_space_for_domain, AttributeRequest, CrowdDb, CrowdDbConfig, CrowdDbError, CrowdSource,
    ExpansionMode, ExpansionStrategy, Limiter, LimiterConfig, SimulatedCrowd, TenantLimits,
};
use crowdsim::{BatchCrowdRun, CrowdRun, ExperimentRegime};
use datagen::{DomainConfig, SyntheticDomain};

const COMEDY: &str = "SELECT item_id, is_comedy FROM movies WHERE is_comedy = true";
const HORROR: &str = "SELECT item_id, is_horror FROM movies WHERE is_horror = true";
const STORED: &str = "SELECT name FROM movies LIMIT 5";

/// Degraded queries issued by the over-rate tenant after its window blows.
const DEGRADED_QUERIES: usize = 8;
/// Shed attempts issued by the capped tenant while its slot is pinned.
const SHED_ATTEMPTS: usize = 5;
/// Stored-only queries timed while the engine is saturated (for the p99).
const STORED_SAMPLES: usize = 64;

/// A gate the bench closes while queries pile up behind the crowd
/// dispatch, making overload deterministic instead of timing-based.
struct Gate {
    open: Mutex<bool>,
    signal: Condvar,
}

impl Gate {
    fn new_open() -> Self {
        Gate {
            open: Mutex::new(true),
            signal: Condvar::new(),
        }
    }

    fn close(&self) {
        *self.open.lock().unwrap() = false;
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.signal.notify_all();
    }

    fn wait_open(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.signal.wait(open).unwrap();
        }
    }
}

/// Wraps a [`SimulatedCrowd`], counting rounds and parking each dispatch
/// on the gate while it is closed.
struct GatedCrowd {
    inner: SimulatedCrowd,
    batch_calls: Arc<AtomicUsize>,
    gate: Arc<Gate>,
}

impl CrowdSource for GatedCrowd {
    fn collect(
        &mut self,
        items: &[u32],
        attribute: &str,
        seed: u64,
    ) -> Result<CrowdRun, CrowdDbError> {
        self.inner.collect(items, attribute, seed)
    }

    fn collect_batch(
        &mut self,
        requests: &[AttributeRequest],
        seed: u64,
    ) -> Result<BatchCrowdRun, CrowdDbError> {
        self.batch_calls.fetch_add(1, Ordering::SeqCst);
        self.gate.wait_open();
        self.inner.collect_batch(requests, seed)
    }

    fn describe(&self) -> String {
        self.inner.describe()
    }
}

struct Setup {
    db: Arc<CrowdDb>,
    gate: Arc<Gate>,
    batch_calls: Arc<AtomicUsize>,
    items: usize,
}

/// A fresh engine with two throttled tenants: `meter` is dollar-rate
/// limited (one-cent window the first query blows), `flood` holds a hard
/// concurrency cap of 1.
fn setup() -> Setup {
    let domain = SyntheticDomain::generate(&DomainConfig::movies().scaled(0.1), 777).unwrap();
    let space = build_space_for_domain(&domain, 10, 15).unwrap();
    let items = domain.items().len();
    let gate = Arc::new(Gate::new_open());
    let batch_calls = Arc::new(AtomicUsize::new(0));
    let crowd = GatedCrowd {
        inner: SimulatedCrowd::new(&domain, ExperimentRegime::TrustedWorkers, 23),
        batch_calls: batch_calls.clone(),
        gate: gate.clone(),
    };
    let db = Arc::new(CrowdDb::new(CrowdDbConfig {
        strategy: ExpansionStrategy::DirectCrowd,
        ..Default::default()
    }));
    db.load_domain("movies", &domain, space, Box::new(crowd))
        .unwrap();
    db.register_attribute("movies", "is_comedy", "Comedy")
        .unwrap();
    db.register_attribute("movies", "is_horror", "Horror")
        .unwrap();
    db.set_limiter(Limiter::new(
        LimiterConfig::new()
            .tenant(
                "meter",
                TenantLimits::unlimited().dollar_rate(0.01, Duration::from_secs(3600)),
            )
            .tenant("flood", TenantLimits::unlimited().max_concurrent(1)),
    ));
    Setup {
        db,
        gate,
        batch_calls,
        items,
    }
}

struct OverloadRun {
    items: usize,
    admitted: usize,
    degraded: usize,
    shed: usize,
    dollars_charged: f64,
    full_cost_dollars: f64,
    degraded_cost_dollars: f64,
    full_wall_ms: f64,
    degraded_wall_ms: f64,
    shed_wall_ms: f64,
    stored_p99_ms: f64,
}

/// One full overload pass: a full-fidelity query blows the `meter`
/// tenant's dollar window, its next queries degrade to `BestEffort` for
/// free, the `flood` tenant's pinned slot sheds further attempts with the
/// typed error, and stored-only queries are timed while the engine is
/// saturated.
fn measure() -> OverloadRun {
    let s = setup();

    // Phase 1 — full fidelity: the window is empty, real crowd spend.
    let start = Instant::now();
    let full = s.db.query(COMEDY).tenant("meter").run().unwrap();
    let full_wall_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(
        full.crowd_cost > 0.01,
        "first query must blow the one-cent window, cost {}",
        full.crowd_cost
    );
    assert_eq!(s.batch_calls.load(Ordering::SeqCst), 1);

    // Phase 2 — graceful degradation: the window is blown, so every
    // further `meter` query runs at BestEffort with a zero budget cap —
    // succeeding from stored cells, dispatching no crowd round.
    let start = Instant::now();
    let mut degraded_cost_dollars = 0.0;
    for _ in 0..DEGRADED_QUERIES {
        let outcome = s.db.query(HORROR).tenant("meter").run().unwrap();
        assert_eq!(outcome.policy.mode, ExpansionMode::BestEffort);
        degraded_cost_dollars += outcome.crowd_cost;
    }
    let degraded_wall_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(s.batch_calls.load(Ordering::SeqCst), 1, "no extra rounds");

    // Phase 3 — hard-cap shedding: pin the `flood` tenant's one slot
    // inside a gated crowd round, then pile shed attempts against it.
    s.gate.close();
    let pinned = s.db.query(HORROR).tenant("flood").stream();
    let deadline = Instant::now() + Duration::from_secs(30);
    while s.batch_calls.load(Ordering::SeqCst) < 2 {
        assert!(Instant::now() < deadline, "pinned round never started");
        std::thread::sleep(Duration::from_millis(2));
    }
    let start = Instant::now();
    for _ in 0..SHED_ATTEMPTS {
        match s.db.query(COMEDY).tenant("flood").run() {
            Err(CrowdDbError::Overloaded { tenant, .. }) => assert_eq!(tenant, "flood"),
            other => panic!("expected Overloaded, got {other:?}"),
        }
    }
    let shed_wall_ms = start.elapsed().as_secs_f64() * 1e3;

    // Phase 4 — stored-only latency under saturation: the crowd round is
    // still parked, yet stored queries answer immediately.
    let mut latencies_ms: Vec<f64> = (0..STORED_SAMPLES)
        .map(|_| {
            let start = Instant::now();
            let rows = s.db.execute(STORED).unwrap();
            assert!(!rows.rows.is_empty());
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let stored_p99_ms = latencies_ms[(STORED_SAMPLES * 99) / 100 - 1];

    // Release the slot; the pinned query finishes and pays the crowd.
    s.gate.open();
    let pinned = pinned.wait().unwrap();
    assert!(pinned.crowd_cost > 0.0);

    let stats = s.db.limiter().unwrap().stats();
    assert_eq!(stats.degraded as usize, DEGRADED_QUERIES);
    assert_eq!(stats.shed as usize, SHED_ATTEMPTS);
    let invoiced = full.crowd_cost + pinned.crowd_cost;
    assert!(
        (stats.dollars_charged - invoiced).abs() < 1e-9,
        "limiter accounting drifted: charged ${} but the crowd invoiced ${invoiced}",
        stats.dollars_charged
    );

    OverloadRun {
        items: s.items,
        admitted: stats.admitted as usize,
        degraded: stats.degraded as usize,
        shed: stats.shed as usize,
        dollars_charged: stats.dollars_charged,
        full_cost_dollars: full.crowd_cost,
        degraded_cost_dollars,
        full_wall_ms,
        degraded_wall_ms,
        shed_wall_ms,
        stored_p99_ms,
    }
}

fn write_report(run: &OverloadRun) {
    // CARGO_MANIFEST_DIR is crates/bench; the report belongs at the
    // workspace root regardless of where cargo runs the bench binary.
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path.push("BENCH_overload.json");
    // Key names are globally unique (not nested-scoped) so the flat field
    // extraction in check_bench_regression stays unambiguous.
    let json = format!(
        "{{\n  \"bench\": \"overload\",\n  \"items\": {},\n  \
         \"overload_admitted\": {},\n  \"overload_degraded\": {},\n  \
         \"overload_shed\": {},\n  \"overload_dollars_charged\": {:.4},\n  \
         \"overload_full_cost_dollars\": {:.4},\n  \
         \"overload_degraded_cost_dollars\": {:.4},\n  \
         \"full_wall_ms\": {:.3},\n  \"degraded_wall_ms\": {:.3},\n  \
         \"shed_wall_ms\": {:.3},\n  \"stored_p99_ms\": {:.3}\n}}\n",
        run.items,
        run.admitted,
        run.degraded,
        run.shed,
        run.dollars_charged,
        run.full_cost_dollars,
        run.degraded_cost_dollars,
        run.full_wall_ms,
        run.degraded_wall_ms,
        run.shed_wall_ms,
        run.stored_p99_ms,
    );
    std::fs::write(&path, json).expect("write BENCH_overload.json");
    println!("wrote {}", path.display());
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");

    let run = measure();
    // The acceptance bar: soft pressure degraded every windowed query for
    // free, only the hard cap shed, and the limiter's invoice matches the
    // crowd's.
    assert_eq!(run.degraded, DEGRADED_QUERIES, "degradation miscounted");
    assert_eq!(run.shed, SHED_ATTEMPTS, "shedding miscounted");
    assert_eq!(run.degraded_cost_dollars, 0.0, "degraded queries paid");
    write_report(&run);

    let mut criterion = Criterion::default();
    let mut group = criterion.benchmark_group(if smoke { "overload_smoke" } else { "overload" });
    group.sample_size(10);
    if smoke {
        // CI smoke mode: the measured pass above already exercised the
        // whole admission pipeline; one degraded-admission round trip
        // keeps criterion happy.
        group.bench_function("degraded_admission", |b| {
            let s = setup();
            s.db.query(COMEDY).tenant("meter").run().unwrap();
            b.iter(|| s.db.query(HORROR).tenant("meter").run().unwrap());
        });
        group.finish();
        return;
    }

    // Full mode: the degraded fast path (admission + stored-only answer)
    // and the stored-query path under a pinned crowd round.
    group.bench_function("degraded_admission", |b| {
        let s = setup();
        s.db.query(COMEDY).tenant("meter").run().unwrap();
        b.iter(|| s.db.query(HORROR).tenant("meter").run().unwrap());
    });
    group.bench_function("stored_query_under_saturation", |b| {
        let s = setup();
        s.db.query(COMEDY).tenant("meter").run().unwrap();
        s.gate.close();
        let pinned = s.db.query(HORROR).tenant("flood").stream();
        while s.batch_calls.load(Ordering::SeqCst) < 2 {
            std::thread::sleep(Duration::from_millis(2));
        }
        b.iter(|| s.db.execute(STORED).unwrap());
        s.gate.open();
        pinned.wait().unwrap();
    });
    group.finish();
}
