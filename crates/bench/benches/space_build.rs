//! Criterion bench: building the perceptual space (Section 4.2 reports
//! ~2 hours for 103M ratings on a notebook; here we measure SGD epochs per
//! second on the synthetic domain so the scaling is visible).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{DomainConfig, SyntheticDomain};
use perceptual::{EuclideanEmbeddingConfig, EuclideanEmbeddingModel, SvdConfig, SvdModel};

fn bench_space_build(c: &mut Criterion) {
    let domain = SyntheticDomain::generate(&DomainConfig::movies().scaled(0.1), 1).unwrap();
    let mut group = c.benchmark_group("space_build");
    group.sample_size(10);
    for &dims in &[16usize, 50, 100] {
        group.bench_with_input(
            BenchmarkId::new("euclidean_sgd_5_epochs", dims),
            &dims,
            |b, &dims| {
                b.iter(|| {
                    let config = EuclideanEmbeddingConfig {
                        dimensions: dims,
                        epochs: 5,
                        learning_rate: 0.02,
                        ..Default::default()
                    };
                    EuclideanEmbeddingModel::train(domain.ratings(), &config).unwrap()
                })
            },
        );
    }
    group.bench_function("svd_sgd_5_epochs_d50", |b| {
        b.iter(|| {
            let config = SvdConfig {
                dimensions: 50,
                epochs: 5,
                learning_rate: 0.02,
                ..Default::default()
            };
            SvdModel::train(domain.ratings(), &config).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_space_build);
criterion_main!(benches);
