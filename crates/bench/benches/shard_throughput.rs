//! Criterion bench: aggregate throughput of the sharded engine on a
//! four-table read/write/checkpoint mix, plus recovery timings.
//!
//! Four threads each own one of four tables.  Two tables are **hot**:
//! their owner threads loop committing fsynced inserts and take a
//! checkpoint every [`CHECKPOINT_EVERY`] commits.  Two tables are
//! **archives**: seeded with [`ARCHIVE_ROWS`] rows up front, checkpointed
//! once, then never written again — their owner threads scan them and
//! occasionally commit a row to the paired hot table (so all four threads
//! are writers).  This is the shape sharding targets: independent tables
//! making independent progress, with most data cold.
//!
//! The **sharded** scenario runs the engine as shipped: per-table locks,
//! per-table WAL segments, and incremental [`CrowdDb::checkpoint`] calls
//! that skip the clean archives.  The **pre-shard** scenario replays the
//! exact same statements through the engine's previous regime — one
//! catalog-wide `RwLock` (exclusive across every mutation-plus-fsync,
//! shared for reads and checkpoints) emulated by a bench-level global
//! lock, and [`CrowdDb::checkpoint_full`], which re-snapshots every table
//! the way the single-snapshot engine had to.  The speedup therefore
//! combines the two shipped wins: commits on one table no longer stall
//! the other tables, and checkpoints no longer re-serialize cold data.
//!
//! A second scenario exercises partitioning *within* one table: a single
//! giant table of [`GIANT_ROWS`] preloaded rows, hash-partitioned
//! [`PARTITIONS`] ways, with four threads committing single-row inserts
//! whose ids route each writer to its own partition.  The baseline is the
//! identical workload against the same table with one partition — where
//! every commit serializes behind the one partition lock held across its
//! fsync.  Partitioned recovery of the same table is also timed serial
//! vs. parallel (the fan-out is *within* the table here, not across
//! tables).
//!
//! Besides the timings, the run emits `BENCH_shard.json` at the workspace
//! root.  The regression-guarded fields are the deterministic ones — rows
//! written, archive sizes, seeded crowd dollars of a four-table concurrent
//! expansion, its missing-cell count, and the `*_partition` counts of the
//! giant-table scenario; the wall-clock fields (`*_ms`, the speedups) are
//! recorded for the acceptance trail but deliberately not guarded.
//!
//! Run with `cargo bench -p bench --bench shard_throughput`; pass
//! `-- --test` for the CI smoke mode (same JSON, criterion timing loop
//! skipped).

use std::path::PathBuf;
use std::sync::RwLock;
use std::time::{Duration, Instant};

use criterion::Criterion;
use crowddb_core::{
    build_space_for_domain, CheckpointOptions, CrowdDb, CrowdDbConfig, ExpansionStrategy,
    PartitionSpec, SimulatedCrowd, TableOptions,
};
use crowdsim::ExperimentRegime;
use datagen::{DomainConfig, SyntheticDomain};
use relational::{Column, DataType, Schema, Table, Value};

const THREADS: usize = 4;
const TABLES: usize = 4;
/// Of the four tables, the first two are hot (written throughout); the
/// other two are archives (seeded once, then read-mostly).
const HOT_TABLES: usize = 2;
/// Rows seeded into each archive table before timing starts.
const ARCHIVE_ROWS: usize = 2000;
/// Payload width of an archive row's `body` column.
const ARCHIVE_BODY_BYTES: usize = 200;
/// Committed (fsynced) inserts each hot-table writer performs.
const HOT_ROWS_PER_WRITER: usize = 100;
/// A writer takes a checkpoint after this many of its own commits.
const CHECKPOINT_EVERY: usize = 20;
/// Full-table scans each archive reader performs.
const READER_SCANS: usize = 30;
/// Rows each archive reader commits to its paired hot table, spread
/// across its scans — so all four threads are writers.
const READER_INSERTS: usize = 10;

/// Total committed rows across all four threads (a guarded JSON field).
const ROWS_WRITTEN: usize = HOT_TABLES * HOT_ROWS_PER_WRITER + HOT_TABLES * READER_INSERTS;

/// Rows preloaded into the single giant table before its timed phase.
const GIANT_ROWS: usize = 8192;
/// Hash partitions of the partitioned giant-table scenario (the baseline
/// runs the identical table with one partition).
const PARTITIONS: usize = 4;
/// Committed single-row inserts each of the four giant-table writers
/// performs.
const PARTITION_ROWS_PER_WRITER: usize = 50;
/// Each giant-table writer compacts its own partition after this many
/// commits (`CheckpointScope::Partition`) — the partial-checkpoint load
/// the partitioned layout parallelizes and the one-partition baseline
/// serializes at full-table cost.
const PARTITION_CHECKPOINT_EVERY: usize = 10;
/// Total committed rows of the giant-table workload (a guarded field).
const PARTITION_ROWS_WRITTEN: usize = THREADS * PARTITION_ROWS_PER_WRITER;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("crowddb-bench-shard-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Seeds one archive table with `ARCHIVE_ROWS` wide rows using multi-row
/// inserts (a handful of group commits, not one fsync per row).
fn seed_archive(db: &CrowdDb, table: &str) {
    db.execute(&format!(
        "CREATE TABLE {table} (item_id INTEGER, body TEXT)"
    ))
    .unwrap();
    let filler = "x".repeat(ARCHIVE_BODY_BYTES);
    const CHUNK: usize = 250;
    for chunk in 0..ARCHIVE_ROWS / CHUNK {
        let values: Vec<String> = (0..CHUNK)
            .map(|row| format!("({}, '{filler}')", chunk * CHUNK + row))
            .collect();
        db.execute(&format!(
            "INSERT INTO {table} (item_id, body) VALUES {}",
            values.join(", ")
        ))
        .unwrap();
    }
}

/// Runs the four-table workload and returns the wall-clock of the timed
/// phase.  `pre_shard_lock` replays the engine's previous locking regime
/// on the identical statements: `Some` wraps every committed insert in a
/// global exclusive lock (held, like the old catalog lock, across the WAL
/// fsync), every read and checkpoint in a global shared lock, and makes
/// checkpoints full-catalog rewrites ([`CrowdDb::checkpoint_full`]), as
/// the single-snapshot engine's were; `None` lets the sharded engine's
/// own per-table locks and incremental checkpoints govern.
fn timed_workload(pre_shard_lock: Option<&RwLock<()>>, tag: &str) -> Duration {
    let dir = scratch_dir(tag);
    let db = CrowdDb::open(&dir).unwrap();
    for table in 0..HOT_TABLES {
        db.execute(&format!(
            "CREATE TABLE hot_{table} (item_id INTEGER, body TEXT)"
        ))
        .unwrap();
        seed_archive(&db, &format!("archive_{table}"));
    }
    // Establish baseline snapshots so the archives start clean.
    db.checkpoint().unwrap();
    let db_ref = &db;
    let checkpoint = || {
        // The old engine held the catalog lock *shared* across its
        // full-catalog snapshot (readers kept running, writers stalled).
        let _shared = pre_shard_lock.map(|l| l.read().unwrap());
        if pre_shard_lock.is_some() {
            db_ref.checkpoint_full().unwrap();
        } else {
            db_ref.checkpoint().unwrap();
        }
    };
    let started = Instant::now();
    std::thread::scope(|scope| {
        // Hot-table writers: commit, and checkpoint every CHECKPOINT_EVERY.
        for table in 0..HOT_TABLES {
            scope.spawn(move || {
                for row in 0..HOT_ROWS_PER_WRITER {
                    let id = (table * HOT_ROWS_PER_WRITER + row) as u64;
                    {
                        let _exclusive = pre_shard_lock.map(|l| l.write().unwrap());
                        db_ref
                            .execute(&format!(
                                "INSERT INTO hot_{table} (item_id, body) VALUES ({id}, 'w{id}')"
                            ))
                            .unwrap();
                    }
                    if (row + 1) % CHECKPOINT_EVERY == 0 {
                        checkpoint();
                    }
                }
            });
        }
        // Archive readers: scan the archive, occasionally commit a row to
        // the paired hot table.
        for table in 0..HOT_TABLES {
            scope.spawn(move || {
                for scan in 0..READER_SCANS {
                    {
                        let _shared = pre_shard_lock.map(|l| l.read().unwrap());
                        let read = db_ref
                            .execute(&format!(
                                "SELECT item_id, body FROM archive_{table} WHERE item_id >= 0"
                            ))
                            .unwrap();
                        assert_eq!(read.rows.len(), ARCHIVE_ROWS);
                    }
                    if scan % (READER_SCANS / READER_INSERTS) == 0 {
                        let id = (10_000 + table * READER_SCANS + scan) as u64;
                        let _exclusive = pre_shard_lock.map(|l| l.write().unwrap());
                        db_ref
                            .execute(&format!(
                                "INSERT INTO hot_{table} (item_id, body) VALUES ({id}, 'r{id}')"
                            ))
                            .unwrap();
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed();
    let total: usize = (0..HOT_TABLES)
        .map(|table| {
            db.execute(&format!("SELECT item_id FROM hot_{table}"))
                .unwrap()
                .rows
                .len()
        })
        .sum();
    assert_eq!(total, ROWS_WRITTEN);
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    elapsed
}

/// Best-of-N wall clock for one scenario, so a single scheduler hiccup
/// does not masquerade as engine behavior.
fn best_of(runs: usize, pre_shard: bool, tag: &str) -> Duration {
    let global = RwLock::new(());
    (0..runs)
        .map(|run| timed_workload(pre_shard.then_some(&global), &format!("{tag}-{run}")))
        .min()
        .unwrap()
}

/// Opens a fresh database holding one `GIANT_ROWS`-row table named
/// `giant`, hash-partitioned `partitions` ways (1 = the single-partition
/// baseline).  When `checkpoint` is set the table is snapshotted so the
/// timed phase starts from clean segments; left unset, the full creation
/// stays in the WAL for the recovery measurement to replay.
fn open_giant(dir: &PathBuf, partitions: usize, checkpoint: bool) -> CrowdDb {
    let db = CrowdDb::open(dir).unwrap();
    let schema = Schema::new(vec![
        Column::not_null("item_id", DataType::Integer),
        Column::new("body", DataType::Text),
    ])
    .unwrap();
    let mut table = Table::new("giant", schema);
    for i in 0..GIANT_ROWS {
        table
            .insert_row(vec![
                Value::Integer(i as i64),
                Value::Text(format!("row {i}")),
            ])
            .unwrap();
    }
    db.create_table_with(
        TableOptions::new("giant", "item_id").partitions(PartitionSpec::Hash { n: partitions }),
        table,
    )
    .unwrap();
    if checkpoint {
        db.checkpoint().unwrap();
    }
    db
}

/// Fresh ids (beyond the preloaded range) bucketed by the partition the
/// `Hash { PARTITIONS }` spec routes them to, `PARTITION_ROWS_PER_WRITER`
/// per bucket — so each writer thread owns exactly one partition of the
/// partitioned layout (and all writers contend on the one partition of
/// the baseline).
fn routed_insert_ids() -> Vec<Vec<i64>> {
    let spec = PartitionSpec::Hash { n: PARTITIONS };
    let mut buckets: Vec<Vec<i64>> = vec![Vec::new(); PARTITIONS];
    let mut next = GIANT_ROWS as i64;
    while buckets.iter().any(|b| b.len() < PARTITION_ROWS_PER_WRITER) {
        let k = spec.route_value(&Value::Integer(next));
        if buckets[k].len() < PARTITION_ROWS_PER_WRITER {
            buckets[k].push(next);
        }
        next += 1;
    }
    buckets
}

/// Four threads committing single-row inserts into the one giant table,
/// each compacting its own slice every [`PARTITION_CHECKPOINT_EVERY`]
/// commits — wall-clock of the commit phase.  With `partitions ==
/// PARTITIONS` each writer locks and fsyncs only its own partition's
/// segment and its checkpoints snapshot a quarter of the rows, in
/// parallel with the other writers; with one partition every commit
/// serializes behind the same lock-plus-fsync and every checkpoint
/// snapshots all [`GIANT_ROWS`] rows while the other three writers stall.
fn timed_giant_workload(partitions: usize, tag: &str) -> Duration {
    let dir = scratch_dir(tag);
    let db = open_giant(&dir, partitions, true);
    let db_ref = &db;
    let buckets = routed_insert_ids();
    let started = Instant::now();
    std::thread::scope(|scope| {
        for (k, bucket) in buckets.iter().enumerate() {
            let own_partition = if partitions == 1 { 0 } else { k };
            scope.spawn(move || {
                for (row, id) in bucket.iter().enumerate() {
                    db_ref
                        .execute(&format!(
                            "INSERT INTO giant (item_id, body) VALUES ({id}, 'w{id}')"
                        ))
                        .unwrap();
                    if (row + 1) % PARTITION_CHECKPOINT_EVERY == 0 {
                        db_ref
                            .checkpoint_with(CheckpointOptions::partition("giant", own_partition))
                            .unwrap();
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed();
    let total = db.execute("SELECT item_id FROM giant").unwrap().rows.len();
    assert_eq!(total, GIANT_ROWS + PARTITION_ROWS_WRITTEN);
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    elapsed
}

/// Reopen wall-clock of the giant partitioned table with its full
/// creation still in the WAL: recovery fans out across the partitions of
/// this *one* table (serial = 1 worker).
fn measure_partition_recovery(runs: usize) -> (Duration, Duration) {
    let dir = scratch_dir("partition-recovery");
    drop(open_giant(&dir, PARTITIONS, false));
    let reopen = |parallelism: usize| {
        let started = Instant::now();
        let db = CrowdDb::builder()
            .persistent(&dir)
            .recovery_parallelism(parallelism)
            .open()
            .unwrap();
        let elapsed = started.elapsed();
        let stats = db.storage_stats();
        assert_eq!(stats.tables.len(), 1);
        assert_eq!(stats.tables[0].partitions.len(), PARTITIONS);
        elapsed
    };
    let serial = (0..runs).map(|_| reopen(1)).min().unwrap();
    let parallel = (0..runs).map(|_| reopen(PARTITIONS)).min().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    (serial, parallel)
}

/// Reopen wall-clock of a freshly written four-table directory at the
/// given recovery parallelism (serial = 1).
fn measure_recovery(runs: usize) -> (Duration, Duration) {
    let dir = scratch_dir("recovery");
    {
        let db = CrowdDb::open(&dir).unwrap();
        for table in 0..HOT_TABLES {
            db.execute(&format!(
                "CREATE TABLE hot_{table} (item_id INTEGER, body TEXT)"
            ))
            .unwrap();
            seed_archive(&db, &format!("archive_{table}"));
            for row in 0..CHECKPOINT_EVERY {
                db.execute(&format!(
                    "INSERT INTO hot_{table} (item_id, body) VALUES ({row}, 'tail {row}')"
                ))
                .unwrap();
            }
        }
        // No checkpoint: recovery must replay every segment.
    }
    let reopen = |parallelism: usize| {
        let started = Instant::now();
        let db = CrowdDb::builder()
            .persistent(&dir)
            .recovery_parallelism(parallelism)
            .open()
            .unwrap();
        let elapsed = started.elapsed();
        assert_eq!(db.storage_stats().tables.len(), TABLES);
        elapsed
    };
    let serial = (0..runs).map(|_| reopen(1)).min().unwrap();
    let parallel = (0..runs).map(|_| reopen(4)).min().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    (serial, parallel)
}

struct ExpansionCosts {
    dollars: f64,
    missing_cells: usize,
    items_per_table: usize,
}

/// Four concurrent full expansions, one per table, each on its own seeded
/// domain and crowd — the deterministic (machine-independent) output of
/// the sharded engine: total crowd dollars and missing cells.
fn measure_concurrent_expansions() -> ExpansionCosts {
    let db = CrowdDb::new(CrowdDbConfig {
        strategy: ExpansionStrategy::DirectCrowd,
        ..Default::default()
    });
    let mut items_per_table = 0;
    for table in 0..TABLES {
        let domain =
            SyntheticDomain::generate(&DomainConfig::movies().scaled(0.04), 70 + table as u64)
                .unwrap();
        let space = build_space_for_domain(&domain, 8, 10).unwrap();
        let crowd =
            SimulatedCrowd::new(&domain, ExperimentRegime::TrustedWorkers, 7 + table as u64);
        let name = format!("domain_{table}");
        db.load_domain(&name, &domain, space, Box::new(crowd))
            .unwrap();
        db.register_attribute(&name, "is_comedy", "Comedy").unwrap();
        items_per_table = domain.items().len();
    }
    let db_ref = &db;
    let outcomes: Vec<_> = std::thread::scope(|scope| {
        (0..TABLES)
            .map(|table| {
                scope.spawn(move || {
                    db_ref
                        .query(format!("SELECT item_id, is_comedy FROM domain_{table}"))
                        .run()
                        .unwrap()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|handle| handle.join().unwrap())
            .collect()
    });
    let dollars = outcomes.iter().map(|o| o.crowd_cost).sum();
    let missing_cells = outcomes
        .iter()
        .map(|o| o.rows().unwrap().missing_cells())
        .sum();
    ExpansionCosts {
        dollars,
        missing_cells,
        items_per_table,
    }
}

struct Timings {
    sharded: Duration,
    pre_shard: Duration,
    recovery_serial: Duration,
    recovery_parallel: Duration,
    partitioned: Duration,
    single_partition: Duration,
    partition_recovery_serial: Duration,
    partition_recovery_parallel: Duration,
}

fn write_report(costs: &ExpansionCosts, timings: &Timings) {
    // CARGO_MANIFEST_DIR is crates/bench; the report belongs at the
    // workspace root regardless of where cargo runs the bench binary.
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path.push("BENCH_shard.json");
    let speedup = timings.pre_shard.as_secs_f64() / timings.sharded.as_secs_f64();
    let partition_speedup =
        timings.single_partition.as_secs_f64() / timings.partitioned.as_secs_f64();
    let json = format!(
        "{{\n  \"bench\": \"shard_throughput\",\n  \"threads\": {},\n  \
         \"tables\": {},\n  \"rows_written\": {},\n  \
         \"archive_rows_per_table\": {},\n  \
         \"expansion_items_per_table\": {},\n  \
         \"expansion_cost_dollars\": {:.4},\n  \
         \"expansion_missing_cells\": {},\n  \
         \"count_partition\": {},\n  \
         \"giant_rows_partition\": {},\n  \
         \"rows_written_partition\": {},\n  \
         \"sharded_ms\": {:.2},\n  \"pre_shard_ms\": {:.2},\n  \
         \"speedup_sharded_over_pre_shard\": {:.2},\n  \
         \"recovery_serial_ms\": {:.2},\n  \"recovery_parallel_ms\": {:.2},\n  \
         \"partitioned_commit_ms\": {:.2},\n  \
         \"single_partition_commit_ms\": {:.2},\n  \
         \"speedup_partitioned_over_single\": {:.2},\n  \
         \"partition_recovery_serial_ms\": {:.2},\n  \
         \"partition_recovery_parallel_ms\": {:.2}\n}}\n",
        THREADS,
        TABLES,
        ROWS_WRITTEN,
        ARCHIVE_ROWS,
        costs.items_per_table,
        costs.dollars,
        costs.missing_cells,
        PARTITIONS,
        GIANT_ROWS,
        PARTITION_ROWS_WRITTEN,
        timings.sharded.as_secs_f64() * 1e3,
        timings.pre_shard.as_secs_f64() * 1e3,
        speedup,
        timings.recovery_serial.as_secs_f64() * 1e3,
        timings.recovery_parallel.as_secs_f64() * 1e3,
        timings.partitioned.as_secs_f64() * 1e3,
        timings.single_partition.as_secs_f64() * 1e3,
        partition_speedup,
        timings.partition_recovery_serial.as_secs_f64() * 1e3,
        timings.partition_recovery_parallel.as_secs_f64() * 1e3,
    );
    std::fs::write(&path, json).expect("write BENCH_shard.json");
    println!(
        "wrote {} (sharded {:.2} ms, pre-shard {:.2} ms, speedup {speedup:.2}x, \
         recovery serial {:.2} ms / parallel {:.2} ms, giant table partitioned \
         {:.2} ms vs single {:.2} ms = {partition_speedup:.2}x)",
        path.display(),
        timings.sharded.as_secs_f64() * 1e3,
        timings.pre_shard.as_secs_f64() * 1e3,
        timings.recovery_serial.as_secs_f64() * 1e3,
        timings.recovery_parallel.as_secs_f64() * 1e3,
        timings.partitioned.as_secs_f64() * 1e3,
        timings.single_partition.as_secs_f64() * 1e3,
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");

    let costs = measure_concurrent_expansions();
    assert!(
        costs.dollars > 0.0,
        "four cold expansions must pay the crowd"
    );
    // The JSON's timing fields come from a best-of-N manual measurement in
    // both modes, so the report shape never depends on the mode.
    let repetitions = if smoke { 1 } else { 3 };
    let sharded = best_of(repetitions, false, "sharded");
    let pre_shard = best_of(repetitions, true, "pre-shard");
    let (recovery_serial, recovery_parallel) = measure_recovery(repetitions);
    let partitioned = (0..repetitions)
        .map(|run| timed_giant_workload(PARTITIONS, &format!("giant-part-{run}")))
        .min()
        .unwrap();
    let single_partition = (0..repetitions)
        .map(|run| timed_giant_workload(1, &format!("giant-single-{run}")))
        .min()
        .unwrap();
    let (partition_recovery_serial, partition_recovery_parallel) =
        measure_partition_recovery(repetitions);
    write_report(
        &costs,
        &Timings {
            sharded,
            pre_shard,
            recovery_serial,
            recovery_parallel,
            partitioned,
            single_partition,
            partition_recovery_serial,
            partition_recovery_parallel,
        },
    );

    if smoke {
        // CI smoke mode: the workload above already exercised both
        // scenarios once; no timing fidelity intended.
        return;
    }

    let mut criterion = Criterion::default();
    let mut group = criterion.benchmark_group("shard_throughput");
    group.sample_size(10);
    group.bench_function("four_tables_sharded_locks", |b| {
        b.iter(|| timed_workload(None, "crit-sharded"))
    });
    group.bench_function("four_tables_global_lock", |b| {
        let global = RwLock::new(());
        b.iter(|| timed_workload(Some(&global), "crit-global"))
    });
    group.bench_function("giant_table_partitioned", |b| {
        b.iter(|| timed_giant_workload(PARTITIONS, "crit-giant-part"))
    });
    group.bench_function("giant_table_single_partition", |b| {
        b.iter(|| timed_giant_workload(1, "crit-giant-single"))
    });
    group.finish();
}
