//! Criterion bench: the network service layer under concurrent clients —
//! cold coalesced expansion, warm cache-served queries, and ping
//! round-trips, all over real TCP sockets.
//!
//! The service layer's headline is that N clients racing the same
//! expansion buy **one** crowd round.  Besides the criterion timings, the
//! run emits `BENCH_server.json` at the workspace root whose deterministic
//! fields — client count, item count, metered crowd rounds, cold and warm
//! dollars — are guarded by `check_bench_regression` against
//! `ci/BENCH_server.baseline.json`.  The wall-clock fields (`*_ms`,
//! `*_per_s`) are narration only.
//!
//! Run with `cargo bench -p bench --bench server_throughput`; pass
//! `-- --test` for the CI smoke mode (one sample per benchmark, same
//! JSON).

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use criterion::Criterion;
use crowddb_client::RemoteCrowdDb;
use crowddb_core::{
    build_space_for_domain, AttributeRequest, CrowdDb, CrowdDbConfig, CrowdDbError, CrowdSource,
    ExpansionStrategy, SimulatedCrowd,
};
use crowddb_server::{CrowdDbServer, ServerConfig};
use crowdsim::{BatchCrowdRun, CrowdRun, ExperimentRegime};
use datagen::{DomainConfig, SyntheticDomain};

const QUERY: &str = "SELECT item_id, is_comedy FROM movies WHERE is_comedy = true";
const CLIENTS: usize = 4;

/// Wraps the simulated crowd, metering rounds and dollars the way the
/// crowdsourcing platform's own invoice would.
struct MeteredCrowd {
    inner: SimulatedCrowd,
    rounds: Arc<AtomicUsize>,
    dollars: Arc<Mutex<f64>>,
}

impl CrowdSource for MeteredCrowd {
    fn collect(
        &mut self,
        items: &[u32],
        attribute: &str,
        seed: u64,
    ) -> Result<CrowdRun, CrowdDbError> {
        self.inner.collect(items, attribute, seed)
    }

    fn collect_batch(
        &mut self,
        requests: &[AttributeRequest],
        seed: u64,
    ) -> Result<BatchCrowdRun, CrowdDbError> {
        self.rounds.fetch_add(1, Ordering::SeqCst);
        let batch = self.inner.collect_batch(requests, seed)?;
        *self.dollars.lock().unwrap() += batch.total_cost;
        Ok(batch)
    }

    fn describe(&self) -> String {
        self.inner.describe()
    }
}

struct Served {
    server: CrowdDbServer,
    items: usize,
    rounds: Arc<AtomicUsize>,
    dollars: Arc<Mutex<f64>>,
}

fn serve() -> Served {
    let domain = SyntheticDomain::generate(&DomainConfig::movies().scaled(0.2), 91).unwrap();
    let space = build_space_for_domain(&domain, 8, 12).unwrap();
    let rounds = Arc::new(AtomicUsize::new(0));
    let dollars = Arc::new(Mutex::new(0.0));
    let crowd = MeteredCrowd {
        inner: SimulatedCrowd::new(&domain, ExperimentRegime::TrustedWorkers, 29),
        rounds: rounds.clone(),
        dollars: dollars.clone(),
    };
    let items = domain.items().len();
    let db = Arc::new(CrowdDb::new(CrowdDbConfig {
        strategy: ExpansionStrategy::DirectCrowd,
        ..Default::default()
    }));
    db.load_domain("movies", &domain, space, Box::new(crowd))
        .unwrap();
    db.register_attribute("movies", "is_comedy", "Comedy")
        .unwrap();
    let server = CrowdDbServer::bind(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
    Served {
        server,
        items,
        rounds,
        dollars,
    }
}

struct ServerRun {
    items: usize,
    cold_wall_ms: f64,
    cold_cost_dollars: f64,
    crowd_rounds: usize,
    warm_wall_ms: f64,
    warm_cost_dollars: f64,
    ping_per_s: f64,
}

/// One full service-layer pass against a fresh server: N concurrent cold
/// clients (one coalesced round), then a warm rerun (cache, free), then a
/// burst of pings for the frame round-trip rate.
fn measure() -> ServerRun {
    let s = serve();
    let addr = s.server.local_addr();

    let start = Instant::now();
    let cold_cost_dollars: f64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                scope.spawn(move || {
                    let client = RemoteCrowdDb::connect(addr).unwrap();
                    let outcome = client.query(QUERY).run().unwrap();
                    client.close().unwrap();
                    outcome.crowd_cost
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let cold_wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let crowd_rounds = s.rounds.load(Ordering::SeqCst);
    let invoiced = *s.dollars.lock().unwrap();
    assert!(
        (cold_cost_dollars - invoiced).abs() < 1e-9,
        "owner-pays accounting drifted: clients saw ${cold_cost_dollars}, crowd invoiced ${invoiced}"
    );

    let client = RemoteCrowdDb::connect(addr).unwrap();
    let start = Instant::now();
    let warm = client.query(QUERY).run().unwrap();
    let warm_wall_ms = start.elapsed().as_secs_f64() * 1e3;

    const PINGS: usize = 200;
    let start = Instant::now();
    for _ in 0..PINGS {
        client.ping().unwrap();
    }
    let ping_per_s = PINGS as f64 / start.elapsed().as_secs_f64();
    client.close().unwrap();

    ServerRun {
        items: s.items,
        cold_wall_ms,
        cold_cost_dollars,
        crowd_rounds,
        warm_wall_ms,
        warm_cost_dollars: warm.crowd_cost,
        ping_per_s,
    }
}

fn write_report(run: &ServerRun) {
    // CARGO_MANIFEST_DIR is crates/bench; the report belongs at the
    // workspace root regardless of where cargo runs the bench binary.
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path.push("BENCH_server.json");
    // Key names are globally unique (not nested-scoped) so the flat field
    // extraction in check_bench_regression stays unambiguous.
    let json = format!(
        "{{\n  \"bench\": \"server_throughput\",\n  \"clients\": {CLIENTS},\n  \
         \"items\": {},\n  \"server_crowd_rounds\": {},\n  \
         \"server_cold_cost_dollars\": {:.4},\n  \"server_warm_cost_dollars\": {:.4},\n  \
         \"cold_wall_ms\": {:.3},\n  \"warm_wall_ms\": {:.3},\n  \"ping_per_s\": {:.1}\n}}\n",
        run.items,
        run.crowd_rounds,
        run.cold_cost_dollars,
        run.warm_cost_dollars,
        run.cold_wall_ms,
        run.warm_wall_ms,
        run.ping_per_s,
    );
    std::fs::write(&path, json).expect("write BENCH_server.json");
    println!("wrote {}", path.display());
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");

    let run = measure();
    // The acceptance bar, enforced on the real meter: four clients, one
    // crowd round, and the warm rerun answered from cache for free.
    assert_eq!(run.crowd_rounds, 1, "cold clients did not coalesce");
    assert_eq!(run.warm_cost_dollars, 0.0, "warm rerun was not free");
    write_report(&run);

    let mut criterion = Criterion::default();
    let mut group = criterion.benchmark_group(if smoke {
        "server_throughput_smoke"
    } else {
        "server_throughput"
    });
    group.sample_size(10);
    if smoke {
        // CI smoke mode: the measured pass above already exercised the
        // whole service layer; one ping round-trip keeps criterion happy.
        group.bench_function("ping", |b| {
            let s = serve();
            let client = RemoteCrowdDb::connect(s.server.local_addr()).unwrap();
            b.iter(|| client.ping().unwrap());
        });
        group.finish();
        return;
    }

    // Full mode: end-to-end cold coalescing pass per iteration (fresh
    // server, fresh cache), plus warm-path and ping-path timings.
    group.bench_function("cold_coalesced_4_clients", |b| b.iter(measure));
    group.bench_function("warm_remote_query", |b| {
        let s = serve();
        let client = RemoteCrowdDb::connect(s.server.local_addr()).unwrap();
        client.query(QUERY).run().unwrap();
        b.iter(|| client.query(QUERY).run().unwrap());
    });
    group.finish();
}
