//! Kernel functions shared by the SVM family.
//!
//! The paper reports that a non-linear Radial Basis Function kernel works
//! well for extracting perceptual attributes from the space (Section 4.2),
//! with a linear kernel as the natural cheap alternative.

use serde::{Deserialize, Serialize};

use crate::linalg::{dot, squared_distance};

/// A positive-definite kernel over dense feature vectors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Kernel {
    /// The plain dot product `⟨x, y⟩`.
    Linear,
    /// The Gaussian RBF kernel `exp(-γ ‖x − y‖²)`.
    Rbf {
        /// Kernel width γ; larger values make the kernel more local.
        gamma: f64,
    },
    /// Polynomial kernel `(γ ⟨x, y⟩ + c)^degree`.
    Polynomial {
        /// Scale applied to the dot product.
        gamma: f64,
        /// Additive constant.
        coef0: f64,
        /// Polynomial degree (≥ 1).
        degree: u32,
    },
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::Rbf { gamma: 0.1 }
    }
}

impl Kernel {
    /// Evaluates the kernel on a pair of vectors.
    ///
    /// Both vectors must have the same length; this is only checked by a
    /// debug assertion on the hot path.
    #[inline]
    pub fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), y.len());
        match *self {
            Kernel::Linear => dot(x, y),
            Kernel::Rbf { gamma } => (-gamma * squared_distance(x, y)).exp(),
            Kernel::Polynomial {
                gamma,
                coef0,
                degree,
            } => (gamma * dot(x, y) + coef0).powi(degree as i32),
        }
    }

    /// A reasonable default RBF bandwidth for `dim`-dimensional inputs,
    /// mirroring the common `1 / dim` heuristic.
    pub fn rbf_for_dim(dim: usize) -> Kernel {
        Kernel::Rbf {
            gamma: 1.0 / (dim.max(1) as f64),
        }
    }

    /// Returns true when the kernel is guaranteed to produce values in
    /// `[0, 1]` (useful for sanity checks in tests).
    pub fn is_bounded_unit(&self) -> bool {
        matches!(self, Kernel::Rbf { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_kernel_is_dot_product() {
        let k = Kernel::Linear;
        assert_eq!(k.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn rbf_kernel_properties() {
        let k = Kernel::Rbf { gamma: 0.5 };
        // Identical points → 1.
        assert!((k.eval(&[1.0, -2.0], &[1.0, -2.0]) - 1.0).abs() < 1e-12);
        // Symmetric.
        let a = [0.0, 1.0];
        let b = [2.0, -1.0];
        assert!((k.eval(&a, &b) - k.eval(&b, &a)).abs() < 1e-15);
        // Decreases with distance and stays in (0, 1].
        let near = k.eval(&[0.0, 0.0], &[0.1, 0.0]);
        let far = k.eval(&[0.0, 0.0], &[3.0, 0.0]);
        assert!(near > far);
        assert!(far > 0.0 && near <= 1.0);
        assert!(k.is_bounded_unit());
        assert!(!Kernel::Linear.is_bounded_unit());
    }

    #[test]
    fn polynomial_kernel_matches_formula() {
        let k = Kernel::Polynomial {
            gamma: 1.0,
            coef0: 1.0,
            degree: 2,
        };
        // (1*2 + 1)^2 = 9 for x=[1,1], y=[1,1].
        assert_eq!(k.eval(&[1.0, 1.0], &[1.0, 1.0]), 9.0);
    }

    #[test]
    fn rbf_for_dim_heuristic() {
        match Kernel::rbf_for_dim(100) {
            Kernel::Rbf { gamma } => assert!((gamma - 0.01).abs() < 1e-12),
            _ => panic!("expected RBF"),
        }
        // Zero dimension falls back to 1.0 rather than dividing by zero.
        match Kernel::rbf_for_dim(0) {
            Kernel::Rbf { gamma } => assert_eq!(gamma, 1.0),
            _ => panic!("expected RBF"),
        }
    }

    #[test]
    fn default_kernel_is_rbf() {
        assert!(matches!(Kernel::default(), Kernel::Rbf { .. }));
    }
}
