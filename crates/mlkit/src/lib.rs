//! # mlkit — a small, self-contained machine-learning toolkit
//!
//! This crate implements, from scratch, every learning component the paper
//! *"Pushing the Boundaries of Crowd-enabled Databases with Query-driven
//! Schema Expansion"* (VLDB 2012) relies on:
//!
//! * dense [`linalg`] primitives (matrices, QR, truncated SVD via subspace
//!   iteration) used by the LSI baseline,
//! * [`kernel`] functions (linear, RBF) shared by all SVM variants,
//! * a kernel dual-coordinate-descent binary [`svm::SvmClassifier`] with
//!   class weighting, the ε-insensitive [`svm::SvrRegressor`], and a
//!   label-switching transductive [`svm::TsvmClassifier`] (Section 5 of the
//!   paper),
//! * an [`lsi`] pipeline (tokenizer → TF-IDF → truncated SVD) implementing
//!   the "metadata space" baseline of Sections 4.3–4.4,
//! * evaluation [`metrics`] (accuracy, g-mean, precision/recall, Pearson
//!   correlation) used throughout the paper's tables,
//! * [`dataset`] helpers for balanced sampling, splits, and label corruption.
//!
//! The crate has no dependency on the rest of the workspace so that it can be
//! reused (and tested) in isolation.
//!
//! ## Quick example
//!
//! ```
//! use mlkit::{Kernel, SvmClassifier, SvmParams};
//!
//! // Tiny linearly separable problem.
//! let xs = vec![
//!     vec![0.0, 0.0],
//!     vec![0.1, 0.2],
//!     vec![1.0, 1.0],
//!     vec![0.9, 1.1],
//! ];
//! let ys = vec![false, false, true, true];
//! let params = SvmParams { kernel: Kernel::Linear, c: 10.0, ..Default::default() };
//! let model = SvmClassifier::train(&xs, &ys, &params).unwrap();
//! assert!(model.predict(&[1.0, 0.9]));
//! assert!(!model.predict(&[0.05, 0.05]));
//! ```

#![warn(missing_docs)]

pub mod dataset;
pub mod error;
pub mod kernel;
pub mod linalg;
pub mod lsi;
pub mod metrics;
pub mod svm;

pub use dataset::{BalancedSample, LabeledDataset, TrainTestSplit};
pub use error::MlError;
pub use kernel::Kernel;
pub use lsi::{LsiModel, TfIdfVectorizer, Tokenizer};
pub use metrics::{gmean, pearson_correlation, BinaryConfusion};
pub use svm::{SvmClassifier, SvmParams, SvrParams, SvrRegressor, TsvmClassifier, TsvmParams};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, MlError>;
