//! Dataset helpers: labeled feature sets, train/test splits, balanced
//! sampling, and label corruption.
//!
//! The paper's Table 3 experiment draws `n` positive and `n` negative
//! training examples uniformly at random from the reference data and repeats
//! this 20 times ([`BalancedSample`]).  Table 4 corrupts a fraction `x` of
//! the labels by swapping them ([`LabeledDataset::with_swapped_labels`]).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::error::MlError;
use crate::Result;

/// A set of dense feature vectors with binary labels.
#[derive(Debug, Clone, Default)]
pub struct LabeledDataset {
    features: Vec<Vec<f64>>,
    labels: Vec<bool>,
}

impl LabeledDataset {
    /// Creates a dataset from parallel feature / label vectors.
    pub fn new(features: Vec<Vec<f64>>, labels: Vec<bool>) -> Result<Self> {
        if features.len() != labels.len() {
            return Err(MlError::InvalidInput(format!(
                "{} feature vectors but {} labels",
                features.len(),
                labels.len()
            )));
        }
        if let Some(first) = features.first() {
            let dim = first.len();
            if features.iter().any(|f| f.len() != dim) {
                return Err(MlError::InvalidInput(
                    "feature vectors have inconsistent dimensionality".into(),
                ));
            }
        }
        Ok(LabeledDataset { features, labels })
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset holds no examples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Dimensionality of the feature vectors (0 when empty).
    pub fn dim(&self) -> usize {
        self.features.first().map_or(0, |f| f.len())
    }

    /// Borrow the feature vectors.
    pub fn features(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// Borrow the labels.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Indices of all positive examples.
    pub fn positive_indices(&self) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(i, &l)| l.then_some(i))
            .collect()
    }

    /// Indices of all negative examples.
    pub fn negative_indices(&self) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(i, &l)| (!l).then_some(i))
            .collect()
    }

    /// Fraction of positive labels.
    pub fn positive_rate(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().filter(|&&l| l).count() as f64 / self.labels.len() as f64
    }

    /// Builds the sub-dataset addressed by `indices` (cloning features).
    pub fn subset(&self, indices: &[usize]) -> LabeledDataset {
        let features = indices.iter().map(|&i| self.features[i].clone()).collect();
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        LabeledDataset { features, labels }
    }

    /// Returns a copy of the dataset with the labels of a random fraction
    /// `fraction` of the examples swapped (true ↔ false).  This is the label
    /// corruption model behind Table 4 ("x% of all labels are wrong").
    ///
    /// The returned vector lists the indices whose labels were swapped.
    pub fn with_swapped_labels(&self, fraction: f64, seed: u64) -> (LabeledDataset, Vec<usize>) {
        let fraction = fraction.clamp(0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.shuffle(&mut rng);
        let n_swap = ((self.len() as f64) * fraction).round() as usize;
        let swapped: Vec<usize> = indices.into_iter().take(n_swap).collect();
        let mut labels = self.labels.clone();
        for &i in &swapped {
            labels[i] = !labels[i];
        }
        (
            LabeledDataset {
                features: self.features.clone(),
                labels,
            },
            swapped,
        )
    }

    /// Random train/test split; `train_fraction` of the examples (rounded
    /// down, at least one if non-empty) go to the training side.
    pub fn split(&self, train_fraction: f64, seed: u64) -> TrainTestSplit {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.shuffle(&mut rng);
        let n_train = if self.is_empty() {
            0
        } else {
            (((self.len() as f64) * train_fraction) as usize).clamp(1, self.len())
        };
        let (train_idx, test_idx) = indices.split_at(n_train);
        TrainTestSplit {
            train: self.subset(train_idx),
            test: self.subset(test_idx),
        }
    }

    /// Draws a class-balanced sample of `n_per_class` positive and
    /// `n_per_class` negative examples (without replacement).  The remaining
    /// examples form the evaluation set, mirroring the paper's Table 3
    /// protocol.
    pub fn balanced_sample(&self, n_per_class: usize, seed: u64) -> Result<BalancedSample> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pos = self.positive_indices();
        let mut neg = self.negative_indices();
        if pos.len() < n_per_class {
            return Err(MlError::InvalidInput(format!(
                "requested {n_per_class} positive examples but only {} available",
                pos.len()
            )));
        }
        if neg.len() < n_per_class {
            return Err(MlError::InvalidInput(format!(
                "requested {n_per_class} negative examples but only {} available",
                neg.len()
            )));
        }
        pos.shuffle(&mut rng);
        neg.shuffle(&mut rng);
        let mut train_idx: Vec<usize> = pos.iter().take(n_per_class).copied().collect();
        train_idx.extend(neg.iter().take(n_per_class).copied());
        let train_set: std::collections::HashSet<usize> = train_idx.iter().copied().collect();
        let eval_idx: Vec<usize> = (0..self.len()).filter(|i| !train_set.contains(i)).collect();
        Ok(BalancedSample {
            train: self.subset(&train_idx),
            train_indices: train_idx,
            eval: self.subset(&eval_idx),
            eval_indices: eval_idx,
        })
    }
}

/// Result of [`LabeledDataset::split`].
#[derive(Debug, Clone)]
pub struct TrainTestSplit {
    /// Training portion.
    pub train: LabeledDataset,
    /// Held-out portion.
    pub test: LabeledDataset,
}

/// Result of [`LabeledDataset::balanced_sample`]: a small balanced training
/// set plus the remaining evaluation examples, with their original indices.
#[derive(Debug, Clone)]
pub struct BalancedSample {
    /// The `2 n` balanced training examples.
    pub train: LabeledDataset,
    /// Original indices of the training examples.
    pub train_indices: Vec<usize>,
    /// All remaining examples.
    pub eval: LabeledDataset,
    /// Original indices of the evaluation examples.
    pub eval_indices: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize, pos_every: usize) -> LabeledDataset {
        let features: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, (i * i) as f64]).collect();
        let labels: Vec<bool> = (0..n).map(|i| i % pos_every == 0).collect();
        LabeledDataset::new(features, labels).unwrap()
    }

    #[test]
    fn new_validates_inputs() {
        assert!(LabeledDataset::new(vec![vec![1.0]], vec![true, false]).is_err());
        assert!(LabeledDataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![true, false]).is_err());
        let d = LabeledDataset::new(vec![], vec![]).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.dim(), 0);
        assert_eq!(d.positive_rate(), 0.0);
    }

    #[test]
    fn indices_and_rate() {
        let d = toy(10, 2);
        assert_eq!(d.len(), 10);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.positive_indices(), vec![0, 2, 4, 6, 8]);
        assert_eq!(d.negative_indices(), vec![1, 3, 5, 7, 9]);
        assert!((d.positive_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn subset_preserves_alignment() {
        let d = toy(10, 3);
        let s = d.subset(&[0, 3, 5]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.labels(), &[true, true, false]);
        assert_eq!(s.features()[2], vec![5.0, 25.0]);
    }

    #[test]
    fn swapped_labels_swaps_exactly_requested_fraction() {
        let d = toy(100, 4);
        let (corrupted, swapped) = d.with_swapped_labels(0.2, 99);
        assert_eq!(swapped.len(), 20);
        let differing = d
            .labels()
            .iter()
            .zip(corrupted.labels())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(differing, 20);
        // Swapped indices are exactly the differing positions.
        for &i in &swapped {
            assert_ne!(d.labels()[i], corrupted.labels()[i]);
        }
    }

    #[test]
    fn swapped_labels_clamps_fraction() {
        let d = toy(10, 2);
        let (c, swapped) = d.with_swapped_labels(2.0, 1);
        assert_eq!(swapped.len(), 10);
        assert!(d.labels().iter().zip(c.labels()).all(|(a, b)| a != b));
        let (_, none) = d.with_swapped_labels(-1.0, 1);
        assert!(none.is_empty());
    }

    #[test]
    fn split_partitions_all_examples() {
        let d = toy(50, 5);
        let split = d.split(0.7, 7);
        assert_eq!(split.train.len() + split.test.len(), 50);
        assert_eq!(split.train.len(), 35);
    }

    #[test]
    fn balanced_sample_has_exact_class_counts() {
        let d = toy(100, 4); // 25 positives
        let s = d.balanced_sample(10, 3).unwrap();
        assert_eq!(s.train.len(), 20);
        assert_eq!(s.train.positive_indices().len(), 10);
        assert_eq!(s.eval.len(), 80);
        assert_eq!(s.train_indices.len(), 20);
        assert_eq!(s.eval_indices.len(), 80);
        // No overlap between train and eval indices.
        for i in &s.train_indices {
            assert!(!s.eval_indices.contains(i));
        }
    }

    #[test]
    fn balanced_sample_rejects_oversized_requests() {
        let d = toy(20, 4); // 5 positives
        assert!(d.balanced_sample(6, 1).is_err());
        let all_pos = LabeledDataset::new(vec![vec![0.0]; 5], vec![true; 5]).unwrap();
        assert!(all_pos.balanced_sample(1, 1).is_err());
    }

    #[test]
    fn balanced_sample_differs_across_seeds() {
        let d = toy(200, 3);
        let a = d.balanced_sample(10, 1).unwrap();
        let b = d.balanced_sample(10, 2).unwrap();
        assert_ne!(a.train_indices, b.train_indices);
    }
}
