//! Evaluation metrics used in the paper's tables.
//!
//! * Table 1 and Figures 3–4 report plain accuracy / counts of correctly
//!   classified items.
//! * Table 3, 5, 6 report the **g-mean** (geometric mean of sensitivity and
//!   specificity), the standard measure under class imbalance the paper
//!   adopts from He & Garcia (2009).
//! * Table 4 reports **precision / recall** of flagged labels.
//! * Section 4.2 reports a **Pearson correlation** between distances in the
//!   perceptual space and the user consensus.

use serde::{Deserialize, Serialize};

/// A binary confusion matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinaryConfusion {
    /// Positive examples classified as positive.
    pub true_positives: usize,
    /// Negative examples classified as positive.
    pub false_positives: usize,
    /// Negative examples classified as negative.
    pub true_negatives: usize,
    /// Positive examples classified as negative.
    pub false_negatives: usize,
}

impl BinaryConfusion {
    /// Builds a confusion matrix from parallel slices of predictions and
    /// ground-truth labels.  Panics if the slices have different lengths.
    pub fn from_predictions(predicted: &[bool], actual: &[bool]) -> Self {
        assert_eq!(
            predicted.len(),
            actual.len(),
            "prediction and label slices must have equal length"
        );
        let mut c = BinaryConfusion::default();
        for (&p, &a) in predicted.iter().zip(actual.iter()) {
            c.record(p, a);
        }
        c
    }

    /// Records one (prediction, actual) observation.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.true_positives += 1,
            (true, false) => self.false_positives += 1,
            (false, false) => self.true_negatives += 1,
            (false, true) => self.false_negatives += 1,
        }
    }

    /// Total number of observations.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// Fraction of observations classified correctly; 0 when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.true_positives + self.true_negatives) as f64 / total as f64
    }

    /// Sensitivity (true-positive rate / recall on the positive class).
    /// Returns 0 when there are no positive examples.
    pub fn sensitivity(&self) -> f64 {
        let pos = self.true_positives + self.false_negatives;
        if pos == 0 {
            return 0.0;
        }
        self.true_positives as f64 / pos as f64
    }

    /// Specificity (true-negative rate).  Returns 0 when there are no
    /// negative examples.
    pub fn specificity(&self) -> f64 {
        let neg = self.true_negatives + self.false_positives;
        if neg == 0 {
            return 0.0;
        }
        self.true_negatives as f64 / neg as f64
    }

    /// Precision of the positive class.  Returns 0 when nothing was
    /// predicted positive.
    pub fn precision(&self) -> f64 {
        let pred_pos = self.true_positives + self.false_positives;
        if pred_pos == 0 {
            return 0.0;
        }
        self.true_positives as f64 / pred_pos as f64
    }

    /// Recall of the positive class (alias for [`Self::sensitivity`]).
    pub fn recall(&self) -> f64 {
        self.sensitivity()
    }

    /// F1 score of the positive class; 0 when both precision and recall are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }

    /// The g-mean measure: geometric mean of sensitivity and specificity.
    ///
    /// This is the class-imbalance-robust metric used in Tables 3, 5, and 6
    /// of the paper.  A classifier that ignores one of the classes scores 0.
    pub fn gmean(&self) -> f64 {
        (self.sensitivity() * self.specificity()).sqrt()
    }
}

/// Convenience wrapper: computes the g-mean directly from predictions.
pub fn gmean(predicted: &[bool], actual: &[bool]) -> f64 {
    BinaryConfusion::from_predictions(predicted, actual).gmean()
}

/// Plain accuracy of a prediction vector.
pub fn accuracy(predicted: &[bool], actual: &[bool]) -> f64 {
    BinaryConfusion::from_predictions(predicted, actual).accuracy()
}

/// Pearson product-moment correlation coefficient between two samples.
///
/// Returns 0 when either sample has zero variance or when the slices are
/// shorter than two elements.
pub fn pearson_correlation(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "samples must have the same length");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mean_x = xs.iter().sum::<f64>() / n as f64;
    let mean_y = ys.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x <= 0.0 || var_y <= 0.0 {
        return 0.0;
    }
    cov / (var_x.sqrt() * var_y.sqrt())
}

/// Mean and (population) standard deviation of a sample; `(0, 0)` when empty.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt())
}

/// Root mean squared error between predictions and targets.
pub fn rmse(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len());
    if predicted.is_empty() {
        return 0.0;
    }
    let mse = predicted
        .iter()
        .zip(actual.iter())
        .map(|(p, a)| (p - a).powi(2))
        .sum::<f64>()
        / predicted.len() as f64;
    mse.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let pred = [true, true, false, false, true];
        let act = [true, false, false, true, true];
        let c = BinaryConfusion::from_predictions(&pred, &act);
        assert_eq!(c.true_positives, 2);
        assert_eq!(c.false_positives, 1);
        assert_eq!(c.true_negatives, 1);
        assert_eq!(c.false_negatives, 1);
        assert_eq!(c.total(), 5);
        assert!((c.accuracy() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn perfect_classifier_has_gmean_one() {
        let labels = [true, false, true, false];
        let c = BinaryConfusion::from_predictions(&labels, &labels);
        assert_eq!(c.gmean(), 1.0);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
    }

    #[test]
    fn naive_majority_classifier_has_gmean_zero() {
        // This is exactly the paper's "label everything not-Horror" example:
        // high accuracy, zero g-mean.
        let actual: Vec<bool> = (0..100).map(|i| i < 10).collect();
        let predicted = vec![false; 100];
        let c = BinaryConfusion::from_predictions(&predicted, &actual);
        assert!(c.accuracy() >= 0.9);
        assert_eq!(c.gmean(), 0.0);
    }

    #[test]
    fn random_classifier_gmean_near_half() {
        // A deterministic alternating "random" classifier on a balanced-ish
        // set gets sensitivity ≈ specificity ≈ 0.5 → g-mean ≈ 0.5.
        let actual: Vec<bool> = (0..1000).map(|i| i % 3 == 0).collect();
        let predicted: Vec<bool> = (0..1000).map(|i| i % 2 == 0).collect();
        let g = gmean(&predicted, &actual);
        assert!((g - 0.5).abs() < 0.05, "g-mean was {g}");
    }

    #[test]
    fn degenerate_confusions_do_not_divide_by_zero() {
        let c = BinaryConfusion::default();
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.sensitivity(), 0.0);
        assert_eq!(c.specificity(), 0.0);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.gmean(), 0.0);
    }

    #[test]
    fn pearson_on_linear_relation() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        assert!((pearson_correlation(&xs, &ys) - 1.0).abs() < 1e-12);
        let ys_neg: Vec<f64> = xs.iter().map(|x| -2.0 * x).collect();
        assert!((pearson_correlation(&xs, &ys_neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert_eq!(pearson_correlation(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson_correlation(&[1.0, 1.0, 1.0], &[2.0, 3.0, 4.0]), 0.0);
    }

    #[test]
    fn mean_std_basic() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn rmse_basic() {
        assert_eq!(rmse(&[], &[]), 0.0);
        let r = rmse(&[1.0, 2.0, 3.0], &[1.0, 2.0, 5.0]);
        assert!((r - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = BinaryConfusion::from_predictions(&[true], &[true, false]);
    }
}
