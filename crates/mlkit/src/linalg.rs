//! Dense linear-algebra primitives.
//!
//! The LSI "metadata space" baseline of the paper needs a truncated SVD of a
//! (documents × terms) TF-IDF matrix.  Rather than pulling in an external
//! linear-algebra stack, this module provides a compact row-major
//! [`Matrix`] type together with the handful of routines required:
//! matrix products, Gram–Schmidt QR, and a randomized subspace-iteration
//! truncated SVD ([`truncated_svd`]).
//!
//! The implementation favours clarity over peak performance; the matrices
//! involved in the experiments are at most a few tens of thousands of rows by
//! a few thousand columns, which these routines handle in seconds.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::MlError;
use crate::Result;

/// A dense row-major matrix of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MlError::InvalidInput(format!(
                "matrix data length {} does not match {}x{}",
                data.len(),
                rows,
                cols
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of rows.  All rows must share the same
    /// length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(MlError::InvalidInput(
                "matrix needs at least one row".into(),
            ));
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(MlError::InvalidInput(
                "rows have inconsistent lengths".into(),
            ));
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutation.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow a row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow a row as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix–matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(MlError::InvalidInput(format!(
                "cannot multiply {}x{} by {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (j, &b_kj) in b_row.iter().enumerate() {
                    out_row[j] += a_ik * b_kj;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(MlError::InvalidInput(format!(
                "vector length {} does not match matrix with {} columns",
                v.len(),
                self.cols
            )));
        }
        Ok((0..self.rows).map(|i| dot(self.row(i), v)).collect())
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

/// Dot product of two equally-sized slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two equally-sized slices.
#[inline]
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance between two equally-sized slices.
#[inline]
pub fn distance(a: &[f64], b: &[f64]) -> f64 {
    squared_distance(a, b).sqrt()
}

/// In-place scaling of a vector: `a *= s`.
pub fn scale(a: &mut [f64], s: f64) {
    for x in a {
        *x *= s;
    }
}

/// In-place AXPY: `y += alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Thin QR factorization via modified Gram–Schmidt.
///
/// Returns `(Q, R)` with `Q` of the same shape as the input (orthonormal
/// columns) and `R` upper-triangular `cols × cols`.  Columns that become
/// numerically zero are replaced by zero vectors (their `R` diagonal is 0).
pub fn qr_thin(a: &Matrix) -> (Matrix, Matrix) {
    let m = a.rows();
    let n = a.cols();
    let mut q = a.clone();
    let mut r = Matrix::zeros(n, n);
    for j in 0..n {
        // Orthogonalize column j against previous columns (twice for
        // numerical stability — "MGS with reorthogonalization").
        for _ in 0..2 {
            for i in 0..j {
                let mut proj = 0.0;
                for k in 0..m {
                    proj += q.get(k, i) * q.get(k, j);
                }
                r.set(i, j, r.get(i, j) + proj);
                for k in 0..m {
                    let v = q.get(k, j) - proj * q.get(k, i);
                    q.set(k, j, v);
                }
            }
        }
        let mut nrm = 0.0;
        for k in 0..m {
            nrm += q.get(k, j) * q.get(k, j);
        }
        let nrm = nrm.sqrt();
        r.set(j, j, nrm);
        if nrm > 1e-12 {
            for k in 0..m {
                let v = q.get(k, j) / nrm;
                q.set(k, j, v);
            }
        } else {
            for k in 0..m {
                q.set(k, j, 0.0);
            }
        }
    }
    (q, r)
}

/// Result of a truncated singular value decomposition `A ≈ U Σ Vᵀ`.
#[derive(Debug, Clone)]
pub struct TruncatedSvd {
    /// Left singular vectors, `rows × k` (columns are singular vectors).
    pub u: Matrix,
    /// Singular values, length `k`, non-increasing.
    pub singular_values: Vec<f64>,
    /// Right singular vectors, `cols × k`.
    pub v: Matrix,
}

impl TruncatedSvd {
    /// Projects a row vector of the original space (length = `A.cols()`)
    /// into the `k`-dimensional latent space: `x V`.
    pub fn project_row(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.v.rows() {
            return Err(MlError::InvalidInput(format!(
                "vector length {} does not match V with {} rows",
                x.len(),
                self.v.rows()
            )));
        }
        let k = self.v.cols();
        let mut out = vec![0.0; k];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (j, o) in out.iter_mut().enumerate() {
                *o += xi * self.v.get(i, j);
            }
        }
        Ok(out)
    }
}

/// Randomized subspace-iteration truncated SVD.
///
/// Computes the leading `k` singular triplets of `a` using a randomized range
/// finder followed by `n_iter` power iterations (Halko-style).  `k` is capped
/// at `min(rows, cols)`.
pub fn truncated_svd(a: &Matrix, k: usize, n_iter: usize, seed: u64) -> Result<TruncatedSvd> {
    if a.rows() == 0 || a.cols() == 0 {
        return Err(MlError::InvalidInput(
            "cannot decompose an empty matrix".into(),
        ));
    }
    if k == 0 {
        return Err(MlError::InvalidParameter("k must be >= 1".into()));
    }
    let k = k.min(a.rows()).min(a.cols());
    // Oversampling improves accuracy of the leading subspace.
    let p = (k + 8).min(a.rows()).min(a.cols());
    let mut rng = StdRng::seed_from_u64(seed);

    // Random Gaussian test matrix Omega: cols × p.
    let mut omega = Matrix::zeros(a.cols(), p);
    for r in 0..a.cols() {
        for c in 0..p {
            omega.set(r, c, rng.gen::<f64>() * 2.0 - 1.0);
        }
    }

    // Y = A Omega, then power iterations with re-orthogonalization.
    let mut y = a.matmul(&omega)?;
    let (mut q, _) = qr_thin(&y);
    let at = a.transpose();
    for _ in 0..n_iter {
        let z = at.matmul(&q)?;
        let (qz, _) = qr_thin(&z);
        y = a.matmul(&qz)?;
        let (qy, _) = qr_thin(&y);
        q = qy;
    }

    // B = Qᵀ A  (p × cols); SVD of the small Gram matrix B Bᵀ.
    let b = q.transpose().matmul(a)?;
    let bbt = b.matmul(&b.transpose())?;
    let (eigvals, eigvecs) = symmetric_eigen(&bbt, 200, 1e-12)?;

    // Sort eigenpairs by descending eigenvalue.
    let mut order: Vec<usize> = (0..eigvals.len()).collect();
    order.sort_by(|&i, &j| {
        eigvals[j]
            .partial_cmp(&eigvals[i])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut singular_values = Vec::with_capacity(k);
    let mut u = Matrix::zeros(a.rows(), k);
    let mut v = Matrix::zeros(a.cols(), k);

    for (out_idx, &e_idx) in order.iter().take(k).enumerate() {
        let sigma2 = eigvals[e_idx].max(0.0);
        let sigma = sigma2.sqrt();
        singular_values.push(sigma);
        // u_small = eigenvector (length p); U column = Q * u_small
        let mut u_col = vec![0.0; a.rows()];
        for (r, u_val) in u_col.iter_mut().enumerate() {
            let mut s = 0.0;
            for i in 0..q.cols() {
                s += q.get(r, i) * eigvecs.get(i, e_idx);
            }
            *u_val = s;
        }
        for (r, &u_val) in u_col.iter().enumerate() {
            u.set(r, out_idx, u_val);
        }
        // V column = Aᵀ u / sigma
        if sigma > 1e-12 {
            let atu = at.matvec(&u_col)?;
            for (r, &atu_val) in atu.iter().enumerate() {
                v.set(r, out_idx, atu_val / sigma);
            }
        }
    }

    Ok(TruncatedSvd {
        u,
        singular_values,
        v,
    })
}

/// Eigen-decomposition of a small symmetric matrix via the cyclic Jacobi
/// method.  Returns `(eigenvalues, eigenvectors)` with eigenvectors stored as
/// columns.  Intended for the small (≤ a few hundred) matrices that appear
/// inside [`truncated_svd`].
pub fn symmetric_eigen(a: &Matrix, max_sweeps: usize, tol: f64) -> Result<(Vec<f64>, Matrix)> {
    if a.rows() != a.cols() {
        return Err(MlError::InvalidInput(
            "eigen decomposition requires a square matrix".into(),
        ));
    }
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    for _ in 0..max_sweeps {
        // Off-diagonal Frobenius norm.
        let mut off = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    off += m.get(i, j) * m.get(i, j);
                }
            }
        }
        if off.sqrt() < tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/columns p and q.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    let eigvals: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    Ok((eigvals, v))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(1, 2), 0.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).is_ok());
    }

    #[test]
    fn from_rows_validates_consistency() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.get(0, 0), 58.0);
        assert_eq!(c.get(0, 1), 64.0);
        assert_eq!(c.get(1, 0), 139.0);
        assert_eq!(c.get(1, 1), 154.0);
    }

    #[test]
    fn matmul_rejects_mismatched_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let v = a.matvec(&[5.0, 6.0]).unwrap();
        assert_eq!(v, vec![17.0, 39.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!(approx(norm(&[3.0, 4.0]), 5.0, 1e-12));
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert!(approx(distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0, 1e-12));
        let mut v = vec![1.0, 2.0];
        scale(&mut v, 2.0);
        assert_eq!(v, vec![2.0, 4.0]);
        let mut y = vec![1.0, 1.0];
        axpy(3.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![4.0, 7.0]);
    }

    #[test]
    fn qr_produces_orthonormal_columns() {
        let a = Matrix::from_vec(4, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 9.0]).unwrap();
        let (q, r) = qr_thin(&a);
        // Qᵀ Q = I
        let qtq = q.transpose().matmul(&q).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    approx(qtq.get(i, j), expect, 1e-9),
                    "QtQ[{i}][{j}]={}",
                    qtq.get(i, j)
                );
            }
        }
        // Q R = A
        let qr = q.matmul(&r).unwrap();
        for i in 0..4 {
            for j in 0..2 {
                assert!(approx(qr.get(i, j), a.get(i, j), 1e-9));
            }
        }
    }

    #[test]
    fn jacobi_eigen_recovers_known_spectrum() {
        // Symmetric matrix with known eigenvalues 3 and 1.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let (mut vals, _) = symmetric_eigen(&a, 100, 1e-14).unwrap();
        vals.sort_by(|x, y| y.partial_cmp(x).unwrap());
        assert!(approx(vals[0], 3.0, 1e-9));
        assert!(approx(vals[1], 1.0, 1e-9));
    }

    #[test]
    fn truncated_svd_reconstructs_low_rank_matrix() {
        // Build an exactly rank-2 matrix A = u1 v1ᵀ * 5 + u2 v2ᵀ * 2.
        let rows = 20;
        let cols = 15;
        let mut a = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                let u1 = (i as f64 + 1.0).sin();
                let v1 = (j as f64 + 2.0).cos();
                let u2 = (i as f64 * 0.3).cos();
                let v2 = (j as f64 * 0.7).sin();
                a.set(i, j, 5.0 * u1 * v1 + 2.0 * u2 * v2);
            }
        }
        let svd = truncated_svd(&a, 2, 5, 42).unwrap();
        assert_eq!(svd.singular_values.len(), 2);
        assert!(svd.singular_values[0] >= svd.singular_values[1]);
        // Reconstruct and compare.
        let mut recon = Matrix::zeros(rows, cols);
        for k in 0..2 {
            for i in 0..rows {
                for j in 0..cols {
                    let v = recon.get(i, j)
                        + svd.singular_values[k] * svd.u.get(i, k) * svd.v.get(j, k);
                    recon.set(i, j, v);
                }
            }
        }
        let mut diff = 0.0;
        for i in 0..rows {
            for j in 0..cols {
                diff += (recon.get(i, j) - a.get(i, j)).powi(2);
            }
        }
        let rel = diff.sqrt() / a.frobenius_norm();
        assert!(rel < 1e-6, "relative reconstruction error {rel}");
    }

    #[test]
    fn truncated_svd_rejects_bad_inputs() {
        let a = Matrix::zeros(3, 3);
        assert!(truncated_svd(&a, 0, 2, 1).is_err());
        let empty = Matrix::zeros(0, 0);
        assert!(truncated_svd(&empty, 1, 2, 1).is_err());
    }

    #[test]
    fn svd_projection_matches_u_sigma() {
        // For rows of A, projecting via V should give U * Sigma approximately.
        let a = Matrix::from_vec(
            4,
            3,
            vec![1.0, 0.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 3.0, 1.0, 1.0, 1.0],
        )
        .unwrap();
        let svd = truncated_svd(&a, 3, 6, 7).unwrap();
        for i in 0..4 {
            let proj = svd.project_row(a.row(i)).unwrap();
            for (k, &proj_k) in proj.iter().enumerate().take(3) {
                let expect = svd.u.get(i, k) * svd.singular_values[k];
                assert!(
                    approx(proj_k, expect, 1e-6),
                    "row {i} comp {k}: {} vs {}",
                    proj_k,
                    expect
                );
            }
        }
        assert!(svd.project_row(&[1.0]).is_err());
    }
}
