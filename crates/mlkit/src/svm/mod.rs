//! Support-vector machines.
//!
//! The paper extracts perceptual attributes from the space with a kernel SVM
//! (binary attributes such as `is_comedy`) or a support-vector regression
//! machine (numeric judgments such as `humor ≥ 8`), and evaluates a
//! transductive SVM as a semi-supervised extension (Section 5).
//!
//! All three variants here are trained with **kernelized dual coordinate
//! descent**: the bias term is absorbed into the kernel
//! (`K'(x, y) = K(x, y) + 1`), which removes the equality constraint of the
//! classic SMO dual and
//! lets every coordinate be optimized independently with a closed-form
//! clipped update.  This is simple, dependency-free, and robust for the
//! training-set sizes that occur in the paper's experiments (tens of gold
//! examples up to a few thousand crowd labels).

mod classifier;
mod svr;
mod tsvm;

pub use classifier::{SvmClassifier, SvmParams};
pub use svr::{SvrParams, SvrRegressor};
pub use tsvm::{TsvmClassifier, TsvmParams};

use crate::kernel::Kernel;

/// Precomputed kernel matrix with the bias term absorbed (`K + 1`).
///
/// Stored as `f32` to halve memory for the larger training sets used by the
/// HIT-auditing experiment (Table 4).
pub(crate) struct GramMatrix {
    n: usize,
    data: Vec<f32>,
}

impl GramMatrix {
    /// Computes the full `n × n` Gram matrix for `points` under `kernel`,
    /// adding 1.0 to every entry to absorb the bias term.
    pub(crate) fn compute(points: &[Vec<f64>], kernel: &Kernel) -> GramMatrix {
        let n = points.len();
        let mut data = vec![0.0f32; n * n];
        for i in 0..n {
            for j in i..n {
                let v = (kernel.eval(&points[i], &points[j]) + 1.0) as f32;
                data[i * n + j] = v;
                data[j * n + i] = v;
            }
        }
        GramMatrix { n, data }
    }

    #[inline]
    pub(crate) fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    #[inline]
    pub(crate) fn diag(&self, i: usize) -> f64 {
        self.data[i * self.n + i] as f64
    }
}

/// Class weighting strategies for imbalanced training sets.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ClassWeight {
    /// Both classes use the same cost `C`.
    #[default]
    None,
    /// The cost of each class is scaled inversely proportional to its
    /// frequency, so that rare classes are not ignored.
    Balanced,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gram_matrix_is_symmetric_with_bias() {
        let pts = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 2.0]];
        let g = GramMatrix::compute(&pts, &Kernel::Linear);
        // Diagonal = <x,x> + 1.
        assert_eq!(g.diag(0), 1.0);
        assert_eq!(g.diag(1), 2.0);
        assert_eq!(g.diag(2), 5.0);
        // Symmetry.
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(g.row(i)[j], g.row(j)[i]);
            }
        }
    }

    #[test]
    fn class_weight_default_is_none() {
        assert_eq!(ClassWeight::default(), ClassWeight::None);
    }
}
