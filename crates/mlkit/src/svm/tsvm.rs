//! Transductive SVM (label-switching heuristic).
//!
//! Section 5 of the paper evaluates transductive SVMs as a semi-supervised
//! alternative: the classifier sees not only the small crowd-sourced gold
//! sample but also the (unlabeled) remainder of the database.  The paper
//! finds accuracy on par with the plain SVM but runtimes that are orders of
//! magnitude larger — a conclusion our ablation bench reproduces.
//!
//! The implementation follows Joachims' label-switching scheme: train on the
//! labeled data, impute labels for the unlabeled data respecting an expected
//! positive fraction, then alternate between retraining on everything and
//! switching the most-misclassified pair of opposite pseudo-labels, while the
//! influence of the unlabeled data (`C*`) is annealed upward.

use super::{ClassWeight, SvmClassifier, SvmParams};
use crate::error::MlError;
use crate::Result;

/// Hyper-parameters of the [`TsvmClassifier`].
#[derive(Debug, Clone, PartialEq)]
pub struct TsvmParams {
    /// Parameters of the underlying supervised SVM.
    pub base: SvmParams,
    /// Final cost assigned to unlabeled (pseudo-labeled) examples.
    pub c_star: f64,
    /// Expected fraction of positives among the unlabeled data; when `None`
    /// the fraction observed in the labeled data is used.
    pub positive_fraction: Option<f64>,
    /// Number of annealing steps for `C*`.
    pub annealing_steps: usize,
    /// Maximum number of label-switching rounds per annealing step.
    pub max_switches_per_step: usize,
}

impl Default for TsvmParams {
    fn default() -> Self {
        TsvmParams {
            base: SvmParams {
                class_weight: ClassWeight::None,
                ..SvmParams::default()
            },
            c_star: 0.5,
            positive_fraction: None,
            annealing_steps: 3,
            max_switches_per_step: 50,
        }
    }
}

/// A transductive SVM: a supervised SVM retrained on labeled plus
/// pseudo-labeled data.
#[derive(Debug, Clone)]
pub struct TsvmClassifier {
    model: SvmClassifier,
    transductive_labels: Vec<bool>,
    switches_performed: usize,
}

impl TsvmClassifier {
    /// Trains a TSVM from `labeled` examples (with labels `labels`) and
    /// additional `unlabeled` examples.
    pub fn train(
        labeled: &[Vec<f64>],
        labels: &[bool],
        unlabeled: &[Vec<f64>],
        params: &TsvmParams,
    ) -> Result<Self> {
        if unlabeled.is_empty() {
            return Err(MlError::InvalidInput(
                "transductive training requires at least one unlabeled example".into(),
            ));
        }
        if params.c_star <= 0.0 {
            return Err(MlError::InvalidParameter("c_star must be positive".into()));
        }
        if params.annealing_steps == 0 {
            return Err(MlError::InvalidParameter(
                "annealing_steps must be >= 1".into(),
            ));
        }
        if let Some(frac) = params.positive_fraction {
            if !(0.0..=1.0).contains(&frac) {
                return Err(MlError::InvalidParameter(
                    "positive_fraction must lie in [0, 1]".into(),
                ));
            }
        }

        // Initial supervised model.
        let base_model = SvmClassifier::train(labeled, labels, &params.base)?;

        // Impute initial pseudo-labels: rank unlabeled points by decision
        // value and label the top `positive_fraction` as positive, matching
        // the expected class ratio.
        let frac = params
            .positive_fraction
            .unwrap_or_else(|| labels.iter().filter(|&&l| l).count() as f64 / labels.len() as f64);
        let mut scored: Vec<(usize, f64)> = unlabeled
            .iter()
            .enumerate()
            .map(|(i, x)| (i, base_model.decision_value(x)))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let n_pos = ((unlabeled.len() as f64) * frac).round() as usize;
        let mut pseudo = vec![false; unlabeled.len()];
        for &(i, _) in scored.iter().take(n_pos) {
            pseudo[i] = true;
        }

        let mut switches_performed = 0;
        let mut model = base_model;

        for step in 1..=params.annealing_steps {
            // Annealed unlabeled cost: grows toward c_star.
            let c_star = params.c_star * step as f64 / params.annealing_steps as f64;

            for _ in 0..params.max_switches_per_step {
                // Retrain on labeled + pseudo-labeled examples.  Unlabeled
                // examples get a reduced cost by duplicating the labeled C
                // through per-example weighting approximated by sub-sampling:
                // we emulate the lower cost by scaling the base C down for the
                // combined problem when the unlabeled share dominates.
                let mut xs: Vec<Vec<f64>> = labeled.to_vec();
                xs.extend(unlabeled.iter().cloned());
                let mut ys: Vec<bool> = labels.to_vec();
                ys.extend(pseudo.iter().copied());

                let combined_params = SvmParams {
                    c: combine_cost(params.base.c, c_star, labeled.len(), unlabeled.len()),
                    ..params.base.clone()
                };
                model = SvmClassifier::train(&xs, &ys, &combined_params)?;

                // Find the worst-violating opposite pair among the unlabeled
                // examples: a pseudo-positive with very negative margin and a
                // pseudo-negative with very positive margin.
                let mut worst_pos: Option<(usize, f64)> = None;
                let mut worst_neg: Option<(usize, f64)> = None;
                for (i, x) in unlabeled.iter().enumerate() {
                    let value = model.decision_value(x);
                    let signed = if pseudo[i] { value } else { -value };
                    if signed < 0.0 {
                        if pseudo[i] {
                            if worst_pos.is_none_or(|(_, v)| signed < v) {
                                worst_pos = Some((i, signed));
                            }
                        } else if worst_neg.is_none_or(|(_, v)| signed < v) {
                            worst_neg = Some((i, signed));
                        }
                    }
                }
                match (worst_pos, worst_neg) {
                    (Some((ip, vp)), Some((ineg, vn))) if vp + vn < 0.0 => {
                        pseudo[ip] = false;
                        pseudo[ineg] = true;
                        switches_performed += 1;
                    }
                    _ => break,
                }
            }
        }

        Ok(TsvmClassifier {
            model,
            transductive_labels: pseudo,
            switches_performed,
        })
    }

    /// Predicted label for an arbitrary feature vector.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.model.predict(x)
    }

    /// Signed decision value for an arbitrary feature vector.
    pub fn decision_value(&self, x: &[f64]) -> f64 {
        self.model.decision_value(x)
    }

    /// The final pseudo-labels assigned to the unlabeled examples (in input
    /// order) — the transductive output of the method.
    pub fn transductive_labels(&self) -> &[bool] {
        &self.transductive_labels
    }

    /// Number of label switches performed during training.
    pub fn switches_performed(&self) -> usize {
        self.switches_performed
    }
}

/// Blends the labeled cost `c` and the unlabeled cost `c_star` into a single
/// effective cost for the combined training problem, weighted by how many
/// examples of each kind participate.
fn combine_cost(c: f64, c_star: f64, n_labeled: usize, n_unlabeled: usize) -> f64 {
    let total = (n_labeled + n_unlabeled) as f64;
    (c * n_labeled as f64 + c_star * n_unlabeled as f64) / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Kernel;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn two_blobs(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let pos: bool = rng.gen();
            let offset = if pos { 1.5 } else { -1.5 };
            xs.push(vec![
                offset + rng.gen::<f64>() * 0.8,
                offset + rng.gen::<f64>() * 0.8,
            ]);
            ys.push(pos);
        }
        (xs, ys)
    }

    #[test]
    fn tsvm_labels_unlabeled_blobs_correctly() {
        let (labeled, labels) = two_blobs(20, 1);
        let (unlabeled, true_unlabeled) = two_blobs(60, 2);
        let params = TsvmParams {
            base: SvmParams {
                kernel: Kernel::Rbf { gamma: 0.7 },
                c: 5.0,
                ..Default::default()
            },
            ..Default::default()
        };
        let tsvm = TsvmClassifier::train(&labeled, &labels, &unlabeled, &params).unwrap();
        let correct = tsvm
            .transductive_labels()
            .iter()
            .zip(true_unlabeled.iter())
            .filter(|(a, b)| a == b)
            .count();
        assert!(
            correct as f64 / unlabeled.len() as f64 >= 0.8,
            "transductive accuracy {}",
            correct as f64 / unlabeled.len() as f64
        );
    }

    #[test]
    fn tsvm_accuracy_comparable_to_supervised_svm() {
        // The paper's Section 5 finding: accuracy is about the same.
        let (labeled, labels) = two_blobs(30, 3);
        let (unlabeled, _) = two_blobs(80, 4);
        let (test, test_labels) = two_blobs(100, 5);
        let base = SvmParams {
            kernel: Kernel::Rbf { gamma: 0.7 },
            c: 5.0,
            ..Default::default()
        };
        let svm = SvmClassifier::train(&labeled, &labels, &base).unwrap();
        let tsvm = TsvmClassifier::train(
            &labeled,
            &labels,
            &unlabeled,
            &TsvmParams {
                base: base.clone(),
                ..Default::default()
            },
        )
        .unwrap();
        let acc = |preds: &[bool]| {
            preds
                .iter()
                .zip(test_labels.iter())
                .filter(|(a, b)| a == b)
                .count() as f64
                / test.len() as f64
        };
        let svm_preds: Vec<bool> = test.iter().map(|x| svm.predict(x)).collect();
        let tsvm_preds: Vec<bool> = test.iter().map(|x| tsvm.predict(x)).collect();
        assert!((acc(&svm_preds) - acc(&tsvm_preds)).abs() < 0.15);
        assert!(acc(&tsvm_preds) > 0.85);
    }

    #[test]
    fn rejects_invalid_configurations() {
        let (labeled, labels) = two_blobs(10, 7);
        let (unlabeled, _) = two_blobs(10, 8);
        assert!(TsvmClassifier::train(&labeled, &labels, &[], &TsvmParams::default()).is_err());
        assert!(TsvmClassifier::train(
            &labeled,
            &labels,
            &unlabeled,
            &TsvmParams {
                c_star: 0.0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(TsvmClassifier::train(
            &labeled,
            &labels,
            &unlabeled,
            &TsvmParams {
                annealing_steps: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(TsvmClassifier::train(
            &labeled,
            &labels,
            &unlabeled,
            &TsvmParams {
                positive_fraction: Some(1.5),
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn positive_fraction_controls_pseudo_label_ratio() {
        let (labeled, labels) = two_blobs(20, 9);
        let (unlabeled, _) = two_blobs(50, 10);
        let params = TsvmParams {
            positive_fraction: Some(0.2),
            max_switches_per_step: 0,
            ..Default::default()
        };
        let tsvm = TsvmClassifier::train(&labeled, &labels, &unlabeled, &params).unwrap();
        let pos = tsvm.transductive_labels().iter().filter(|&&l| l).count();
        assert_eq!(pos, 10);
        assert_eq!(tsvm.switches_performed(), 0);
    }
}
