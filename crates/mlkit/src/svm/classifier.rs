//! Binary kernel SVM classifier trained with dual coordinate descent.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use super::{ClassWeight, GramMatrix};
use crate::error::MlError;
use crate::kernel::Kernel;
use crate::Result;

/// Hyper-parameters of the binary [`SvmClassifier`].
#[derive(Debug, Clone, PartialEq)]
pub struct SvmParams {
    /// Kernel function.
    pub kernel: Kernel,
    /// Soft-margin cost parameter `C > 0`.
    pub c: f64,
    /// Class weighting applied to `C` per class.
    pub class_weight: ClassWeight,
    /// Maximum number of full passes over the training set.
    pub max_epochs: usize,
    /// Convergence tolerance on the largest alpha change within one epoch.
    pub tolerance: f64,
    /// Seed for the coordinate-order shuffling.
    pub seed: u64,
}

impl Default for SvmParams {
    fn default() -> Self {
        SvmParams {
            kernel: Kernel::default(),
            c: 1.0,
            class_weight: ClassWeight::Balanced,
            max_epochs: 200,
            tolerance: 1e-4,
            seed: 0x5eed,
        }
    }
}

/// A trained binary SVM.
///
/// Only examples with non-zero dual coefficient (the support vectors) are
/// retained for prediction.
#[derive(Debug, Clone)]
pub struct SvmClassifier {
    kernel: Kernel,
    support_vectors: Vec<Vec<f64>>,
    /// `alpha_i * y_i` for each retained support vector.
    coefficients: Vec<f64>,
    epochs_run: usize,
    converged: bool,
}

impl SvmClassifier {
    /// Trains a binary SVM on dense feature vectors `xs` with labels `ys`
    /// (`true` = positive class).
    ///
    /// Errors when the input is empty, inconsistent, lacks one of the two
    /// classes, or when a hyper-parameter is invalid.
    pub fn train(xs: &[Vec<f64>], ys: &[bool], params: &SvmParams) -> Result<Self> {
        validate_inputs(xs, ys)?;
        if params.c <= 0.0 || !params.c.is_finite() {
            return Err(MlError::InvalidParameter(format!(
                "C must be positive, got {}",
                params.c
            )));
        }
        if params.max_epochs == 0 {
            return Err(MlError::InvalidParameter("max_epochs must be >= 1".into()));
        }

        let n = xs.len();
        let y: Vec<f64> = ys.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let n_pos = ys.iter().filter(|&&b| b).count();
        let n_neg = n - n_pos;
        if n_pos == 0 {
            return Err(MlError::MissingClass { positive: true });
        }
        if n_neg == 0 {
            return Err(MlError::MissingClass { positive: false });
        }

        // Per-example cost: balanced weighting scales C by n / (2 * n_class),
        // the usual "inverse class frequency" heuristic.
        let (c_pos, c_neg) = match params.class_weight {
            ClassWeight::None => (params.c, params.c),
            ClassWeight::Balanced => (
                params.c * n as f64 / (2.0 * n_pos as f64),
                params.c * n as f64 / (2.0 * n_neg as f64),
            ),
        };
        let cost: Vec<f64> = ys.iter().map(|&b| if b { c_pos } else { c_neg }).collect();

        let gram = GramMatrix::compute(xs, &params.kernel);

        // Dual coordinate descent on
        //   min_a  1/2 Σ a_i a_j y_i y_j K'_ij − Σ a_i,  0 ≤ a_i ≤ C_i
        // maintaining f_i = Σ_j a_j y_j K'_ij incrementally.
        let mut alpha = vec![0.0f64; n];
        let mut f = vec![0.0f64; n];
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(params.seed);

        let mut epochs_run = 0;
        let mut converged = false;
        for _epoch in 0..params.max_epochs {
            epochs_run += 1;
            order.shuffle(&mut rng);
            let mut max_delta: f64 = 0.0;
            for &i in &order {
                let kii = gram.diag(i);
                if kii <= 0.0 {
                    continue;
                }
                // Gradient of the dual w.r.t. a_i is y_i f_i − 1.
                let grad = y[i] * f[i] - 1.0;
                let mut new_alpha = alpha[i] - grad / kii;
                new_alpha = new_alpha.clamp(0.0, cost[i]);
                let delta = new_alpha - alpha[i];
                if delta.abs() < 1e-15 {
                    continue;
                }
                alpha[i] = new_alpha;
                max_delta = max_delta.max(delta.abs());
                let row = gram.row(i);
                let dy = delta * y[i];
                for (fj, &kij) in f.iter_mut().zip(row.iter()) {
                    *fj += dy * kij as f64;
                }
            }
            if max_delta < params.tolerance {
                converged = true;
                break;
            }
        }

        // Retain support vectors only.
        let mut support_vectors = Vec::new();
        let mut coefficients = Vec::new();
        for i in 0..n {
            if alpha[i] > 1e-12 {
                support_vectors.push(xs[i].clone());
                coefficients.push(alpha[i] * y[i]);
            }
        }
        if support_vectors.is_empty() {
            return Err(MlError::Numerical(
                "training produced no support vectors".into(),
            ));
        }

        Ok(SvmClassifier {
            kernel: params.kernel,
            support_vectors,
            coefficients,
            epochs_run,
            converged,
        })
    }

    /// Signed decision value for `x`; positive means the positive class.
    pub fn decision_value(&self, x: &[f64]) -> f64 {
        self.support_vectors
            .iter()
            .zip(self.coefficients.iter())
            .map(|(sv, &c)| c * (self.kernel.eval(sv, x) + 1.0))
            .sum()
    }

    /// Predicted label for `x`.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.decision_value(x) >= 0.0
    }

    /// Predicts labels for a batch of feature vectors.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<bool> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Number of retained support vectors.
    pub fn n_support_vectors(&self) -> usize {
        self.support_vectors.len()
    }

    /// Number of coordinate-descent epochs that were run.
    pub fn epochs_run(&self) -> usize {
        self.epochs_run
    }

    /// Whether the tolerance criterion was met before `max_epochs`.
    pub fn converged(&self) -> bool {
        self.converged
    }
}

pub(crate) fn validate_inputs(xs: &[Vec<f64>], ys: &[bool]) -> Result<()> {
    if xs.len() != ys.len() {
        return Err(MlError::InvalidInput(format!(
            "{} feature vectors but {} labels",
            xs.len(),
            ys.len()
        )));
    }
    validate_features(xs)
}

pub(crate) fn validate_inputs_regression(xs: &[Vec<f64>], ys: &[f64]) -> Result<()> {
    if xs.len() != ys.len() {
        return Err(MlError::InvalidInput(format!(
            "{} feature vectors but {} targets",
            xs.len(),
            ys.len()
        )));
    }
    if ys.iter().any(|y| !y.is_finite()) {
        return Err(MlError::InvalidInput(
            "targets contain non-finite values".into(),
        ));
    }
    validate_features(xs)
}

fn validate_features(xs: &[Vec<f64>]) -> Result<()> {
    if xs.is_empty() {
        return Err(MlError::InvalidInput("training set is empty".into()));
    }
    let dim = xs[0].len();
    if dim == 0 {
        return Err(MlError::InvalidInput(
            "feature vectors must be non-empty".into(),
        ));
    }
    if xs.iter().any(|x| x.len() != dim) {
        return Err(MlError::InvalidInput(
            "feature vectors have inconsistent dimensionality".into(),
        ));
    }
    if xs.iter().any(|x| x.iter().any(|v| !v.is_finite())) {
        return Err(MlError::InvalidInput(
            "feature vectors contain non-finite values".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn linearly_separable(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let pos: bool = rng.gen();
            let offset = if pos { 2.0 } else { -2.0 };
            xs.push(vec![offset + rng.gen::<f64>(), offset + rng.gen::<f64>()]);
            ys.push(pos);
        }
        (xs, ys)
    }

    #[test]
    fn trains_on_linearly_separable_data() {
        let (xs, ys) = linearly_separable(60, 1);
        let params = SvmParams {
            kernel: Kernel::Linear,
            c: 10.0,
            ..Default::default()
        };
        let model = SvmClassifier::train(&xs, &ys, &params).unwrap();
        let preds = model.predict_batch(&xs);
        let correct = preds.iter().zip(ys.iter()).filter(|(a, b)| a == b).count();
        assert!(
            correct as f64 / xs.len() as f64 > 0.95,
            "train accuracy too low"
        );
        assert!(model.n_support_vectors() > 0);
        assert!(model.n_support_vectors() <= xs.len());
    }

    #[test]
    fn rbf_solves_xor() {
        // XOR is not linearly separable; RBF must handle it.
        let xs = vec![
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![0.1, 0.1],
            vec![0.9, 0.9],
            vec![0.1, 0.9],
            vec![0.9, 0.1],
        ];
        let ys = vec![false, false, true, true, false, false, true, true];
        let params = SvmParams {
            kernel: Kernel::Rbf { gamma: 4.0 },
            c: 50.0,
            max_epochs: 500,
            ..Default::default()
        };
        let model = SvmClassifier::train(&xs, &ys, &params).unwrap();
        for (x, &y) in xs.iter().zip(ys.iter()) {
            assert_eq!(model.predict(x), y, "misclassified {x:?}");
        }
    }

    #[test]
    fn generalizes_to_unseen_points() {
        let (xs, ys) = linearly_separable(200, 2);
        let (test_xs, test_ys) = linearly_separable(100, 3);
        let params = SvmParams {
            kernel: Kernel::Rbf { gamma: 0.5 },
            c: 5.0,
            ..Default::default()
        };
        let model = SvmClassifier::train(&xs, &ys, &params).unwrap();
        let preds = model.predict_batch(&test_xs);
        let correct = preds
            .iter()
            .zip(test_ys.iter())
            .filter(|(a, b)| a == b)
            .count();
        assert!(correct as f64 / test_xs.len() as f64 > 0.9);
    }

    #[test]
    fn balanced_weighting_helps_imbalanced_data() {
        // 10 positives vs 190 negatives, slight overlap.
        let mut rng = StdRng::seed_from_u64(9);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..200 {
            let pos = i < 10;
            let offset = if pos { 1.2 } else { -1.2 };
            xs.push(vec![offset + rng.gen::<f64>(), offset + rng.gen::<f64>()]);
            ys.push(pos);
        }
        let balanced = SvmClassifier::train(
            &xs,
            &ys,
            &SvmParams {
                kernel: Kernel::Linear,
                c: 1.0,
                class_weight: ClassWeight::Balanced,
                ..Default::default()
            },
        )
        .unwrap();
        let preds = balanced.predict_batch(&xs);
        let conf = crate::metrics::BinaryConfusion::from_predictions(&preds, &ys);
        assert!(
            conf.sensitivity() > 0.8,
            "balanced SVM should not ignore the rare class"
        );
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let params = SvmParams::default();
        assert!(matches!(
            SvmClassifier::train(&[], &[], &params),
            Err(MlError::InvalidInput(_))
        ));
        assert!(matches!(
            SvmClassifier::train(&[vec![1.0]], &[true, false], &params),
            Err(MlError::InvalidInput(_))
        ));
        assert!(matches!(
            SvmClassifier::train(&[vec![1.0], vec![1.0, 2.0]], &[true, false], &params),
            Err(MlError::InvalidInput(_))
        ));
        assert!(matches!(
            SvmClassifier::train(&[vec![1.0], vec![2.0]], &[true, true], &params),
            Err(MlError::MissingClass { positive: false })
        ));
        assert!(matches!(
            SvmClassifier::train(&[vec![1.0], vec![2.0]], &[false, false], &params),
            Err(MlError::MissingClass { positive: true })
        ));
        assert!(matches!(
            SvmClassifier::train(&[vec![f64::NAN], vec![2.0]], &[true, false], &params),
            Err(MlError::InvalidInput(_))
        ));
    }

    #[test]
    fn rejects_bad_parameters() {
        let xs = vec![vec![0.0], vec![1.0]];
        let ys = vec![false, true];
        assert!(matches!(
            SvmClassifier::train(
                &xs,
                &ys,
                &SvmParams {
                    c: 0.0,
                    ..Default::default()
                }
            ),
            Err(MlError::InvalidParameter(_))
        ));
        assert!(matches!(
            SvmClassifier::train(
                &xs,
                &ys,
                &SvmParams {
                    c: -1.0,
                    ..Default::default()
                }
            ),
            Err(MlError::InvalidParameter(_))
        ));
        assert!(matches!(
            SvmClassifier::train(
                &xs,
                &ys,
                &SvmParams {
                    max_epochs: 0,
                    ..Default::default()
                }
            ),
            Err(MlError::InvalidParameter(_))
        ));
    }

    #[test]
    fn training_is_deterministic_for_a_fixed_seed() {
        let (xs, ys) = linearly_separable(80, 11);
        let params = SvmParams {
            kernel: Kernel::Rbf { gamma: 0.3 },
            c: 2.0,
            ..Default::default()
        };
        let a = SvmClassifier::train(&xs, &ys, &params).unwrap();
        let b = SvmClassifier::train(&xs, &ys, &params).unwrap();
        let probe = vec![0.3, -0.7];
        assert_eq!(a.decision_value(&probe), b.decision_value(&probe));
        assert_eq!(a.n_support_vectors(), b.n_support_vectors());
    }

    #[test]
    fn converges_and_reports_epochs() {
        let (xs, ys) = linearly_separable(40, 5);
        let params = SvmParams {
            kernel: Kernel::Linear,
            c: 1.0,
            max_epochs: 1000,
            ..Default::default()
        };
        let model = SvmClassifier::train(&xs, &ys, &params).unwrap();
        assert!(model.converged());
        assert!(model.epochs_run() <= 1000);
        assert!(model.epochs_run() >= 1);
    }
}
