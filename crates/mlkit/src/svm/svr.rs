//! ε-insensitive support-vector regression.
//!
//! Used by the schema-expansion pipeline when the new perceptual attribute is
//! numeric (e.g. `humor` on a 1–10 scale) rather than binary.  The dual is
//! solved with the same bias-absorbed coordinate-descent strategy as the
//! classifier: each coefficient `β_i = α_i − α_i*` lives in `[-C, C]` and is
//! updated with a closed-form soft-thresholded step.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use super::classifier::validate_inputs_regression;
use super::GramMatrix;
use crate::error::MlError;
use crate::kernel::Kernel;
use crate::Result;

/// Hyper-parameters of the [`SvrRegressor`].
#[derive(Debug, Clone, PartialEq)]
pub struct SvrParams {
    /// Kernel function.
    pub kernel: Kernel,
    /// Cost parameter `C > 0` bounding each dual coefficient.
    pub c: f64,
    /// Width of the ε-insensitive tube; residuals smaller than this are not
    /// penalized.
    pub epsilon: f64,
    /// Maximum number of coordinate-descent epochs.
    pub max_epochs: usize,
    /// Convergence tolerance on the largest coefficient change per epoch.
    pub tolerance: f64,
    /// Seed for the coordinate-order shuffling.
    pub seed: u64,
}

impl Default for SvrParams {
    fn default() -> Self {
        SvrParams {
            kernel: Kernel::default(),
            c: 1.0,
            epsilon: 0.1,
            max_epochs: 300,
            tolerance: 1e-4,
            seed: 0x5eed,
        }
    }
}

/// A trained ε-SVR model.
#[derive(Debug, Clone)]
pub struct SvrRegressor {
    kernel: Kernel,
    support_vectors: Vec<Vec<f64>>,
    coefficients: Vec<f64>,
    epochs_run: usize,
    converged: bool,
}

impl SvrRegressor {
    /// Trains an ε-SVR on dense feature vectors `xs` with real targets `ys`.
    pub fn train(xs: &[Vec<f64>], ys: &[f64], params: &SvrParams) -> Result<Self> {
        validate_inputs_regression(xs, ys)?;
        if params.c <= 0.0 || !params.c.is_finite() {
            return Err(MlError::InvalidParameter(format!(
                "C must be positive, got {}",
                params.c
            )));
        }
        if params.epsilon < 0.0 {
            return Err(MlError::InvalidParameter("epsilon must be >= 0".into()));
        }
        if params.max_epochs == 0 {
            return Err(MlError::InvalidParameter("max_epochs must be >= 1".into()));
        }

        let n = xs.len();
        let gram = GramMatrix::compute(xs, &params.kernel);

        // beta_i = alpha_i - alpha_i^* in [-C, C].
        // Objective: 1/2 β'K'β − β'y + ε Σ|β_i|.
        // Coordinate update with prediction cache f_i = Σ_j β_j K'_ij.
        let mut beta = vec![0.0f64; n];
        let mut f = vec![0.0f64; n];
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(params.seed);

        let mut epochs_run = 0;
        let mut converged = false;
        for _ in 0..params.max_epochs {
            epochs_run += 1;
            order.shuffle(&mut rng);
            let mut max_delta: f64 = 0.0;
            for &i in &order {
                let kii = gram.diag(i);
                if kii <= 0.0 {
                    continue;
                }
                // Unregularized minimizer of the quadratic part w.r.t. β_i.
                let residual = ys[i] - (f[i] - beta[i] * kii);
                // Soft-threshold by ε, then clamp to [-C, C].
                let raw = residual;
                let new_beta = if raw > params.epsilon {
                    ((raw - params.epsilon) / kii).min(params.c)
                } else if raw < -params.epsilon {
                    ((raw + params.epsilon) / kii).max(-params.c)
                } else {
                    0.0
                };
                let delta = new_beta - beta[i];
                if delta.abs() < 1e-15 {
                    continue;
                }
                beta[i] = new_beta;
                max_delta = max_delta.max(delta.abs());
                let row = gram.row(i);
                for (fj, &kij) in f.iter_mut().zip(row.iter()) {
                    *fj += delta * kij as f64;
                }
            }
            if max_delta < params.tolerance {
                converged = true;
                break;
            }
        }

        let mut support_vectors = Vec::new();
        let mut coefficients = Vec::new();
        for i in 0..n {
            if beta[i].abs() > 1e-12 {
                support_vectors.push(xs[i].clone());
                coefficients.push(beta[i]);
            }
        }
        if support_vectors.is_empty() {
            // All targets fit inside the ε-tube around zero — a constant-zero
            // model.  Keep a single zero coefficient so prediction works.
            support_vectors.push(xs[0].clone());
            coefficients.push(0.0);
        }

        Ok(SvrRegressor {
            kernel: params.kernel,
            support_vectors,
            coefficients,
            epochs_run,
            converged,
        })
    }

    /// Predicted value for `x`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.support_vectors
            .iter()
            .zip(self.coefficients.iter())
            .map(|(sv, &c)| c * (self.kernel.eval(sv, x) + 1.0))
            .sum()
    }

    /// Predicts values for a batch of feature vectors.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Number of support vectors retained.
    pub fn n_support_vectors(&self) -> usize {
        self.support_vectors.len()
    }

    /// Number of epochs run during training.
    pub fn epochs_run(&self) -> usize {
        self.epochs_run
    }

    /// Whether the tolerance criterion was met before `max_epochs`.
    pub fn converged(&self) -> bool {
        self.converged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rmse;
    use rand::Rng;

    #[test]
    fn fits_a_linear_function() {
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 10.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] + 1.0).collect();
        let params = SvrParams {
            kernel: Kernel::Linear,
            c: 100.0,
            epsilon: 0.01,
            max_epochs: 2000,
            ..Default::default()
        };
        let model = SvrRegressor::train(&xs, &ys, &params).unwrap();
        let preds = model.predict_batch(&xs);
        assert!(rmse(&preds, &ys) < 0.1, "rmse {}", rmse(&preds, &ys));
    }

    #[test]
    fn fits_a_nonlinear_function_with_rbf() {
        let mut rng = StdRng::seed_from_u64(4);
        let xs: Vec<Vec<f64>> = (0..120)
            .map(|_| vec![rng.gen::<f64>() * 6.0 - 3.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0].sin()).collect();
        let params = SvrParams {
            kernel: Kernel::Rbf { gamma: 1.0 },
            c: 50.0,
            epsilon: 0.02,
            max_epochs: 2000,
            ..Default::default()
        };
        let model = SvrRegressor::train(&xs, &ys, &params).unwrap();
        let probe: Vec<Vec<f64>> = (0..30).map(|i| vec![-2.5 + i as f64 * 0.15]).collect();
        let expected: Vec<f64> = probe.iter().map(|x| x[0].sin()).collect();
        let preds = model.predict_batch(&probe);
        assert!(
            rmse(&preds, &expected) < 0.15,
            "rmse {}",
            rmse(&preds, &expected)
        );
    }

    #[test]
    fn constant_targets_inside_tube_give_constant_model() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys = vec![0.0; 10];
        let params = SvrParams {
            kernel: Kernel::Linear,
            epsilon: 0.5,
            ..Default::default()
        };
        let model = SvrRegressor::train(&xs, &ys, &params).unwrap();
        assert!(model.predict(&[3.0]).abs() < 1e-9);
        assert_eq!(model.n_support_vectors(), 1);
    }

    #[test]
    fn epsilon_controls_sparsity() {
        let xs: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 6.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 0.5).collect();
        let tight = SvrRegressor::train(
            &xs,
            &ys,
            &SvrParams {
                kernel: Kernel::Linear,
                epsilon: 0.001,
                c: 10.0,
                ..Default::default()
            },
        )
        .unwrap();
        let loose = SvrRegressor::train(
            &xs,
            &ys,
            &SvrParams {
                kernel: Kernel::Linear,
                epsilon: 1.0,
                c: 10.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(loose.n_support_vectors() <= tight.n_support_vectors());
    }

    #[test]
    fn rejects_invalid_inputs_and_parameters() {
        let xs = vec![vec![1.0], vec![2.0]];
        let ys = vec![1.0, 2.0];
        assert!(SvrRegressor::train(&[], &[], &SvrParams::default()).is_err());
        assert!(SvrRegressor::train(&xs, &[1.0], &SvrParams::default()).is_err());
        assert!(SvrRegressor::train(&xs, &[1.0, f64::NAN], &SvrParams::default()).is_err());
        assert!(SvrRegressor::train(
            &xs,
            &ys,
            &SvrParams {
                c: 0.0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(SvrRegressor::train(
            &xs,
            &ys,
            &SvrParams {
                epsilon: -0.1,
                ..Default::default()
            }
        )
        .is_err());
        assert!(SvrRegressor::train(
            &xs,
            &ys,
            &SvrParams {
                max_epochs: 0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let xs: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i as f64).cos(), (i as f64).sin()])
            .collect();
        let ys: Vec<f64> = (0..30).map(|i| (i as f64 * 0.3).cos()).collect();
        let p = SvrParams::default();
        let a = SvrRegressor::train(&xs, &ys, &p).unwrap();
        let b = SvrRegressor::train(&xs, &ys, &p).unwrap();
        assert_eq!(a.predict(&[0.5, 0.5]), b.predict(&[0.5, 0.5]));
    }
}
