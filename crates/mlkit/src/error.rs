//! Error types for the ml toolkit.

use std::fmt;

/// Errors produced by training or applying models in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// The training inputs are structurally invalid (empty, mismatched
    /// lengths, inconsistent dimensionality, …).
    InvalidInput(String),
    /// A hyper-parameter is outside its valid range.
    InvalidParameter(String),
    /// Training requires at least one example of each class.
    MissingClass {
        /// `true` when positive examples are missing, `false` for negatives.
        positive: bool,
    },
    /// A numerical routine failed to converge or produced non-finite values.
    Numerical(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            MlError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            MlError::MissingClass { positive } => {
                let which = if *positive { "positive" } else { "negative" };
                write!(f, "training data contains no {which} examples")
            }
            MlError::Numerical(msg) => write!(f, "numerical error: {msg}"),
        }
    }
}

impl std::error::Error for MlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = MlError::InvalidInput("empty training set".into());
        assert!(e.to_string().contains("empty training set"));
        let e = MlError::MissingClass { positive: true };
        assert!(e.to_string().contains("positive"));
        let e = MlError::MissingClass { positive: false };
        assert!(e.to_string().contains("negative"));
        let e = MlError::InvalidParameter("C must be > 0".into());
        assert!(e.to_string().contains("C must be > 0"));
        let e = MlError::Numerical("NaN".into());
        assert!(e.to_string().contains("NaN"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&MlError::Numerical("x".into()));
    }
}
