//! Property-based tests for the ml toolkit's core invariants.

use proptest::prelude::*;

use mlkit::linalg::{distance, dot, squared_distance, Matrix};
use mlkit::metrics::{gmean, mean_std, pearson_correlation, BinaryConfusion};
use mlkit::Kernel;

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, len..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn distance_is_a_metric(a in small_vec(5), b in small_vec(5), c in small_vec(5)) {
        let dab = distance(&a, &b);
        let dba = distance(&b, &a);
        let dac = distance(&a, &c);
        let dcb = distance(&c, &b);
        // Symmetry, non-negativity, identity, triangle inequality.
        prop_assert!((dab - dba).abs() < 1e-9);
        prop_assert!(dab >= 0.0);
        prop_assert!(distance(&a, &a) < 1e-12);
        prop_assert!(dab <= dac + dcb + 1e-9);
        prop_assert!((squared_distance(&a, &b) - dab * dab).abs() < 1e-6);
    }

    #[test]
    fn dot_product_is_bilinear(a in small_vec(4), b in small_vec(4), s in -10.0f64..10.0) {
        let scaled: Vec<f64> = a.iter().map(|x| x * s).collect();
        prop_assert!((dot(&scaled, &b) - s * dot(&a, &b)).abs() < 1e-6);
        prop_assert!((dot(&a, &b) - dot(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn rbf_kernel_is_bounded_symmetric_psd_on_diagonal(
        a in small_vec(3),
        b in small_vec(3),
        gamma in 0.001f64..2.0,
    ) {
        let k = Kernel::Rbf { gamma };
        let kab = k.eval(&a, &b);
        // Mathematically kab > 0, but for very distant points the exponential
        // underflows to exactly 0.0 in f64 — allow that.
        prop_assert!((0.0..=1.0).contains(&kab));
        prop_assert!((kab - k.eval(&b, &a)).abs() < 1e-12);
        prop_assert!((k.eval(&a, &a) - 1.0).abs() < 1e-12);
        // Cauchy–Schwarz-like bound for a PSD kernel with unit diagonal.
        prop_assert!(kab <= (k.eval(&a, &a) * k.eval(&b, &b)).sqrt() + 1e-12);
    }

    #[test]
    fn matrix_transpose_is_involutive_and_product_shapes_match(
        rows in 1usize..6,
        cols in 1usize..6,
        seed in 0u64..1000,
    ) {
        let data: Vec<f64> = (0..rows * cols)
            .map(|i| ((i as u64 + seed) % 17) as f64 - 8.0)
            .collect();
        let m = Matrix::from_vec(rows, cols, data).unwrap();
        prop_assert_eq!(m.transpose().transpose(), m.clone());
        let product = m.matmul(&m.transpose()).unwrap();
        prop_assert_eq!(product.rows(), rows);
        prop_assert_eq!(product.cols(), rows);
        // A·Aᵀ is symmetric.
        for i in 0..rows {
            for j in 0..rows {
                prop_assert!((product.get(i, j) - product.get(j, i)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn confusion_counts_are_consistent(labels in prop::collection::vec(any::<(bool, bool)>(), 1..200)) {
        let predicted: Vec<bool> = labels.iter().map(|(p, _)| *p).collect();
        let actual: Vec<bool> = labels.iter().map(|(_, a)| *a).collect();
        let c = BinaryConfusion::from_predictions(&predicted, &actual);
        prop_assert_eq!(c.total(), labels.len());
        prop_assert!(c.accuracy() >= 0.0 && c.accuracy() <= 1.0);
        prop_assert!(c.gmean() >= 0.0 && c.gmean() <= 1.0);
        prop_assert!(c.precision() >= 0.0 && c.precision() <= 1.0);
        prop_assert!(c.recall() >= 0.0 && c.recall() <= 1.0);
        // The g-mean never exceeds the larger of sensitivity and specificity.
        prop_assert!(c.gmean() <= c.sensitivity().max(c.specificity()) + 1e-12);
        // Perfect prediction ⇒ accuracy 1.
        let perfect = BinaryConfusion::from_predictions(&actual, &actual);
        prop_assert!((perfect.accuracy() - 1.0).abs() < 1e-12);
        prop_assert_eq!(gmean(&actual, &actual) == 1.0,
            actual.iter().any(|&x| x) && actual.iter().any(|&x| !x));
    }

    #[test]
    fn pearson_is_bounded_and_scale_invariant(
        xs in prop::collection::vec(-50.0f64..50.0, 3..60),
        scale in 0.1f64..10.0,
        shift in -5.0f64..5.0,
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| x * 2.0 + 1.0).collect();
        let r = pearson_correlation(&xs, &ys);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        // Correlation is invariant under positive affine transformations.
        let transformed: Vec<f64> = xs.iter().map(|x| x * scale + shift).collect();
        let r2 = pearson_correlation(&transformed, &ys);
        if r.abs() > 1e-9 {
            prop_assert!((r - r2).abs() < 1e-6);
        }
    }

    #[test]
    fn mean_std_bounds(xs in prop::collection::vec(-1000.0f64..1000.0, 1..100)) {
        let (mean, std) = mean_std(&xs);
        let min = xs.iter().cloned().fold(f64::MAX, f64::min);
        let max = xs.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(mean >= min - 1e-9 && mean <= max + 1e-9);
        prop_assert!(std >= 0.0);
        prop_assert!(std <= (max - min) + 1e-9);
    }
}
