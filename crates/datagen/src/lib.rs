//! # datagen — synthetic Social-Web data sets
//!
//! The paper's evaluation uses three real rating collections that we cannot
//! redistribute or download at build time:
//!
//! * the **Netflix Prize** data (103 M ratings, 480 k users, 17,770 movies)
//!   joined with IMDb / Netflix / Rotten Tomatoes genre labels (10,562 movies
//!   with agreed ground truth),
//! * a **Yelp** crawl of San Francisco restaurants (3,811 restaurants,
//!   626 k ratings, 10 editorial categories),
//! * a **BoardGameGeek** crawl (32,337 games, 3.5 M ratings, 20 categories).
//!
//! This crate provides generative substitutes with *planted* perceptual
//! structure: every item carries ground-truth binary categories and a latent
//! trait vector; users carry preference vectors and biases; ratings are
//! sampled from the same distance-based preference model that the paper's
//! Euclidean embedding assumes (plus noise and realistic sparsity).  The key
//! property the experiments need — *rating behaviour encodes perceptual
//! attributes, item metadata text does not* — holds by construction, so the
//! pipelines of Sections 4.2–4.5 can be exercised end-to-end and scored
//! against a known ground truth.
//!
//! The [`DomainConfig`] presets mirror the three paper domains at a scale
//! that runs comfortably on a laptop; `*_full_scale` variants match the
//! paper's item counts for benchmark runs.
//!
//! ```
//! use datagen::{DomainConfig, SyntheticDomain};
//!
//! let domain = SyntheticDomain::generate(&DomainConfig::movies().scaled(0.05), 42).unwrap();
//! assert!(domain.items().len() >= 100);
//! assert_eq!(domain.category_names().len(), 6);
//! let comedies = domain.items_with_category(0);
//! assert!(!comedies.is_empty());
//! ```

#![warn(missing_docs)]

pub mod domain;
pub mod experts;
pub mod generator;
pub mod metadata;
pub mod oracle;

pub use domain::{CategorySpec, DomainConfig};
pub use experts::{ExpertDatabase, ExpertPanel};
pub use generator::{Item, SyntheticDomain};
pub use metadata::MetadataGenerator;
pub use oracle::CategoryOracle;

/// Result alias: generation failures are reported via the perceptual crate's
/// error type (the only fallible substrate used during generation).
pub type Result<T> = std::result::Result<T, perceptual::PerceptualError>;
