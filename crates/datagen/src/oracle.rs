//! Bridging a synthetic domain to the crowd simulator.

use crowdsim::LabelOracle;

use crate::generator::SyntheticDomain;

/// A [`LabelOracle`] view of one category of a [`SyntheticDomain`]: the
/// crowd simulator asks it for the true label (so honest workers can answer
/// correctly) and for the item's familiarity (so "I don't know this movie"
/// answers occur at a realistic rate).
#[derive(Debug, Clone, Copy)]
pub struct CategoryOracle<'a> {
    domain: &'a SyntheticDomain,
    category: usize,
}

impl<'a> CategoryOracle<'a> {
    /// Creates an oracle for `category` (panics if the index is out of
    /// range, which would be a programming error in the experiment harness).
    pub fn new(domain: &'a SyntheticDomain, category: usize) -> Self {
        assert!(
            category < domain.category_names().len(),
            "category index {category} out of range"
        );
        CategoryOracle { domain, category }
    }

    /// The category this oracle exposes.
    pub fn category(&self) -> usize {
        self.category
    }

    /// The underlying domain.
    pub fn domain(&self) -> &SyntheticDomain {
        self.domain
    }
}

impl LabelOracle for CategoryOracle<'_> {
    fn true_label(&self, item: u32) -> bool {
        self.domain
            .item(item)
            .is_some_and(|i| i.categories[self.category])
    }

    fn familiarity(&self, item: u32) -> f64 {
        self.domain.familiarity(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::DomainConfig;

    #[test]
    fn oracle_reflects_domain_ground_truth() {
        let domain = SyntheticDomain::generate(&DomainConfig::movies().scaled(0.03), 9).unwrap();
        let oracle = CategoryOracle::new(&domain, 0);
        assert_eq!(oracle.category(), 0);
        let labels = domain.labels_for_category(0);
        for (i, &truth) in labels.iter().enumerate().take(50) {
            assert_eq!(oracle.true_label(i as u32), truth);
        }
        // Unknown items are "not in the category" and unfamiliar.
        assert!(!oracle.true_label(u32::MAX));
        assert_eq!(oracle.familiarity(u32::MAX), 0.0);
        let fam = oracle.familiarity(0);
        assert!((0.0..=1.0).contains(&fam));
        assert_eq!(oracle.domain().items().len(), domain.items().len());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_category_panics() {
        let domain = SyntheticDomain::generate(&DomainConfig::movies().scaled(0.03), 9).unwrap();
        let _ = CategoryOracle::new(&domain, 99);
    }

    #[test]
    fn oracle_integrates_with_the_crowd_platform() {
        use crowdsim::{CrowdPlatform, HitConfig, WorkerPool};
        let domain = SyntheticDomain::generate(&DomainConfig::movies().scaled(0.03), 10).unwrap();
        let oracle = CategoryOracle::new(&domain, 0);
        let items: Vec<u32> = (0..30).collect();
        let pool = WorkerPool::trusted(12, 1);
        let run = CrowdPlatform::new(HitConfig::default())
            .run(&items, &oracle, &pool, 2)
            .unwrap();
        assert_eq!(run.judgments.len(), 300);
    }
}
