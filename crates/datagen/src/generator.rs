//! The synthetic domain generator.
//!
//! Items and users live in a latent trait space; each binary category has a
//! prototype direction, items belonging to a category are shifted toward its
//! prototype, and ratings follow the distance-based preference model
//! `score = μ + δ_item + δ_user − α‖a_item − b_user‖² + ε`.  Because the
//! ratings are generated from the latent traits — and the traits are
//! determined by the categories — the category information is recoverable
//! from rating behaviour, which is precisely the property the paper's
//! perceptual-space approach exploits.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use perceptual::{PerceptualError, Rating, RatingDataset};

use crate::domain::DomainConfig;
use crate::Result;

/// One synthetic item (movie, restaurant, board game, …).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Item {
    /// Dense item id (index into the domain's item list and rating matrix).
    pub id: u32,
    /// Generated display name.
    pub name: String,
    /// Release / opening year.
    pub year: i64,
    /// Popularity in `[0, 1]`; drives both rating volume and familiarity.
    pub popularity: f64,
    /// Probability that an average honest crowd worker knows the item.
    pub familiarity: f64,
    /// Ground-truth binary category memberships (aligned with
    /// `DomainConfig::categories`).
    pub categories: Vec<bool>,
    /// Intrinsic quality bias (the `δ_item` of the generation model).
    pub quality_bias: f64,
    /// Latent trait vector used for generation.  Experiments must *not* feed
    /// this to classifiers — it exists so tests can verify the generator and
    /// so the rating sampler can be re-run; the learning pipelines only ever
    /// see ratings and metadata text.
    pub latent: Vec<f64>,
}

/// A fully generated synthetic domain: items, ratings, and ground truth.
#[derive(Debug, Clone)]
pub struct SyntheticDomain {
    config: DomainConfig,
    items: Vec<Item>,
    ratings: RatingDataset,
}

impl SyntheticDomain {
    /// Generates a domain from its configuration.
    pub fn generate(config: &DomainConfig, seed: u64) -> Result<Self> {
        if config.n_items == 0 || config.n_users == 0 {
            return Err(PerceptualError::InvalidConfig(
                "a domain needs at least one item and one user".into(),
            ));
        }
        if config.categories.is_empty() {
            return Err(PerceptualError::InvalidConfig(
                "a domain needs at least one category".into(),
            ));
        }
        if config.latent_dimensions == 0 {
            return Err(PerceptualError::InvalidConfig(
                "latent_dimensions must be >= 1".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let d = config.latent_dimensions;

        // Category prototype directions (unit vectors scaled by perceptual
        // strength).
        let prototypes: Vec<Vec<f64>> = config
            .categories
            .iter()
            .map(|cat| {
                let mut v: Vec<f64> = (0..d).map(|_| normal(&mut rng)).collect();
                let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-9);
                for x in &mut v {
                    *x = *x / norm * 1.6 * cat.perceptual_strength;
                }
                v
            })
            .collect();

        // Items.
        let mut items = Vec::with_capacity(config.n_items);
        for id in 0..config.n_items {
            let categories: Vec<bool> = config
                .categories
                .iter()
                .map(|cat| rng.gen::<f64>() < cat.prevalence)
                .collect();
            let mut latent = vec![0.0; d];
            for (member, proto) in categories.iter().zip(prototypes.iter()) {
                if *member {
                    for (l, p) in latent.iter_mut().zip(proto.iter()) {
                        *l += p;
                    }
                }
            }
            for l in &mut latent {
                *l += 0.35 * normal(&mut rng);
            }
            let popularity = rng.gen::<f64>().powi(3);
            let familiarity = (0.05 + 0.8 * popularity).clamp(0.0, 1.0);
            items.push(Item {
                id: id as u32,
                name: format!("{} #{id}", capitalize(&config.name)),
                year: 1950 + (rng.gen::<f64>() * 62.0) as i64,
                popularity,
                familiarity,
                categories,
                quality_bias: 0.45 * normal(&mut rng),
                latent,
            });
        }

        // Users: preferences are mixtures of category prototypes, so that
        // "a user with a bias towards furious action scenes" (Section 3.2)
        // exists by construction.
        let n_cats = config.categories.len();
        let mut user_prefs: Vec<Vec<f64>> = Vec::with_capacity(config.n_users);
        let mut user_bias: Vec<f64> = Vec::with_capacity(config.n_users);
        for _ in 0..config.n_users {
            let mut pref = vec![0.0; d];
            // Each user likes a couple of categories.
            let n_likes = 1 + (rng.gen::<f64>() * 2.0) as usize;
            for _ in 0..n_likes {
                let cat = rng.gen_range(0..n_cats);
                for (p, proto) in pref.iter_mut().zip(prototypes[cat].iter()) {
                    *p += proto;
                }
            }
            for p in &mut pref {
                *p += 0.3 * normal(&mut rng);
            }
            user_prefs.push(pref);
            user_bias.push(0.35 * normal(&mut rng));
        }

        // Rating generation.
        let scale_mid = (config.scale.min + config.scale.max) / 2.0;
        let alpha = config.preference_strength / d as f64;
        // Item sampling weights proportional to popularity.
        let mut cumulative: Vec<f64> = Vec::with_capacity(config.n_items);
        let mut acc = 0.0;
        for item in &items {
            acc += 0.05 + item.popularity;
            cumulative.push(acc);
        }
        let total_weight = acc;

        let mut ratings = Vec::with_capacity(config.expected_ratings());
        for (u, pref) in user_prefs.iter().enumerate() {
            let activity = ((config.ratings_per_user as f64) * (0.5 + rng.gen::<f64>())) as usize;
            let activity = activity.clamp(1, config.n_items);
            let mut seen: HashSet<u32> = HashSet::with_capacity(activity);
            let mut attempts = 0;
            while seen.len() < activity && attempts < activity * 8 {
                attempts += 1;
                let target = rng.gen::<f64>() * total_weight;
                let idx = cumulative
                    .partition_point(|&c| c < target)
                    .min(config.n_items - 1);
                let item_id = idx as u32;
                if !seen.insert(item_id) {
                    continue;
                }
                let item = &items[idx];
                let sq_dist: f64 = item
                    .latent
                    .iter()
                    .zip(pref.iter())
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                let raw = scale_mid + item.quality_bias + user_bias[u] - alpha * sq_dist
                    + config.noise_std * normal(&mut rng)
                    + config.preference_strength * 0.5;
                let score = config.scale.clamp(raw.round());
                ratings.push(Rating::new(item_id, u as u32, score));
            }
        }

        let ratings = RatingDataset::from_ratings(config.n_items, config.n_users, ratings)?;
        Ok(SyntheticDomain {
            config: config.clone(),
            items,
            ratings,
        })
    }

    /// The configuration this domain was generated from.
    pub fn config(&self) -> &DomainConfig {
        &self.config
    }

    /// All items.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// One item by id.
    pub fn item(&self, id: u32) -> Option<&Item> {
        self.items.get(id as usize)
    }

    /// The generated rating collection.
    pub fn ratings(&self) -> &RatingDataset {
        &self.ratings
    }

    /// Names of the domain's categories.
    pub fn category_names(&self) -> Vec<String> {
        self.config.category_names()
    }

    /// Index of a category by name.
    pub fn category_index(&self, name: &str) -> Option<usize> {
        self.config.categories.iter().position(|c| c.name == name)
    }

    /// Ground-truth labels of every item for one category, indexable by item
    /// id.
    pub fn labels_for_category(&self, category: usize) -> Vec<bool> {
        self.items.iter().map(|i| i.categories[category]).collect()
    }

    /// Ids of the items that belong to a category.
    pub fn items_with_category(&self, category: usize) -> Vec<u32> {
        self.items
            .iter()
            .filter(|i| i.categories[category])
            .map(|i| i.id)
            .collect()
    }

    /// The familiarity of an item (used by the crowd simulator).
    pub fn familiarity(&self, item: u32) -> f64 {
        self.items.get(item as usize).map_or(0.0, |i| i.familiarity)
    }

    /// Observed prevalence of a category.
    pub fn category_prevalence(&self, category: usize) -> f64 {
        if self.items.is_empty() {
            return 0.0;
        }
        self.items_with_category(category).len() as f64 / self.items.len() as f64
    }
}

/// Standard normal sample via the Box–Muller transform (the `rand` crate is
/// available offline but `rand_distr` is not).
pub(crate) fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::DomainConfig;

    fn tiny_config() -> DomainConfig {
        DomainConfig::movies().scaled(0.03)
    }

    #[test]
    fn generation_produces_consistent_structures() {
        let config = tiny_config();
        let domain = SyntheticDomain::generate(&config, 1).unwrap();
        assert_eq!(domain.items().len(), config.n_items);
        assert_eq!(domain.ratings().n_items(), config.n_items);
        assert_eq!(domain.ratings().n_users(), config.n_users);
        assert!(domain.ratings().len() > config.n_users * 5);
        // Every rating is on the scale.
        for r in domain.ratings().ratings() {
            assert!(r.score >= config.scale.min && r.score <= config.scale.max);
        }
        // Items expose familiarity in [0, 1].
        for item in domain.items() {
            assert!(item.familiarity >= 0.0 && item.familiarity <= 1.0);
            assert_eq!(item.categories.len(), config.categories.len());
            assert_eq!(item.latent.len(), config.latent_dimensions);
        }
    }

    #[test]
    fn category_prevalence_is_close_to_configured() {
        let config = DomainConfig::movies().scaled(0.25); // 500 items
        let domain = SyntheticDomain::generate(&config, 2).unwrap();
        for (idx, cat) in config.categories.iter().enumerate() {
            let observed = domain.category_prevalence(idx);
            assert!(
                (observed - cat.prevalence).abs() < 0.08,
                "category {} observed {} configured {}",
                cat.name,
                observed,
                cat.prevalence
            );
        }
    }

    #[test]
    fn ratings_encode_category_structure() {
        // Users that like a category's prototype must rate items of that
        // category higher on average than items outside it.  We verify the
        // weaker aggregate property: the per-item mean rating varies and
        // items sharing categories have more similar mean ratings than
        // items that do not (signal exists for the factor model to find).
        let config = tiny_config();
        let domain = SyntheticDomain::generate(&config, 3).unwrap();
        let ratings = domain.ratings();
        let mut by_item_mean = vec![f64::NAN; config.n_items];
        for (i, mean) in by_item_mean.iter_mut().enumerate() {
            if ratings.item_rating_count(i as u32) > 0 {
                *mean = ratings.item_mean(i as u32);
            }
        }
        let finite: Vec<f64> = by_item_mean
            .iter()
            .copied()
            .filter(|m| m.is_finite())
            .collect();
        assert!(finite.len() > config.n_items / 2);
        let (lo, hi) = finite
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &m| (lo.min(m), hi.max(m)));
        assert!(
            hi - lo > 0.5,
            "item mean ratings show no spread: {lo}..{hi}"
        );
    }

    #[test]
    fn accessors_and_lookup() {
        let domain = SyntheticDomain::generate(&tiny_config(), 4).unwrap();
        assert_eq!(domain.category_names().len(), 6);
        assert_eq!(domain.category_index("Comedy"), Some(0));
        assert_eq!(domain.category_index("Nope"), None);
        assert!(domain.item(0).is_some());
        assert!(domain.item(u32::MAX).is_none());
        let labels = domain.labels_for_category(0);
        assert_eq!(labels.len(), domain.items().len());
        let with = domain.items_with_category(0);
        assert_eq!(with.len(), labels.iter().filter(|&&l| l).count());
        assert_eq!(domain.familiarity(u32::MAX), 0.0);
        assert_eq!(domain.config().name, "movies");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = tiny_config();
        let a = SyntheticDomain::generate(&config, 7).unwrap();
        let b = SyntheticDomain::generate(&config, 7).unwrap();
        let c = SyntheticDomain::generate(&config, 8).unwrap();
        assert_eq!(a.items()[0], b.items()[0]);
        assert_eq!(a.ratings().len(), b.ratings().len());
        assert_ne!(
            a.items()[0].latent,
            c.items()[0].latent,
            "different seeds must give different domains"
        );
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let mut c = tiny_config();
        c.categories.clear();
        assert!(SyntheticDomain::generate(&c, 1).is_err());
        let mut c = tiny_config();
        c.latent_dimensions = 0;
        assert!(SyntheticDomain::generate(&c, 1).is_err());
        let mut c = tiny_config();
        c.n_items = 0;
        assert!(SyntheticDomain::generate(&c, 1).is_err());
    }
}
