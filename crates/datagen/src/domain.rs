//! Domain configurations and the paper's three domain presets.

use serde::{Deserialize, Serialize};

use perceptual::RatingScale;

/// One binary perceptual category of a domain (a movie genre, a restaurant
/// property, a board-game mechanic, …).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategorySpec {
    /// Human-readable name (e.g. `"Comedy"`, `"Party Game"`).
    pub name: String,
    /// Fraction of items that belong to the category.
    pub prevalence: f64,
    /// How strongly the category influences rating behaviour, in `[0, 1]`.
    /// Truly perceptual categories (comedy, party game) have high influence;
    /// mostly factual ones (modular board) have low influence — this is what
    /// makes them hard to extract from a perceptual space, exactly as the
    /// paper observes in Section 4.5.
    pub perceptual_strength: f64,
}

impl CategorySpec {
    /// Creates a category with full perceptual strength.
    pub fn new(name: impl Into<String>, prevalence: f64) -> Self {
        CategorySpec {
            name: name.into(),
            prevalence,
            perceptual_strength: 1.0,
        }
    }

    /// Creates a category whose membership barely influences ratings.
    pub fn factual(name: impl Into<String>, prevalence: f64) -> Self {
        CategorySpec {
            name: name.into(),
            prevalence,
            perceptual_strength: 0.15,
        }
    }
}

/// Configuration of a synthetic rating domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainConfig {
    /// Domain name (used for table names and reports).
    pub name: String,
    /// Number of items.
    pub n_items: usize,
    /// Number of users.
    pub n_users: usize,
    /// Binary categories with their prevalences.
    pub categories: Vec<CategorySpec>,
    /// Rating scale.
    pub scale: RatingScale,
    /// Average number of ratings per user.
    pub ratings_per_user: usize,
    /// Dimensionality of the latent trait space used for generation.
    pub latent_dimensions: usize,
    /// Standard deviation of the rating noise.
    pub noise_std: f64,
    /// Strength of the preference signal (how much the user–item trait
    /// distance influences the rating).
    pub preference_strength: f64,
}

impl DomainConfig {
    /// The movie domain (Netflix-Prize-like): 6 genres shared by the three
    /// expert databases, comedy prevalence 30.1 % as reported in Section 4.1.
    ///
    /// The default scale (2,000 movies, 20,000 users, ≈ 50 ratings per user ≈
    /// 1 M ratings) keeps a full experiment run in the minutes range; use
    /// [`DomainConfig::movies_full_scale`] or [`DomainConfig::scaled`] to
    /// change it.
    pub fn movies() -> Self {
        DomainConfig {
            name: "movies".into(),
            n_items: 2_000,
            n_users: 20_000,
            categories: vec![
                CategorySpec::new("Comedy", 0.301),
                CategorySpec::new("Documentary", 0.08),
                CategorySpec::new("Drama", 0.45),
                CategorySpec::new("Family", 0.12),
                CategorySpec::new("Horror", 0.10),
                CategorySpec::new("Romance", 0.17),
            ],
            scale: RatingScale::FIVE_STAR,
            ratings_per_user: 50,
            latent_dimensions: 12,
            noise_std: 0.6,
            preference_strength: 1.6,
        }
    }

    /// The movie domain at the paper's item count (10,562 movies, 480 k
    /// users).  Only use this from release-mode benchmark binaries.
    pub fn movies_full_scale() -> Self {
        DomainConfig {
            n_items: 10_562,
            n_users: 480_000,
            ratings_per_user: 180,
            ..DomainConfig::movies()
        }
    }

    /// The restaurant domain (Yelp-like): 10 categories mixing perceptual
    /// properties (trendy ambience, noise level) and factual ones.
    pub fn restaurants() -> Self {
        DomainConfig {
            name: "restaurants".into(),
            n_items: 1_500,
            n_users: 12_000,
            categories: vec![
                CategorySpec::new("Ambience: Trendy", 0.20),
                CategorySpec::new("Attire: Dressy", 0.15),
                CategorySpec::new("Category: Fast Food", 0.18),
                CategorySpec::new("Good For Kids", 0.35),
                CategorySpec::new("Noise Level: Very Loud", 0.12),
                CategorySpec::new("Romantic", 0.14),
                CategorySpec::new("Outdoor Seating", 0.30),
                CategorySpec::factual("Accepts Credit Cards", 0.85),
                CategorySpec::new("Upscale", 0.10),
                CategorySpec::factual("Open Late", 0.25),
            ],
            scale: RatingScale::FIVE_STAR,
            ratings_per_user: 40,
            latent_dimensions: 10,
            noise_std: 0.7,
            preference_strength: 1.4,
        }
    }

    /// The restaurant domain at the paper's scale (3,811 restaurants,
    /// 128,486 users, ≈ 626 k ratings).
    pub fn restaurants_full_scale() -> Self {
        DomainConfig {
            n_items: 3_811,
            n_users: 128_486,
            ratings_per_user: 5,
            ..DomainConfig::restaurants()
        }
    }

    /// The board-game domain (BoardGameGeek-like): 20 categories; mechanics
    /// such as "Modular Board" are mostly factual and therefore hard to
    /// extract, matching Table 6.
    pub fn board_games() -> Self {
        let mut categories = vec![
            CategorySpec::new("Collectible Components", 0.06),
            CategorySpec::new("Children's Game", 0.12),
            CategorySpec::new("Party Game", 0.14),
            CategorySpec::factual("Modular Board", 0.10),
            CategorySpec::new("Route/Network Building", 0.08),
            CategorySpec::new("Worker Placement", 0.09),
            CategorySpec::new("Cooperative", 0.07),
            CategorySpec::new("Deck Building", 0.06),
            CategorySpec::factual("Dice Rolling", 0.40),
            CategorySpec::new("War Game", 0.15),
        ];
        for i in 0..10 {
            // The remaining thematic categories.
            categories.push(CategorySpec::new(
                format!("Theme {}", i + 1),
                0.05 + 0.01 * i as f64,
            ));
        }
        DomainConfig {
            name: "board_games".into(),
            n_items: 2_500,
            n_users: 10_000,
            categories,
            scale: RatingScale::TEN_POINT,
            ratings_per_user: 60,
            latent_dimensions: 14,
            noise_std: 1.0,
            preference_strength: 2.2,
        }
    }

    /// The board-game domain at the paper's scale (32,337 games, 73,705
    /// users, ≈ 3.5 M ratings).
    pub fn board_games_full_scale() -> Self {
        DomainConfig {
            n_items: 32_337,
            n_users: 73_705,
            ratings_per_user: 48,
            ..DomainConfig::board_games()
        }
    }

    /// Returns a copy with item count, user count, and per-user activity
    /// scaled by `factor` (minimum sizes are enforced so tiny factors still
    /// produce a usable domain).
    pub fn scaled(&self, factor: f64) -> Self {
        let factor = factor.max(0.001);
        DomainConfig {
            n_items: ((self.n_items as f64 * factor) as usize).max(50),
            n_users: ((self.n_users as f64 * factor) as usize).max(200),
            ratings_per_user: ((self.ratings_per_user as f64 * factor.sqrt()) as usize).max(10),
            ..self.clone()
        }
    }

    /// Expected total number of ratings.
    pub fn expected_ratings(&self) -> usize {
        self.n_users * self.ratings_per_user
    }

    /// Names of the categories.
    pub fn category_names(&self) -> Vec<String> {
        self.categories.iter().map(|c| c.name.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_structure() {
        let movies = DomainConfig::movies();
        assert_eq!(movies.categories.len(), 6);
        assert!((movies.categories[0].prevalence - 0.301).abs() < 1e-9);
        assert_eq!(movies.scale, RatingScale::FIVE_STAR);

        let restaurants = DomainConfig::restaurants();
        assert_eq!(restaurants.categories.len(), 10);

        let games = DomainConfig::board_games();
        assert_eq!(games.categories.len(), 20);
        assert_eq!(games.scale, RatingScale::TEN_POINT);
        // Modular Board is a factual category.
        let modular = games
            .categories
            .iter()
            .find(|c| c.name == "Modular Board")
            .unwrap();
        assert!(modular.perceptual_strength < 0.5);
    }

    #[test]
    fn full_scale_presets_match_paper_counts() {
        assert_eq!(DomainConfig::movies_full_scale().n_items, 10_562);
        assert_eq!(DomainConfig::restaurants_full_scale().n_items, 3_811);
        assert_eq!(DomainConfig::board_games_full_scale().n_items, 32_337);
    }

    #[test]
    fn scaling_respects_minimums() {
        let tiny = DomainConfig::movies().scaled(0.0001);
        assert!(tiny.n_items >= 50);
        assert!(tiny.n_users >= 200);
        assert!(tiny.ratings_per_user >= 10);
        let half = DomainConfig::movies().scaled(0.5);
        assert_eq!(half.n_items, 1000);
        assert!(half.expected_ratings() > 0);
    }

    #[test]
    fn category_spec_constructors() {
        let c = CategorySpec::new("Comedy", 0.3);
        assert_eq!(c.perceptual_strength, 1.0);
        let f = CategorySpec::factual("Modular Board", 0.1);
        assert!(f.perceptual_strength < 0.5);
        assert_eq!(DomainConfig::movies().category_names()[0], "Comedy");
    }
}
