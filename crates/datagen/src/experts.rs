//! Simulated expert databases (IMDb / Netflix / Rotten Tomatoes).
//!
//! The paper builds its ground truth as the majority vote over three expert
//! movie databases whose genre classifications agree only imperfectly:
//! evaluated individually against the majority, the sources reach g-means
//! between 0.91 and 0.95 (Table 3, "Reference" columns).  We simulate each
//! source as a noisy copy of the domain's ground truth so that the same
//! reference columns can be reported.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::generator::SyntheticDomain;

/// One simulated expert-curated database.
#[derive(Debug, Clone)]
pub struct ExpertDatabase {
    /// Display name of the source (e.g. `"IMDb"`).
    pub name: String,
    /// Per-category label vectors (outer index = category, inner = item id).
    pub labels: Vec<Vec<bool>>,
    /// The per-label disagreement rate this source was generated with.
    pub noise_rate: f64,
}

impl ExpertDatabase {
    /// Labels of one category, indexable by item id.
    pub fn category_labels(&self, category: usize) -> &[bool] {
        &self.labels[category]
    }
}

/// A panel of simulated expert databases.
#[derive(Debug, Clone)]
pub struct ExpertPanel {
    sources: Vec<ExpertDatabase>,
}

impl ExpertPanel {
    /// Generates a panel with the paper's three sources.  Each source
    /// disagrees with the ground truth on a few percent of the labels
    /// (IMDb and Rotten Tomatoes slightly less than Netflix, matching the
    /// ordering of the reference g-means in Table 3).
    pub fn standard(domain: &SyntheticDomain, seed: u64) -> Self {
        ExpertPanel::generate(
            domain,
            &[("Netflix", 0.055), ("RT", 0.035), ("IMDb", 0.030)],
            seed,
        )
    }

    /// Generates a panel from explicit `(name, noise_rate)` pairs.
    pub fn generate(domain: &SyntheticDomain, sources: &[(&str, f64)], seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_categories = domain.category_names().len();
        let sources = sources
            .iter()
            .map(|(name, noise)| {
                let labels = (0..n_categories)
                    .map(|cat| {
                        domain
                            .labels_for_category(cat)
                            .iter()
                            .map(|&truth| {
                                if rng.gen::<f64>() < *noise {
                                    !truth
                                } else {
                                    truth
                                }
                            })
                            .collect()
                    })
                    .collect();
                ExpertDatabase {
                    name: name.to_string(),
                    labels,
                    noise_rate: *noise,
                }
            })
            .collect();
        ExpertPanel { sources }
    }

    /// The individual sources.
    pub fn sources(&self) -> &[ExpertDatabase] {
        &self.sources
    }

    /// Majority vote of the panel for one category (ties broken toward
    /// `false`, i.e. a strict majority is required for membership).
    pub fn majority(&self, category: usize) -> Vec<bool> {
        if self.sources.is_empty() {
            return Vec::new();
        }
        let n_items = self.sources[0].labels[category].len();
        (0..n_items)
            .map(|item| {
                let positives = self
                    .sources
                    .iter()
                    .filter(|s| s.labels[category][item])
                    .count();
                positives * 2 > self.sources.len()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::DomainConfig;

    fn domain() -> SyntheticDomain {
        SyntheticDomain::generate(&DomainConfig::movies().scaled(0.1), 6).unwrap()
    }

    #[test]
    fn panel_has_three_standard_sources() {
        let d = domain();
        let panel = ExpertPanel::standard(&d, 1);
        assert_eq!(panel.sources().len(), 3);
        let names: Vec<&str> = panel.sources().iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"IMDb"));
        assert!(names.contains(&"Netflix"));
        assert!(names.contains(&"RT"));
        for s in panel.sources() {
            assert_eq!(s.labels.len(), d.category_names().len());
            assert_eq!(s.category_labels(0).len(), d.items().len());
        }
    }

    #[test]
    fn sources_disagree_with_truth_at_roughly_their_noise_rate() {
        let d = domain();
        let panel = ExpertPanel::generate(&d, &[("Noisy", 0.10)], 2);
        let truth = d.labels_for_category(0);
        let source = panel.sources()[0].category_labels(0);
        let disagreements = truth
            .iter()
            .zip(source.iter())
            .filter(|(a, b)| a != b)
            .count() as f64
            / truth.len() as f64;
        assert!(
            (disagreements - 0.10).abs() < 0.05,
            "observed {disagreements}"
        );
    }

    #[test]
    fn majority_vote_is_closer_to_truth_than_individual_sources() {
        let d = domain();
        let panel = ExpertPanel::standard(&d, 3);
        let truth = d.labels_for_category(0);
        let majority = panel.majority(0);
        let agree = |labels: &[bool]| {
            truth
                .iter()
                .zip(labels.iter())
                .filter(|(a, b)| a == b)
                .count() as f64
                / truth.len() as f64
        };
        let majority_acc = agree(&majority);
        for source in panel.sources() {
            assert!(majority_acc >= agree(source.category_labels(0)) - 0.01);
        }
        assert!(majority_acc > 0.95);
    }

    #[test]
    fn empty_panel_majority_is_empty() {
        let d = domain();
        let panel = ExpertPanel::generate(&d, &[], 4);
        assert!(panel.majority(0).is_empty());
    }
}
