//! Metadata text generation for the LSI ("metadata space") baseline.
//!
//! Section 4.3 compares the perceptual space against a 100-dimensional LSI
//! space built from ordinary item metadata (title, plot keywords, actors,
//! director, year, country).  The paper finds that this metadata space is
//! nearly useless for extracting perceptual attributes — high-level
//! judgments like genre "can only be given by humans who actually watched
//! the movie and are not contained in the factual metadata".
//!
//! The generator reproduces that property: metadata documents consist of a
//! large, sparse vocabulary of person and keyword tokens whose association
//! with the ground-truth categories is intentionally weak, so a classifier
//! trained on a handful of examples overfits — as in the paper.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::generator::SyntheticDomain;

/// Configuration of the metadata text generator.
#[derive(Debug, Clone)]
pub struct MetadataGenerator {
    /// Number of distinct "person" tokens (actors, directors, designers).
    pub person_pool: usize,
    /// Number of distinct plot / description keyword tokens.
    pub keyword_pool: usize,
    /// Number of person tokens attached to each item.
    pub persons_per_item: usize,
    /// Number of keyword tokens attached to each item.
    pub keywords_per_item: usize,
    /// Strength of the (weak) association between category membership and
    /// keyword choice, in `[0, 1]`.  0 = completely random metadata.
    pub category_leakage: f64,
}

impl Default for MetadataGenerator {
    fn default() -> Self {
        MetadataGenerator {
            person_pool: 4_000,
            keyword_pool: 1_500,
            persons_per_item: 6,
            keywords_per_item: 8,
            category_leakage: 0.12,
        }
    }
}

impl MetadataGenerator {
    /// Generates one metadata document per item, aligned with the domain's
    /// item ids.
    pub fn generate(&self, domain: &SyntheticDomain, seed: u64) -> Vec<String> {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_categories = domain.category_names().len();
        // Each category gets a small set of keywords it leaks into.
        let leak_keywords: Vec<Vec<usize>> = (0..n_categories)
            .map(|_| {
                (0..12)
                    .map(|_| rng.gen_range(0..self.keyword_pool))
                    .collect()
            })
            .collect();

        domain
            .items()
            .iter()
            .map(|item| {
                let mut tokens: Vec<String> = Vec::new();
                // Title tokens: the generated name plus a random word.
                tokens.push(item.name.replace('#', "no"));
                tokens.push(format!("title{}", rng.gen_range(0..self.keyword_pool)));
                // Year and a coarse country token.
                tokens.push(format!("year{}", item.year));
                tokens.push(format!("country{}", rng.gen_range(0..25)));
                // Person tokens (actors / directors / designers).
                for _ in 0..self.persons_per_item {
                    tokens.push(format!("person{}", rng.gen_range(0..self.person_pool)));
                }
                // Keyword tokens, occasionally leaked from a category the
                // item belongs to.
                for _ in 0..self.keywords_per_item {
                    let leaked = rng.gen::<f64>() < self.category_leakage;
                    let member_cats: Vec<usize> = item
                        .categories
                        .iter()
                        .enumerate()
                        .filter_map(|(i, &m)| m.then_some(i))
                        .collect();
                    if leaked && !member_cats.is_empty() {
                        let cat = member_cats[rng.gen_range(0..member_cats.len())];
                        let kw = leak_keywords[cat][rng.gen_range(0..leak_keywords[cat].len())];
                        tokens.push(format!("kw{kw}"));
                    } else {
                        tokens.push(format!("kw{}", rng.gen_range(0..self.keyword_pool)));
                    }
                }
                tokens.join(" ")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::DomainConfig;

    fn domain() -> SyntheticDomain {
        SyntheticDomain::generate(&DomainConfig::movies().scaled(0.03), 5).unwrap()
    }

    #[test]
    fn one_document_per_item() {
        let d = domain();
        let docs = MetadataGenerator::default().generate(&d, 1);
        assert_eq!(docs.len(), d.items().len());
        assert!(docs.iter().all(|doc| !doc.is_empty()));
        // Documents contain year and person tokens.
        assert!(docs[0].contains("year"));
        assert!(docs[0].contains("person"));
    }

    #[test]
    fn documents_differ_between_items_and_are_deterministic() {
        let d = domain();
        let gen = MetadataGenerator::default();
        let a = gen.generate(&d, 2);
        let b = gen.generate(&d, 2);
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
        let c = gen.generate(&d, 3);
        assert_ne!(a[0], c[0]);
    }

    #[test]
    fn vocabulary_is_large_and_sparse() {
        // The point of the metadata baseline is that its vocabulary is too
        // sparse to generalize from a few training examples.  Check that the
        // number of distinct tokens is a large fraction of the token count.
        let d = domain();
        let docs = MetadataGenerator::default().generate(&d, 4);
        let mut all: Vec<&str> = Vec::new();
        for doc in &docs {
            all.extend(doc.split_whitespace());
        }
        let distinct: std::collections::HashSet<&str> = all.iter().copied().collect();
        assert!(
            distinct.len() as f64 > all.len() as f64 * 0.2,
            "{} distinct of {} total",
            distinct.len(),
            all.len()
        );
    }
}
