//! Property-based tests for the synthetic-domain generator: structural
//! invariants that must hold for any configuration.

use proptest::prelude::*;

use datagen::{DomainConfig, ExpertPanel, MetadataGenerator, SyntheticDomain};

fn any_domain_config() -> impl Strategy<Value = DomainConfig> {
    (0.02f64..0.12, 0u8..3).prop_map(|(factor, which)| {
        let base = match which {
            0 => DomainConfig::movies(),
            1 => DomainConfig::restaurants(),
            _ => DomainConfig::board_games(),
        };
        base.scaled(factor)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generated_domains_are_structurally_sound(config in any_domain_config(), seed in 0u64..1000) {
        let domain = SyntheticDomain::generate(&config, seed).unwrap();
        // Exactly one item record per declared item, ids dense and ordered.
        prop_assert_eq!(domain.items().len(), config.n_items);
        for (i, item) in domain.items().iter().enumerate() {
            prop_assert_eq!(item.id as usize, i);
            prop_assert_eq!(item.categories.len(), config.categories.len());
            prop_assert!(item.familiarity >= 0.0 && item.familiarity <= 1.0);
            prop_assert!(item.popularity >= 0.0 && item.popularity <= 1.0);
            prop_assert!(item.latent.iter().all(|v| v.is_finite()));
        }
        // Ratings respect the declared universe and scale.
        let ratings = domain.ratings();
        prop_assert_eq!(ratings.n_items(), config.n_items);
        prop_assert_eq!(ratings.n_users(), config.n_users);
        prop_assert!(!ratings.is_empty());
        for r in ratings.ratings() {
            prop_assert!((r.item as usize) < config.n_items);
            prop_assert!((r.user as usize) < config.n_users);
            prop_assert!(r.score >= config.scale.min && r.score <= config.scale.max);
        }
        // Category label vectors agree with the per-item membership flags.
        for cat in 0..config.categories.len() {
            let labels = domain.labels_for_category(cat);
            prop_assert_eq!(labels.len(), config.n_items);
            let positives = domain.items_with_category(cat);
            prop_assert_eq!(positives.len(), labels.iter().filter(|&&l| l).count());
            for &item in &positives {
                prop_assert!(labels[item as usize]);
            }
        }
    }

    #[test]
    fn metadata_and_expert_panels_align_with_the_domain(seed in 0u64..200) {
        let domain = SyntheticDomain::generate(&DomainConfig::movies().scaled(0.03), seed).unwrap();
        let docs = MetadataGenerator::default().generate(&domain, seed);
        prop_assert_eq!(docs.len(), domain.items().len());
        prop_assert!(docs.iter().all(|d| !d.trim().is_empty()));

        let panel = ExpertPanel::standard(&domain, seed);
        for source in panel.sources() {
            prop_assert_eq!(source.labels.len(), domain.category_names().len());
            for cat in 0..domain.category_names().len() {
                prop_assert_eq!(source.category_labels(cat).len(), domain.items().len());
                // Each source disagrees with ground truth on at most ~3x its
                // nominal noise rate (loose bound, guards against systematic
                // label corruption bugs).
                let truth = domain.labels_for_category(cat);
                let disagreement = truth
                    .iter()
                    .zip(source.category_labels(cat))
                    .filter(|(a, b)| a != b)
                    .count() as f64
                    / truth.len() as f64;
                prop_assert!(disagreement <= source.noise_rate * 3.0 + 0.05);
            }
        }
        // The majority of three low-noise sources is closer to the truth
        // than the noisiest individual source.
        let truth = domain.labels_for_category(0);
        let majority = panel.majority(0);
        let agree = |labels: &[bool]| {
            truth.iter().zip(labels).filter(|(a, b)| a == b).count() as f64 / truth.len() as f64
        };
        let worst = panel
            .sources()
            .iter()
            .map(|s| agree(s.category_labels(0)))
            .fold(f64::MAX, f64::min);
        prop_assert!(agree(&majority) >= worst - 1e-9);
    }
}
