//! Cross-validation for choosing the embedding hyper-parameters.
//!
//! Section 3.3: *"In practice, the dimensionality d and the regularization
//! parameter λ are determined by means of cross-validation"*.  This module
//! provides a small k-fold cross-validation harness over the rating data that
//! reports the held-out RMSE per candidate configuration.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::error::PerceptualError;
use crate::euclidean::{EuclideanEmbeddingConfig, EuclideanEmbeddingModel};
use crate::ratings::{Rating, RatingDataset};
use crate::Result;

/// RMSE of one fold.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldResult {
    /// Index of the fold used as hold-out.
    pub fold: usize,
    /// RMSE on the held-out fold.
    pub validation_rmse: f64,
}

/// Aggregate result of a cross-validation run for one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossValidationReport {
    /// The evaluated configuration.
    pub config: EuclideanEmbeddingConfig,
    /// Per-fold results.
    pub folds: Vec<FoldResult>,
}

impl CrossValidationReport {
    /// Mean validation RMSE across folds.
    pub fn mean_rmse(&self) -> f64 {
        if self.folds.is_empty() {
            return f64::NAN;
        }
        self.folds.iter().map(|f| f.validation_rmse).sum::<f64>() / self.folds.len() as f64
    }
}

/// Runs `k`-fold cross-validation of the Euclidean embedding on `dataset`
/// for each candidate configuration and returns one report per candidate,
/// in input order.
pub fn cross_validate_euclidean(
    dataset: &RatingDataset,
    candidates: &[EuclideanEmbeddingConfig],
    k: usize,
    seed: u64,
) -> Result<Vec<CrossValidationReport>> {
    if k < 2 {
        return Err(PerceptualError::InvalidConfig(
            "k-fold CV requires k >= 2".into(),
        ));
    }
    if dataset.len() < k {
        return Err(PerceptualError::InvalidRatings(format!(
            "cannot split {} ratings into {k} folds",
            dataset.len()
        )));
    }
    if candidates.is_empty() {
        return Err(PerceptualError::InvalidConfig(
            "no candidate configurations given".into(),
        ));
    }

    // Assign each rating to a fold.
    let mut indices: Vec<usize> = (0..dataset.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    let fold_of: Vec<usize> = {
        let mut fold_of = vec![0usize; dataset.len()];
        for (pos, &idx) in indices.iter().enumerate() {
            fold_of[idx] = pos % k;
        }
        fold_of
    };

    let ratings = dataset.ratings();
    let mut reports = Vec::with_capacity(candidates.len());
    for config in candidates {
        let mut folds = Vec::with_capacity(k);
        for fold in 0..k {
            let mut train: Vec<Rating> = Vec::new();
            let mut validation: Vec<Rating> = Vec::new();
            for (i, r) in ratings.iter().enumerate() {
                if fold_of[i] == fold {
                    validation.push(*r);
                } else {
                    train.push(*r);
                }
            }
            if train.is_empty() || validation.is_empty() {
                return Err(PerceptualError::InvalidRatings(
                    "a cross-validation fold ended up empty".into(),
                ));
            }
            let train_set =
                RatingDataset::from_ratings(dataset.n_items(), dataset.n_users(), train)?;
            let validation_set =
                RatingDataset::from_ratings(dataset.n_items(), dataset.n_users(), validation)?;
            let model = EuclideanEmbeddingModel::train(&train_set, config)?;
            folds.push(FoldResult {
                fold,
                validation_rmse: model.rmse(&validation_set)?,
            });
        }
        reports.push(CrossValidationReport {
            config: config.clone(),
            folds,
        });
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ItemId, UserId};
    use rand::Rng;

    fn dataset(seed: u64) -> RatingDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_items = 20;
        let n_users = 30;
        let mut ratings = Vec::new();
        for u in 0..n_users {
            for m in 0..n_items {
                if rng.gen::<f64>() > 0.5 {
                    continue;
                }
                let agree = (u % 2) == (m % 2);
                let score = if agree { 4.5 } else { 1.5 } + rng.gen::<f64>() * 0.5;
                ratings.push(Rating::new(m as ItemId, u as UserId, score.clamp(1.0, 5.0)));
            }
        }
        RatingDataset::from_ratings(n_items, n_users, ratings).unwrap()
    }

    fn small_config(dimensions: usize) -> EuclideanEmbeddingConfig {
        EuclideanEmbeddingConfig {
            dimensions,
            epochs: 15,
            learning_rate: 0.02,
            ..Default::default()
        }
    }

    #[test]
    fn rejects_invalid_setups() {
        let d = dataset(1);
        assert!(cross_validate_euclidean(&d, &[small_config(4)], 1, 0).is_err());
        assert!(cross_validate_euclidean(&d, &[], 3, 0).is_err());
        let tiny = RatingDataset::from_ratings(1, 1, vec![Rating::new(0, 0, 3.0)]).unwrap();
        assert!(cross_validate_euclidean(&tiny, &[small_config(2)], 3, 0).is_err());
    }

    #[test]
    fn produces_one_report_per_candidate_with_k_folds() {
        let d = dataset(2);
        let candidates = vec![small_config(2), small_config(6)];
        let reports = cross_validate_euclidean(&d, &candidates, 3, 7).unwrap();
        assert_eq!(reports.len(), 2);
        for (report, cand) in reports.iter().zip(candidates.iter()) {
            assert_eq!(&report.config, cand);
            assert_eq!(report.folds.len(), 3);
            assert!(report.mean_rmse().is_finite());
            assert!(report.mean_rmse() > 0.0);
        }
    }

    #[test]
    fn reasonable_dimensionality_beats_trivial_one() {
        let d = dataset(3);
        let reports =
            cross_validate_euclidean(&d, &[small_config(1), small_config(8)], 3, 11).unwrap();
        // With the planted two-cluster structure, more dimensions should not
        // hurt; allow a small tolerance for SGD noise.
        assert!(reports[1].mean_rmse() <= reports[0].mean_rmse() + 0.1);
    }

    #[test]
    fn mean_rmse_of_empty_report_is_nan() {
        let report = CrossValidationReport {
            config: small_config(2),
            folds: vec![],
        };
        assert!(report.mean_rmse().is_nan());
    }
}
