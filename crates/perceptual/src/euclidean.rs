//! The Euclidean-embedding factor model (Section 3.3 of the paper).
//!
//! The model places every item `m` and every user `u` at coordinates
//! `a_m, b_u ∈ ℝ^d` and predicts the rating as
//!
//! ```text
//! r̂_{m,u} = μ + δ_m + δ_u − ‖a_m − b_u‖²
//! ```
//!
//! where `μ` is the global rating mean and `δ_m`, `δ_u` are item/user biases.
//! Parameters are estimated by stochastic gradient descent on the regularized
//! squared error
//!
//! ```text
//! Σ (r − r̂)² + λ (‖a_m − b_u‖⁴ + δ_m² + δ_u²),
//! ```
//!
//! the exact objective of the paper.  The paper reports that `d = 100` and
//! `λ = 0.02` work well across data sets; those are the defaults here.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::error::PerceptualError;
use crate::ratings::RatingDataset;
use crate::space::PerceptualSpace;
use crate::{ItemId, Result, UserId};

/// Hyper-parameters of the [`EuclideanEmbeddingModel`].
#[derive(Debug, Clone, PartialEq)]
pub struct EuclideanEmbeddingConfig {
    /// Dimensionality `d` of the perceptual space (paper default: 100).
    pub dimensions: usize,
    /// Regularization constant `λ` (paper default: 0.02).
    pub lambda: f64,
    /// Initial SGD learning rate.
    pub learning_rate: f64,
    /// Multiplicative learning-rate decay applied after each epoch.
    pub learning_rate_decay: f64,
    /// Number of SGD passes over the rating data.
    pub epochs: usize,
    /// Scale of the random initialization of the coordinates.
    pub init_scale: f64,
    /// Seed for initialization and shuffling.
    pub seed: u64,
}

impl Default for EuclideanEmbeddingConfig {
    fn default() -> Self {
        EuclideanEmbeddingConfig {
            dimensions: 100,
            lambda: 0.02,
            learning_rate: 0.01,
            learning_rate_decay: 0.95,
            epochs: 30,
            init_scale: 0.1,
            seed: 0x9e3779b9,
        }
    }
}

impl EuclideanEmbeddingConfig {
    fn validate(&self) -> Result<()> {
        if self.dimensions == 0 {
            return Err(PerceptualError::InvalidConfig(
                "dimensions must be >= 1".into(),
            ));
        }
        if self.lambda < 0.0 || !self.lambda.is_finite() {
            return Err(PerceptualError::InvalidConfig(
                "lambda must be non-negative".into(),
            ));
        }
        if self.learning_rate <= 0.0 || !self.learning_rate.is_finite() {
            return Err(PerceptualError::InvalidConfig(
                "learning_rate must be positive".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.learning_rate_decay) {
            return Err(PerceptualError::InvalidConfig(
                "learning_rate_decay must lie in (0, 1]".into(),
            ));
        }
        if self.epochs == 0 {
            return Err(PerceptualError::InvalidConfig("epochs must be >= 1".into()));
        }
        if self.init_scale <= 0.0 {
            return Err(PerceptualError::InvalidConfig(
                "init_scale must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingTrace {
    /// Training RMSE after each epoch.
    pub train_rmse: Vec<f64>,
}

/// A trained Euclidean-embedding factor model.
#[derive(Debug, Clone)]
pub struct EuclideanEmbeddingModel {
    dimensions: usize,
    global_mean: f64,
    item_coords: Vec<Vec<f64>>,
    user_coords: Vec<Vec<f64>>,
    item_bias: Vec<f64>,
    user_bias: Vec<f64>,
    trace: TrainingTrace,
}

impl EuclideanEmbeddingModel {
    /// Trains the model on a rating dataset.
    pub fn train(dataset: &RatingDataset, config: &EuclideanEmbeddingConfig) -> Result<Self> {
        config.validate()?;
        let d = config.dimensions;
        let mu = dataset.global_mean();
        let mut rng = StdRng::seed_from_u64(config.seed);

        let mut item_coords: Vec<Vec<f64>> = (0..dataset.n_items())
            .map(|_| {
                (0..d)
                    .map(|_| (rng.gen::<f64>() - 0.5) * config.init_scale)
                    .collect()
            })
            .collect();
        let mut user_coords: Vec<Vec<f64>> = (0..dataset.n_users())
            .map(|_| {
                (0..d)
                    .map(|_| (rng.gen::<f64>() - 0.5) * config.init_scale)
                    .collect()
            })
            .collect();
        // Biases start from the observed per-entity deviations from μ, which
        // speeds up convergence considerably.
        let mut item_bias: Vec<f64> = (0..dataset.n_items())
            .map(|i| dataset.item_mean(i as ItemId) - mu)
            .collect();
        let mut user_bias: Vec<f64> = (0..dataset.n_users())
            .map(|u| dataset.user_mean(u as UserId) - mu)
            .collect();

        let mut order: Vec<usize> = (0..dataset.len()).collect();
        let mut lr = config.learning_rate;
        let ratings = dataset.ratings();
        let mut train_rmse = Vec::with_capacity(config.epochs);

        for _epoch in 0..config.epochs {
            order.shuffle(&mut rng);
            let mut sse = 0.0;
            for &idx in &order {
                let r = &ratings[idx];
                let (m, u) = (r.item as usize, r.user as usize);
                let (sq_dist, err) = {
                    let a = &item_coords[m];
                    let b = &user_coords[u];
                    let sq_dist: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum();
                    let pred = mu + item_bias[m] + user_bias[u] - sq_dist;
                    (sq_dist, r.score - pred)
                };
                sse += err * err;

                // Bias updates: ∂L/∂δ = −2e + 2λδ.
                item_bias[m] += lr * 2.0 * (err - config.lambda * item_bias[m]);
                user_bias[u] += lr * 2.0 * (err - config.lambda * user_bias[u]);

                // Coordinate updates:
                //   ∂L/∂a = 4 (a − b) (e + λ ‖a − b‖²)
                //   ∂L/∂b = −∂L/∂a
                let step = lr * 4.0 * (err + config.lambda * sq_dist);
                let (a, b) = (&mut item_coords[m], &mut user_coords[u]);
                for k in 0..d {
                    let diff = a[k] - b[k];
                    a[k] -= step * diff;
                    b[k] += step * diff;
                }
            }
            let rmse = (sse / ratings.len() as f64).sqrt();
            if !rmse.is_finite() {
                return Err(PerceptualError::Numerical(
                    "SGD diverged: non-finite training error (reduce the learning rate)".into(),
                ));
            }
            train_rmse.push(rmse);
            lr *= config.learning_rate_decay;
        }

        Ok(EuclideanEmbeddingModel {
            dimensions: d,
            global_mean: mu,
            item_coords,
            user_coords,
            item_bias,
            user_bias,
            trace: TrainingTrace { train_rmse },
        })
    }

    /// Dimensionality of the embedding.
    pub fn dimensions(&self) -> usize {
        self.dimensions
    }

    /// Global rating mean `μ`.
    pub fn global_mean(&self) -> f64 {
        self.global_mean
    }

    /// Number of embedded items.
    pub fn n_items(&self) -> usize {
        self.item_coords.len()
    }

    /// Number of embedded users.
    pub fn n_users(&self) -> usize {
        self.user_coords.len()
    }

    /// Coordinates of an item.
    pub fn item_vector(&self, item: ItemId) -> Result<&[f64]> {
        self.item_coords
            .get(item as usize)
            .map(|v| v.as_slice())
            .ok_or_else(|| PerceptualError::UnknownId(format!("item {item}")))
    }

    /// Coordinates of a user.
    pub fn user_vector(&self, user: UserId) -> Result<&[f64]> {
        self.user_coords
            .get(user as usize)
            .map(|v| v.as_slice())
            .ok_or_else(|| PerceptualError::UnknownId(format!("user {user}")))
    }

    /// Bias `δ_m` of an item.
    pub fn item_bias(&self, item: ItemId) -> Result<f64> {
        self.item_bias
            .get(item as usize)
            .copied()
            .ok_or_else(|| PerceptualError::UnknownId(format!("item {item}")))
    }

    /// Bias `δ_u` of a user.
    pub fn user_bias(&self, user: UserId) -> Result<f64> {
        self.user_bias
            .get(user as usize)
            .copied()
            .ok_or_else(|| PerceptualError::UnknownId(format!("user {user}")))
    }

    /// Predicted rating of `item` by `user`.
    pub fn predict(&self, item: ItemId, user: UserId) -> Result<f64> {
        let a = self.item_vector(item)?;
        let b = self.user_vector(user)?;
        let sq_dist: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum();
        Ok(
            self.global_mean + self.item_bias[item as usize] + self.user_bias[user as usize]
                - sq_dist,
        )
    }

    /// RMSE of the model on an arbitrary rating set (items/users must exist).
    pub fn rmse(&self, dataset: &RatingDataset) -> Result<f64> {
        let mut sse = 0.0;
        for r in dataset.ratings() {
            let pred = self.predict(r.item, r.user)?;
            sse += (r.score - pred) * (r.score - pred);
        }
        Ok((sse / dataset.len() as f64).sqrt())
    }

    /// Per-epoch training statistics.
    pub fn trace(&self) -> &TrainingTrace {
        &self.trace
    }

    /// Extracts the item-side coordinates as a [`PerceptualSpace`].
    pub fn to_space(&self) -> PerceptualSpace {
        PerceptualSpace::new(self.item_coords.clone())
            .expect("item coordinates of a trained model are always consistent")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratings::Rating;

    /// Builds a synthetic dataset with two latent clusters of items: users of
    /// group A love cluster-0 items and dislike cluster-1 items, group B the
    /// opposite.  A well-trained embedding must place the two item clusters
    /// apart.
    fn clustered_dataset(n_items: usize, n_users: usize, seed: u64) -> (RatingDataset, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let item_cluster: Vec<bool> = (0..n_items).map(|i| i % 2 == 0).collect();
        let mut ratings = Vec::new();
        for u in 0..n_users {
            let user_likes_cluster0 = u % 2 == 0;
            for (m, &in_cluster0) in item_cluster.iter().enumerate() {
                if rng.gen::<f64>() > 0.6 {
                    continue; // sparsity
                }
                let agree = in_cluster0 == user_likes_cluster0;
                let base = if agree { 4.5 } else { 1.5 };
                let score = (base + rng.gen::<f64>() - 0.5).clamp(1.0, 5.0);
                ratings.push(Rating::new(m as ItemId, u as UserId, score));
            }
        }
        (
            RatingDataset::from_ratings(n_items, n_users, ratings).unwrap(),
            item_cluster,
        )
    }

    fn quick_config() -> EuclideanEmbeddingConfig {
        EuclideanEmbeddingConfig {
            dimensions: 8,
            epochs: 40,
            learning_rate: 0.02,
            ..Default::default()
        }
    }

    #[test]
    fn config_validation() {
        let d = clustered_dataset(4, 4, 1).0;
        let bad = |f: fn(&mut EuclideanEmbeddingConfig)| {
            let mut c = quick_config();
            f(&mut c);
            EuclideanEmbeddingModel::train(&d, &c).is_err()
        };
        assert!(bad(|c| c.dimensions = 0));
        assert!(bad(|c| c.lambda = -1.0));
        assert!(bad(|c| c.learning_rate = 0.0));
        assert!(bad(|c| c.learning_rate_decay = 1.5));
        assert!(bad(|c| c.epochs = 0));
        assert!(bad(|c| c.init_scale = 0.0));
    }

    #[test]
    fn training_reduces_rmse() {
        let (data, _) = clustered_dataset(30, 60, 2);
        let model = EuclideanEmbeddingModel::train(&data, &quick_config()).unwrap();
        let trace = &model.trace().train_rmse;
        assert!(trace.len() == 40);
        assert!(
            trace.last().unwrap() < &(trace.first().unwrap() * 0.8),
            "RMSE did not improve: {:?} -> {:?}",
            trace.first(),
            trace.last()
        );
        // Final fit should be decent on this near-deterministic data.
        assert!(trace.last().unwrap() < &1.0);
    }

    #[test]
    fn prediction_reflects_preference_structure() {
        let (data, item_cluster) = clustered_dataset(20, 40, 3);
        let model = EuclideanEmbeddingModel::train(&data, &quick_config()).unwrap();
        // User 0 likes cluster 0: predicted ratings for cluster-0 items must
        // on average exceed those for cluster-1 items.
        let mut liked = Vec::new();
        let mut disliked = Vec::new();
        for m in 0..20u32 {
            let p = model.predict(m, 0).unwrap();
            if item_cluster[m as usize] {
                liked.push(p);
            } else {
                disliked.push(p);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&liked) > mean(&disliked) + 0.5);
    }

    #[test]
    fn embedding_separates_item_clusters() {
        let (data, item_cluster) = clustered_dataset(24, 60, 4);
        let model = EuclideanEmbeddingModel::train(&data, &quick_config()).unwrap();
        // Average intra-cluster distance must be smaller than inter-cluster.
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for i in 0..24u32 {
            for j in (i + 1)..24u32 {
                let a = model.item_vector(i).unwrap();
                let b = model.item_vector(j).unwrap();
                let dist: f64 = a
                    .iter()
                    .zip(b.iter())
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f64>()
                    .sqrt();
                if item_cluster[i as usize] == item_cluster[j as usize] {
                    intra.push(dist);
                } else {
                    inter.push(dist);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&intra) < mean(&inter),
            "intra {} not below inter {}",
            mean(&intra),
            mean(&inter)
        );
    }

    #[test]
    fn validation_rmse_is_reasonable() {
        let (data, _) = clustered_dataset(40, 80, 5);
        let (train, holdout) = data.split(0.2, 6).unwrap();
        let model = EuclideanEmbeddingModel::train(&train, &quick_config()).unwrap();
        let val_rmse = model.rmse(&holdout).unwrap();
        // The rating scale is 1–5 with strong structure; the model must beat
        // a naive "always predict the mean" baseline (std ≈ 1.5).
        assert!(val_rmse < 1.2, "validation RMSE {val_rmse}");
    }

    #[test]
    fn accessors_and_unknown_ids() {
        let (data, _) = clustered_dataset(6, 6, 7);
        let model = EuclideanEmbeddingModel::train(&data, &quick_config()).unwrap();
        assert_eq!(model.dimensions(), 8);
        assert_eq!(model.n_items(), 6);
        assert_eq!(model.n_users(), 6);
        assert_eq!(model.item_vector(0).unwrap().len(), 8);
        assert_eq!(model.user_vector(0).unwrap().len(), 8);
        assert!(model.item_bias(0).is_ok());
        assert!(model.user_bias(0).is_ok());
        assert!(model.item_vector(100).is_err());
        assert!(model.user_vector(100).is_err());
        assert!(model.item_bias(100).is_err());
        assert!(model.user_bias(100).is_err());
        assert!(model.predict(100, 0).is_err());
        assert!(model.predict(0, 100).is_err());
        assert!((model.global_mean() - data.global_mean()).abs() < 1e-12);
    }

    #[test]
    fn to_space_exports_item_coordinates() {
        let (data, _) = clustered_dataset(10, 10, 8);
        let model = EuclideanEmbeddingModel::train(&data, &quick_config()).unwrap();
        let space = model.to_space();
        assert_eq!(space.len(), 10);
        assert_eq!(space.dimensions(), 8);
        assert_eq!(space.coordinates(3).unwrap(), model.item_vector(3).unwrap());
    }

    #[test]
    fn training_is_deterministic_for_fixed_seed() {
        let (data, _) = clustered_dataset(12, 12, 9);
        let a = EuclideanEmbeddingModel::train(&data, &quick_config()).unwrap();
        let b = EuclideanEmbeddingModel::train(&data, &quick_config()).unwrap();
        assert_eq!(a.item_vector(5).unwrap(), b.item_vector(5).unwrap());
        assert_eq!(a.trace().train_rmse, b.trace().train_rmse);
    }
}
