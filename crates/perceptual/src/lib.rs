//! # perceptual — perceptual spaces built from Social-Web rating data
//!
//! This crate implements Section 3 of *"Pushing the Boundaries of
//! Crowd-enabled Databases with Query-driven Schema Expansion"* (VLDB 2012):
//! turning a large collection of `⟨item, user, score⟩` ratings into a
//! d-dimensional **perceptual space** in which each item's coordinates
//! summarize how the crowd of the Social Web perceives it.
//!
//! Two factor models are provided:
//!
//! * [`EuclideanEmbeddingModel`] — the paper's model of choice: the predicted
//!   rating is `μ + δ_item + δ_user − ‖a_item − b_user‖²`, trained by
//!   stochastic gradient descent on the regularized squared error
//!   (regularizing `d⁴` and the biases, exactly as in Section 3.3).
//! * [`SvdModel`] — the classic dot-product ("SVD") factor model used as a
//!   baseline; highly effective for rating prediction but without a
//!   meaningful item–item distance.
//!
//! The item coordinates of a trained model form a [`PerceptualSpace`] which
//! supports nearest-neighbour queries (Table 2), export of per-item feature
//! vectors for downstream classifiers, and correlation analysis against a
//! reference similarity (the Pearson 0.52 result of Section 4.2).
//!
//! ```
//! use perceptual::{RatingDataset, Rating, EuclideanEmbeddingConfig, EuclideanEmbeddingModel};
//!
//! let ratings = vec![
//!     Rating::new(0, 0, 5.0), Rating::new(0, 1, 4.0),
//!     Rating::new(1, 0, 1.0), Rating::new(1, 1, 2.0),
//!     Rating::new(2, 2, 3.0),
//! ];
//! let dataset = RatingDataset::from_ratings(3, 3, ratings).unwrap();
//! let config = EuclideanEmbeddingConfig { dimensions: 2, epochs: 30, ..Default::default() };
//! let model = EuclideanEmbeddingModel::train(&dataset, &config).unwrap();
//! let space = model.to_space();
//! assert_eq!(space.len(), 3);
//! assert_eq!(space.dimensions(), 2);
//! ```

#![warn(missing_docs)]

pub mod cross_validation;
pub mod error;
pub mod euclidean;
pub mod ratings;
pub mod space;
pub mod svd;

pub use cross_validation::{cross_validate_euclidean, CrossValidationReport, FoldResult};
pub use error::PerceptualError;
pub use euclidean::{EuclideanEmbeddingConfig, EuclideanEmbeddingModel, TrainingTrace};
pub use ratings::{Rating, RatingDataset, RatingScale};
pub use space::{Neighbor, PerceptualSpace};
pub use svd::{SvdConfig, SvdModel};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, PerceptualError>;

/// Identifier of an item (movie, restaurant, board game, …) inside a
/// [`RatingDataset`]; dense indices in `0..n_items`.
pub type ItemId = u32;

/// Identifier of a user inside a [`RatingDataset`]; dense indices in
/// `0..n_users`.
pub type UserId = u32;
