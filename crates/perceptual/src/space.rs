//! The perceptual space: item coordinates plus the query operations the
//! crowd-enabled database needs.
//!
//! * nearest-neighbour queries (Table 2 of the paper shows the five nearest
//!   neighbours of *Rocky*, *Dirty Dancing*, and *The Birds*),
//! * export of per-item feature vectors for downstream SVM training
//!   (Sections 3.4, 4.2, 4.3),
//! * item–item distance statistics and correlation against a reference
//!   similarity (the "Pearson 0.52 against the user consensus" analysis of
//!   Section 4.2).

use serde::{Deserialize, Serialize};

use crate::error::PerceptualError;
use crate::{ItemId, Result};

/// A neighbour returned by [`PerceptualSpace::nearest_neighbors`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Neighbor {
    /// The neighbouring item.
    pub item: ItemId,
    /// Euclidean distance to the query item.
    pub distance: f64,
}

/// A d-dimensional coordinate space over items.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerceptualSpace {
    dimensions: usize,
    coordinates: Vec<Vec<f64>>,
}

impl PerceptualSpace {
    /// Creates a space from per-item coordinate vectors.
    ///
    /// All vectors must share the same non-zero dimensionality.
    pub fn new(coordinates: Vec<Vec<f64>>) -> Result<Self> {
        if coordinates.is_empty() {
            return Err(PerceptualError::InvalidConfig(
                "a perceptual space needs at least one item".into(),
            ));
        }
        let dimensions = coordinates[0].len();
        if dimensions == 0 {
            return Err(PerceptualError::InvalidConfig(
                "coordinates must have at least one dimension".into(),
            ));
        }
        if coordinates.iter().any(|c| c.len() != dimensions) {
            return Err(PerceptualError::InvalidConfig(
                "all coordinate vectors must have the same dimensionality".into(),
            ));
        }
        if coordinates.iter().any(|c| c.iter().any(|v| !v.is_finite())) {
            return Err(PerceptualError::InvalidConfig(
                "coordinates contain non-finite values".into(),
            ));
        }
        Ok(PerceptualSpace {
            dimensions,
            coordinates,
        })
    }

    /// Number of items in the space.
    pub fn len(&self) -> usize {
        self.coordinates.len()
    }

    /// True when the space contains no items (cannot occur after
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.coordinates.is_empty()
    }

    /// Dimensionality `d` of the space.
    pub fn dimensions(&self) -> usize {
        self.dimensions
    }

    /// Coordinates of one item.
    pub fn coordinates(&self, item: ItemId) -> Result<&[f64]> {
        self.coordinates
            .get(item as usize)
            .map(|v| v.as_slice())
            .ok_or_else(|| PerceptualError::UnknownId(format!("item {item}")))
    }

    /// All coordinates, indexable by item id.
    pub fn all_coordinates(&self) -> &[Vec<f64>] {
        &self.coordinates
    }

    /// Clones the coordinate vectors of a subset of items, in the order of
    /// `items` — the feature matrix handed to the SVM extractor.
    pub fn feature_matrix(&self, items: &[ItemId]) -> Result<Vec<Vec<f64>>> {
        items
            .iter()
            .map(|&i| self.coordinates(i).map(|c| c.to_vec()))
            .collect()
    }

    /// Euclidean distance between two items.
    pub fn distance(&self, a: ItemId, b: ItemId) -> Result<f64> {
        let ca = self.coordinates(a)?;
        let cb = self.coordinates(b)?;
        Ok(ca
            .iter()
            .zip(cb.iter())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt())
    }

    /// The `k` nearest neighbours of `item` (excluding the item itself),
    /// ordered by increasing distance.
    pub fn nearest_neighbors(&self, item: ItemId, k: usize) -> Result<Vec<Neighbor>> {
        let query = self.coordinates(item)?;
        let mut neighbors: Vec<Neighbor> = self
            .coordinates
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != item as usize)
            .map(|(i, c)| Neighbor {
                item: i as ItemId,
                distance: query
                    .iter()
                    .zip(c.iter())
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f64>()
                    .sqrt(),
            })
            .collect();
        neighbors.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        neighbors.truncate(k);
        Ok(neighbors)
    }

    /// Pearson correlation between the pairwise distances in this space and a
    /// reference dissimilarity, evaluated on the given item pairs.
    ///
    /// The reference values must be *dissimilarities* (larger = less similar)
    /// so that a positive correlation means the space agrees with the
    /// reference — this mirrors the user-consensus analysis of Section 4.2.
    pub fn distance_correlation(&self, pairs: &[(ItemId, ItemId, f64)]) -> Result<f64> {
        if pairs.len() < 2 {
            return Err(PerceptualError::InvalidConfig(
                "need at least two pairs to compute a correlation".into(),
            ));
        }
        let mut ours = Vec::with_capacity(pairs.len());
        let mut reference = Vec::with_capacity(pairs.len());
        for &(a, b, ref_dissimilarity) in pairs {
            ours.push(self.distance(a, b)?);
            reference.push(ref_dissimilarity);
        }
        Ok(pearson(&ours, &reference))
    }

    /// Mean and standard deviation of all pairwise distances (sampled over
    /// every pair when the space is small; callers with huge spaces should
    /// subsample the item set first).
    pub fn distance_statistics(&self) -> (f64, f64) {
        let n = self.coordinates.len();
        let mut distances = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let d = self.coordinates[i]
                    .iter()
                    .zip(self.coordinates[j].iter())
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f64>()
                    .sqrt();
                distances.push(d);
            }
        }
        if distances.is_empty() {
            return (0.0, 0.0);
        }
        let mean = distances.iter().sum::<f64>() / distances.len() as f64;
        let var = distances
            .iter()
            .map(|d| (d - mean) * (d - mean))
            .sum::<f64>()
            / distances.len() as f64;
        (mean, var.sqrt())
    }

    /// Projects the space onto its first two dimensions — used by the
    /// Figure 1 harness to print an illustrative 2-D layout.
    pub fn two_dimensional_projection(&self) -> Vec<(f64, f64)> {
        self.coordinates
            .iter()
            .map(|c| (c[0], *c.get(1).unwrap_or(&0.0)))
            .collect()
    }
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        cov += (x - mean_x) * (y - mean_y);
        var_x += (x - mean_x) * (x - mean_x);
        var_y += (y - mean_y) * (y - mean_y);
    }
    if var_x <= 0.0 || var_y <= 0.0 {
        return 0.0;
    }
    cov / (var_x.sqrt() * var_y.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_space() -> PerceptualSpace {
        // Items at positions 0, 1, 2, 10 on a line.
        PerceptualSpace::new(vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![2.0, 0.0],
            vec![10.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn construction_validates_coordinates() {
        assert!(PerceptualSpace::new(vec![]).is_err());
        assert!(PerceptualSpace::new(vec![vec![]]).is_err());
        assert!(PerceptualSpace::new(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(PerceptualSpace::new(vec![vec![f64::INFINITY]]).is_err());
        assert!(PerceptualSpace::new(vec![vec![1.0, 2.0]]).is_ok());
    }

    #[test]
    fn basic_accessors() {
        let s = grid_space();
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.dimensions(), 2);
        assert_eq!(s.coordinates(1).unwrap(), &[1.0, 0.0]);
        assert!(s.coordinates(9).is_err());
        assert_eq!(s.all_coordinates().len(), 4);
    }

    #[test]
    fn distances_are_euclidean() {
        let s = grid_space();
        assert_eq!(s.distance(0, 2).unwrap(), 2.0);
        assert_eq!(s.distance(0, 0).unwrap(), 0.0);
        assert!(s.distance(0, 9).is_err());
    }

    #[test]
    fn nearest_neighbors_excludes_self_and_orders_by_distance() {
        let s = grid_space();
        let nn = s.nearest_neighbors(0, 2).unwrap();
        assert_eq!(nn.len(), 2);
        assert_eq!(nn[0].item, 1);
        assert_eq!(nn[1].item, 2);
        assert!(nn[0].distance <= nn[1].distance);
        // Requesting more neighbours than exist returns all others.
        let all = s.nearest_neighbors(3, 10).unwrap();
        assert_eq!(all.len(), 3);
        assert!(s.nearest_neighbors(9, 1).is_err());
    }

    #[test]
    fn feature_matrix_preserves_order() {
        let s = grid_space();
        let m = s.feature_matrix(&[2, 0]).unwrap();
        assert_eq!(m, vec![vec![2.0, 0.0], vec![0.0, 0.0]]);
        assert!(s.feature_matrix(&[0, 99]).is_err());
    }

    #[test]
    fn distance_correlation_agrees_with_reference() {
        let s = grid_space();
        // Reference dissimilarity identical to true distances → correlation 1.
        let pairs = vec![(0u32, 1u32, 1.0), (0, 2, 2.0), (0, 3, 10.0), (1, 3, 9.0)];
        let c = s.distance_correlation(&pairs).unwrap();
        assert!((c - 1.0).abs() < 1e-12);
        // Anti-correlated reference.
        let pairs_neg = vec![(0u32, 1u32, 10.0), (0, 2, 9.0), (0, 3, 1.0), (1, 3, 2.0)];
        assert!(s.distance_correlation(&pairs_neg).unwrap() < -0.9);
        assert!(s.distance_correlation(&pairs[..1]).is_err());
    }

    #[test]
    fn distance_statistics_are_sane() {
        let s = grid_space();
        let (mean, std) = s.distance_statistics();
        assert!(mean > 0.0);
        assert!(std > 0.0);
        let single = PerceptualSpace::new(vec![vec![1.0]]).unwrap();
        assert_eq!(single.distance_statistics(), (0.0, 0.0));
    }

    #[test]
    fn two_dimensional_projection_takes_first_two_dims() {
        let s = PerceptualSpace::new(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(s.two_dimensional_projection(), vec![(1.0, 2.0), (4.0, 5.0)]);
        let one_d = PerceptualSpace::new(vec![vec![7.0]]).unwrap();
        assert_eq!(one_d.two_dimensional_projection(), vec![(7.0, 0.0)]);
    }
}
