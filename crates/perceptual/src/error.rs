//! Error types for the perceptual-space crate.

use std::fmt;

/// Errors produced while building rating datasets or training factor models.
#[derive(Debug, Clone, PartialEq)]
pub enum PerceptualError {
    /// The rating data is structurally invalid (empty, out-of-range ids, …).
    InvalidRatings(String),
    /// A model hyper-parameter is outside its valid range.
    InvalidConfig(String),
    /// A lookup referenced an item or user that does not exist.
    UnknownId(String),
    /// A numerical routine diverged or produced non-finite values.
    Numerical(String),
}

impl fmt::Display for PerceptualError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerceptualError::InvalidRatings(msg) => write!(f, "invalid rating data: {msg}"),
            PerceptualError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            PerceptualError::UnknownId(msg) => write!(f, "unknown identifier: {msg}"),
            PerceptualError::Numerical(msg) => write!(f, "numerical error: {msg}"),
        }
    }
}

impl std::error::Error for PerceptualError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_context() {
        assert!(PerceptualError::InvalidRatings("no ratings".into())
            .to_string()
            .contains("no ratings"));
        assert!(PerceptualError::InvalidConfig("d = 0".into())
            .to_string()
            .contains("d = 0"));
        assert!(PerceptualError::UnknownId("item 99".into())
            .to_string()
            .contains("item 99"));
        assert!(PerceptualError::Numerical("diverged".into())
            .to_string()
            .contains("diverged"));
    }
}
