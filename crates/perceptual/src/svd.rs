//! The dot-product ("SVD") factor model.
//!
//! Section 3.3 of the paper introduces the SVD model as the most elementary
//! factor model: `r̂_{m,u} = ⟨a_m, b_u⟩` with mean-squared-error loss and L2
//! regularization.  It is highly effective for collaborative filtering, but —
//! as the paper argues — it is unclear how a meaningful item–item similarity
//! could be derived from it.  It is retained here as the baseline for the
//! design-choice ablation benches.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::error::PerceptualError;
use crate::ratings::RatingDataset;
use crate::space::PerceptualSpace;
use crate::{ItemId, Result, UserId};

/// Hyper-parameters of the [`SvdModel`].
#[derive(Debug, Clone, PartialEq)]
pub struct SvdConfig {
    /// Number of latent factors.
    pub dimensions: usize,
    /// L2 regularization constant.
    pub lambda: f64,
    /// Initial SGD learning rate.
    pub learning_rate: f64,
    /// Multiplicative learning-rate decay per epoch.
    pub learning_rate_decay: f64,
    /// Number of SGD epochs.
    pub epochs: usize,
    /// Scale of random initialization.
    pub init_scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SvdConfig {
    fn default() -> Self {
        SvdConfig {
            dimensions: 100,
            lambda: 0.02,
            learning_rate: 0.01,
            learning_rate_decay: 0.95,
            epochs: 30,
            init_scale: 0.1,
            seed: 0x51d5eed,
        }
    }
}

impl SvdConfig {
    fn validate(&self) -> Result<()> {
        if self.dimensions == 0 {
            return Err(PerceptualError::InvalidConfig(
                "dimensions must be >= 1".into(),
            ));
        }
        if self.lambda < 0.0 {
            return Err(PerceptualError::InvalidConfig(
                "lambda must be non-negative".into(),
            ));
        }
        if self.learning_rate <= 0.0 {
            return Err(PerceptualError::InvalidConfig(
                "learning_rate must be positive".into(),
            ));
        }
        if self.epochs == 0 {
            return Err(PerceptualError::InvalidConfig("epochs must be >= 1".into()));
        }
        Ok(())
    }
}

/// A trained dot-product factor model.
#[derive(Debug, Clone)]
pub struct SvdModel {
    dimensions: usize,
    global_mean: f64,
    item_factors: Vec<Vec<f64>>,
    user_factors: Vec<Vec<f64>>,
    train_rmse: Vec<f64>,
}

impl SvdModel {
    /// Trains the model with plain SGD on `r ≈ μ + ⟨a_m, b_u⟩` (the global
    /// mean is subtracted so factors model deviations only).
    pub fn train(dataset: &RatingDataset, config: &SvdConfig) -> Result<Self> {
        config.validate()?;
        let d = config.dimensions;
        let mu = dataset.global_mean();
        let mut rng = StdRng::seed_from_u64(config.seed);

        let mut item_factors: Vec<Vec<f64>> = (0..dataset.n_items())
            .map(|_| {
                (0..d)
                    .map(|_| (rng.gen::<f64>() - 0.5) * config.init_scale)
                    .collect()
            })
            .collect();
        let mut user_factors: Vec<Vec<f64>> = (0..dataset.n_users())
            .map(|_| {
                (0..d)
                    .map(|_| (rng.gen::<f64>() - 0.5) * config.init_scale)
                    .collect()
            })
            .collect();

        let mut order: Vec<usize> = (0..dataset.len()).collect();
        let mut lr = config.learning_rate;
        let ratings = dataset.ratings();
        let mut train_rmse = Vec::with_capacity(config.epochs);

        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            let mut sse = 0.0;
            for &idx in &order {
                let r = &ratings[idx];
                let (m, u) = (r.item as usize, r.user as usize);
                let pred = mu
                    + item_factors[m]
                        .iter()
                        .zip(user_factors[u].iter())
                        .map(|(a, b)| a * b)
                        .sum::<f64>();
                let err = r.score - pred;
                sse += err * err;
                for k in 0..d {
                    let a = item_factors[m][k];
                    let b = user_factors[u][k];
                    item_factors[m][k] += lr * (err * b - config.lambda * a);
                    user_factors[u][k] += lr * (err * a - config.lambda * b);
                }
            }
            let rmse = (sse / ratings.len() as f64).sqrt();
            if !rmse.is_finite() {
                return Err(PerceptualError::Numerical(
                    "SGD diverged: non-finite training error".into(),
                ));
            }
            train_rmse.push(rmse);
            lr *= config.learning_rate_decay;
        }

        Ok(SvdModel {
            dimensions: d,
            global_mean: mu,
            item_factors,
            user_factors,
            train_rmse,
        })
    }

    /// Number of latent factors.
    pub fn dimensions(&self) -> usize {
        self.dimensions
    }

    /// Predicted rating of `item` by `user`.
    pub fn predict(&self, item: ItemId, user: UserId) -> Result<f64> {
        let a = self
            .item_factors
            .get(item as usize)
            .ok_or_else(|| PerceptualError::UnknownId(format!("item {item}")))?;
        let b = self
            .user_factors
            .get(user as usize)
            .ok_or_else(|| PerceptualError::UnknownId(format!("user {user}")))?;
        Ok(self.global_mean + a.iter().zip(b.iter()).map(|(x, y)| x * y).sum::<f64>())
    }

    /// Latent factors of an item.
    pub fn item_vector(&self, item: ItemId) -> Result<&[f64]> {
        self.item_factors
            .get(item as usize)
            .map(|v| v.as_slice())
            .ok_or_else(|| PerceptualError::UnknownId(format!("item {item}")))
    }

    /// RMSE on an arbitrary rating set.
    pub fn rmse(&self, dataset: &RatingDataset) -> Result<f64> {
        let mut sse = 0.0;
        for r in dataset.ratings() {
            let pred = self.predict(r.item, r.user)?;
            sse += (r.score - pred) * (r.score - pred);
        }
        Ok((sse / dataset.len() as f64).sqrt())
    }

    /// Per-epoch training RMSE.
    pub fn train_rmse(&self) -> &[f64] {
        &self.train_rmse
    }

    /// Item factors exported as a [`PerceptualSpace`] (used by the ablation
    /// bench comparing SVD and Euclidean embeddings for classification).
    pub fn to_space(&self) -> PerceptualSpace {
        PerceptualSpace::new(self.item_factors.clone())
            .expect("item factors of a trained model are always consistent")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratings::Rating;

    fn preference_dataset(seed: u64) -> RatingDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_items = 30;
        let n_users = 50;
        let mut ratings = Vec::new();
        for u in 0..n_users {
            for m in 0..n_items {
                if rng.gen::<f64>() > 0.5 {
                    continue;
                }
                let affinity = ((u % 3) == (m % 3)) as u8 as f64;
                let score = (2.0 + 2.5 * affinity + rng.gen::<f64>() * 0.5).clamp(1.0, 5.0);
                ratings.push(Rating::new(m as ItemId, u as UserId, score));
            }
        }
        RatingDataset::from_ratings(n_items, n_users, ratings).unwrap()
    }

    fn quick_config() -> SvdConfig {
        SvdConfig {
            dimensions: 6,
            epochs: 50,
            learning_rate: 0.02,
            ..Default::default()
        }
    }

    #[test]
    fn config_is_validated() {
        let d = preference_dataset(1);
        assert!(SvdModel::train(
            &d,
            &SvdConfig {
                dimensions: 0,
                ..quick_config()
            }
        )
        .is_err());
        assert!(SvdModel::train(
            &d,
            &SvdConfig {
                lambda: -0.1,
                ..quick_config()
            }
        )
        .is_err());
        assert!(SvdModel::train(
            &d,
            &SvdConfig {
                learning_rate: 0.0,
                ..quick_config()
            }
        )
        .is_err());
        assert!(SvdModel::train(
            &d,
            &SvdConfig {
                epochs: 0,
                ..quick_config()
            }
        )
        .is_err());
    }

    #[test]
    fn training_reduces_rmse() {
        let d = preference_dataset(2);
        let model = SvdModel::train(&d, &quick_config()).unwrap();
        let trace = model.train_rmse();
        assert!(trace.last().unwrap() < trace.first().unwrap());
        assert!(trace.last().unwrap() < &0.9);
    }

    #[test]
    fn predictions_follow_affinity_structure() {
        let d = preference_dataset(3);
        let model = SvdModel::train(&d, &quick_config()).unwrap();
        // User 0 (group 0) prefers items ≡ 0 mod 3.
        let liked = model.predict(0, 0).unwrap();
        let disliked = model.predict(1, 0).unwrap();
        assert!(liked > disliked);
    }

    #[test]
    fn unknown_ids_are_rejected() {
        let d = preference_dataset(4);
        let model = SvdModel::train(&d, &quick_config()).unwrap();
        assert!(model.predict(1000, 0).is_err());
        assert!(model.predict(0, 1000).is_err());
        assert!(model.item_vector(1000).is_err());
    }

    #[test]
    fn space_export_matches_dimensions() {
        let d = preference_dataset(5);
        let model = SvdModel::train(&d, &quick_config()).unwrap();
        let space = model.to_space();
        assert_eq!(space.len(), 30);
        assert_eq!(space.dimensions(), model.dimensions());
    }

    #[test]
    fn holdout_rmse_beats_mean_baseline() {
        let d = preference_dataset(6);
        let (train, holdout) = d.split(0.2, 7).unwrap();
        let model = SvdModel::train(&train, &quick_config()).unwrap();
        // Baseline: always predict the global mean.
        let mu = train.global_mean();
        let baseline = (holdout
            .ratings()
            .iter()
            .map(|r| (r.score - mu) * (r.score - mu))
            .sum::<f64>()
            / holdout.len() as f64)
            .sqrt();
        let model_rmse = model.rmse(&holdout).unwrap();
        assert!(
            model_rmse < baseline,
            "model {model_rmse} vs baseline {baseline}"
        );
    }
}
