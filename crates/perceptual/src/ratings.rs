//! Sparse rating datasets.
//!
//! A [`RatingDataset`] stores the `⟨item, user, score⟩` triples the paper
//! obtains from the Social Web (Netflix-style star ratings, Yelp restaurant
//! ratings, BoardGameGeek ratings, …) together with per-item and per-user
//! indexes.  Typical densities are 1–2 % of the full item × user matrix
//! (Section 3.3), so only the observed triples are stored.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::error::PerceptualError;
use crate::{ItemId, Result, UserId};

/// The numeric scale ratings are expressed on (e.g. 1–5 Netflix stars or the
/// 1–10 IMDb scale).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatingScale {
    /// Smallest expressible rating.
    pub min: f64,
    /// Largest expressible rating.
    pub max: f64,
}

impl RatingScale {
    /// The 1–5 star scale used by Netflix and Yelp.
    pub const FIVE_STAR: RatingScale = RatingScale { min: 1.0, max: 5.0 };
    /// The 1–10 scale used by IMDb and BoardGameGeek.
    pub const TEN_POINT: RatingScale = RatingScale {
        min: 1.0,
        max: 10.0,
    };

    /// Clamps a raw score onto the scale.
    pub fn clamp(&self, score: f64) -> f64 {
        score.clamp(self.min, self.max)
    }

    /// Width of the scale.
    pub fn range(&self) -> f64 {
        self.max - self.min
    }
}

impl Default for RatingScale {
    fn default() -> Self {
        RatingScale::FIVE_STAR
    }
}

/// One observed rating: user `user` gave item `item` the score `score`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rating {
    /// The rated item.
    pub item: ItemId,
    /// The rating user.
    pub user: UserId,
    /// The numeric score.
    pub score: f64,
}

impl Rating {
    /// Convenience constructor.
    pub fn new(item: ItemId, user: UserId, score: f64) -> Self {
        Rating { item, user, score }
    }
}

/// A sparse collection of ratings over `n_items` items and `n_users` users.
#[derive(Debug, Clone)]
pub struct RatingDataset {
    n_items: usize,
    n_users: usize,
    ratings: Vec<Rating>,
    /// Indices into `ratings`, grouped by item.
    by_item: Vec<Vec<u32>>,
    /// Indices into `ratings`, grouped by user.
    by_user: Vec<Vec<u32>>,
    global_mean: f64,
}

impl RatingDataset {
    /// Builds a dataset from raw triples.
    ///
    /// Errors when `ratings` is empty, when an id is out of range, or when a
    /// score is non-finite.
    pub fn from_ratings(n_items: usize, n_users: usize, ratings: Vec<Rating>) -> Result<Self> {
        if ratings.is_empty() {
            return Err(PerceptualError::InvalidRatings(
                "the rating collection is empty".into(),
            ));
        }
        if n_items == 0 || n_users == 0 {
            return Err(PerceptualError::InvalidRatings(
                "the dataset must declare at least one item and one user".into(),
            ));
        }
        let mut by_item = vec![Vec::new(); n_items];
        let mut by_user = vec![Vec::new(); n_users];
        let mut sum = 0.0;
        for (idx, r) in ratings.iter().enumerate() {
            if (r.item as usize) >= n_items {
                return Err(PerceptualError::InvalidRatings(format!(
                    "rating #{idx} references item {} but only {n_items} items were declared",
                    r.item
                )));
            }
            if (r.user as usize) >= n_users {
                return Err(PerceptualError::InvalidRatings(format!(
                    "rating #{idx} references user {} but only {n_users} users were declared",
                    r.user
                )));
            }
            if !r.score.is_finite() {
                return Err(PerceptualError::InvalidRatings(format!(
                    "rating #{idx} has a non-finite score"
                )));
            }
            by_item[r.item as usize].push(idx as u32);
            by_user[r.user as usize].push(idx as u32);
            sum += r.score;
        }
        let global_mean = sum / ratings.len() as f64;
        Ok(RatingDataset {
            n_items,
            n_users,
            ratings,
            by_item,
            by_user,
            global_mean,
        })
    }

    /// Number of items declared.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Number of users declared.
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Number of observed ratings.
    pub fn len(&self) -> usize {
        self.ratings.len()
    }

    /// True when the dataset holds no ratings (cannot occur after
    /// construction, but useful for generic code).
    pub fn is_empty(&self) -> bool {
        self.ratings.is_empty()
    }

    /// All observed ratings.
    pub fn ratings(&self) -> &[Rating] {
        &self.ratings
    }

    /// Mean of all observed scores (the `μ` of the factor models).
    pub fn global_mean(&self) -> f64 {
        self.global_mean
    }

    /// Fraction of the full item × user matrix that is observed.
    pub fn density(&self) -> f64 {
        self.ratings.len() as f64 / (self.n_items as f64 * self.n_users as f64)
    }

    /// Ratings given to `item`.
    pub fn ratings_of_item(&self, item: ItemId) -> Result<impl Iterator<Item = &Rating>> {
        let idx = item as usize;
        if idx >= self.n_items {
            return Err(PerceptualError::UnknownId(format!("item {item}")));
        }
        Ok(self.by_item[idx]
            .iter()
            .map(move |&i| &self.ratings[i as usize]))
    }

    /// Ratings given by `user`.
    pub fn ratings_of_user(&self, user: UserId) -> Result<impl Iterator<Item = &Rating>> {
        let idx = user as usize;
        if idx >= self.n_users {
            return Err(PerceptualError::UnknownId(format!("user {user}")));
        }
        Ok(self.by_user[idx]
            .iter()
            .map(move |&i| &self.ratings[i as usize]))
    }

    /// Number of ratings per item.
    pub fn item_rating_count(&self, item: ItemId) -> usize {
        self.by_item.get(item as usize).map_or(0, |v| v.len())
    }

    /// Number of ratings per user.
    pub fn user_rating_count(&self, user: UserId) -> usize {
        self.by_user.get(user as usize).map_or(0, |v| v.len())
    }

    /// Mean score of an item; falls back to the global mean when the item has
    /// no ratings.
    pub fn item_mean(&self, item: ItemId) -> f64 {
        let idxs = match self.by_item.get(item as usize) {
            Some(v) if !v.is_empty() => v,
            _ => return self.global_mean,
        };
        idxs.iter()
            .map(|&i| self.ratings[i as usize].score)
            .sum::<f64>()
            / idxs.len() as f64
    }

    /// Mean score of a user; falls back to the global mean when the user has
    /// no ratings.
    pub fn user_mean(&self, user: UserId) -> f64 {
        let idxs = match self.by_user.get(user as usize) {
            Some(v) if !v.is_empty() => v,
            _ => return self.global_mean,
        };
        idxs.iter()
            .map(|&i| self.ratings[i as usize].score)
            .sum::<f64>()
            / idxs.len() as f64
    }

    /// Splits the ratings into a training and a held-out validation set.
    ///
    /// `holdout_fraction` of the ratings (rounded, at least one and at most
    /// `len() - 1`) become validation data.  Item/user universes are shared
    /// between the two datasets.
    pub fn split(
        &self,
        holdout_fraction: f64,
        seed: u64,
    ) -> Result<(RatingDataset, RatingDataset)> {
        if !(0.0..1.0).contains(&holdout_fraction) {
            return Err(PerceptualError::InvalidConfig(
                "holdout_fraction must lie in [0, 1)".into(),
            ));
        }
        if self.ratings.len() < 2 {
            return Err(PerceptualError::InvalidRatings(
                "need at least two ratings to split".into(),
            ));
        }
        let mut indices: Vec<usize> = (0..self.ratings.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        indices.shuffle(&mut rng);
        let n_holdout = ((self.ratings.len() as f64) * holdout_fraction)
            .round()
            .clamp(1.0, (self.ratings.len() - 1) as f64) as usize;
        let (holdout_idx, train_idx) = indices.split_at(n_holdout);
        let train: Vec<Rating> = train_idx.iter().map(|&i| self.ratings[i]).collect();
        let holdout: Vec<Rating> = holdout_idx.iter().map(|&i| self.ratings[i]).collect();
        Ok((
            RatingDataset::from_ratings(self.n_items, self.n_users, train)?,
            RatingDataset::from_ratings(self.n_items, self.n_users, holdout)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RatingDataset {
        RatingDataset::from_ratings(
            3,
            4,
            vec![
                Rating::new(0, 0, 5.0),
                Rating::new(0, 1, 4.0),
                Rating::new(1, 1, 2.0),
                Rating::new(1, 2, 1.0),
                Rating::new(2, 3, 3.0),
                Rating::new(2, 0, 3.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_inputs() {
        assert!(RatingDataset::from_ratings(2, 2, vec![]).is_err());
        assert!(RatingDataset::from_ratings(0, 2, vec![Rating::new(0, 0, 1.0)]).is_err());
        assert!(RatingDataset::from_ratings(2, 0, vec![Rating::new(0, 0, 1.0)]).is_err());
        assert!(RatingDataset::from_ratings(2, 2, vec![Rating::new(2, 0, 1.0)]).is_err());
        assert!(RatingDataset::from_ratings(2, 2, vec![Rating::new(0, 2, 1.0)]).is_err());
        assert!(RatingDataset::from_ratings(2, 2, vec![Rating::new(0, 0, f64::NAN)]).is_err());
    }

    #[test]
    fn basic_statistics() {
        let d = small();
        assert_eq!(d.n_items(), 3);
        assert_eq!(d.n_users(), 4);
        assert_eq!(d.len(), 6);
        assert!(!d.is_empty());
        assert!((d.global_mean() - 3.0).abs() < 1e-12);
        assert!((d.density() - 0.5).abs() < 1e-12);
        assert_eq!(d.item_rating_count(0), 2);
        assert_eq!(d.user_rating_count(1), 2);
        assert_eq!(d.item_rating_count(99), 0);
        assert_eq!(d.user_rating_count(99), 0);
    }

    #[test]
    fn per_entity_means() {
        let d = small();
        assert!((d.item_mean(0) - 4.5).abs() < 1e-12);
        assert!((d.item_mean(1) - 1.5).abs() < 1e-12);
        assert!((d.user_mean(0) - 4.0).abs() < 1e-12);
        // Unknown ids fall back to the global mean.
        assert!((d.item_mean(77) - 3.0).abs() < 1e-12);
        assert!((d.user_mean(77) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn per_entity_iterators() {
        let d = small();
        let item0: Vec<f64> = d.ratings_of_item(0).unwrap().map(|r| r.score).collect();
        assert_eq!(item0, vec![5.0, 4.0]);
        let user1: Vec<f64> = d.ratings_of_user(1).unwrap().map(|r| r.score).collect();
        assert_eq!(user1, vec![4.0, 2.0]);
        assert!(d.ratings_of_item(3).is_err());
        assert!(d.ratings_of_user(4).is_err());
    }

    #[test]
    fn split_partitions_ratings() {
        let d = small();
        let (train, holdout) = d.split(0.33, 42).unwrap();
        assert_eq!(train.len() + holdout.len(), d.len());
        assert_eq!(holdout.len(), 2);
        assert_eq!(train.n_items(), d.n_items());
        assert_eq!(train.n_users(), d.n_users());
        assert!(d.split(1.0, 1).is_err());
        assert!(d.split(-0.1, 1).is_err());
    }

    #[test]
    fn rating_scales() {
        assert_eq!(RatingScale::FIVE_STAR.clamp(7.0), 5.0);
        assert_eq!(RatingScale::FIVE_STAR.clamp(0.0), 1.0);
        assert_eq!(RatingScale::TEN_POINT.range(), 9.0);
        assert_eq!(RatingScale::default(), RatingScale::FIVE_STAR);
    }
}
