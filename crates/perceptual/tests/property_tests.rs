//! Property-based tests for rating datasets, the factor models, and the
//! perceptual space.

use proptest::prelude::*;

use perceptual::{
    EuclideanEmbeddingConfig, EuclideanEmbeddingModel, PerceptualSpace, Rating, RatingDataset,
};

fn rating_set(max_items: u32, max_users: u32) -> impl Strategy<Value = Vec<Rating>> {
    prop::collection::vec(
        (0..max_items, 0..max_users, 1u8..=5).prop_map(|(item, user, score)| Rating {
            item,
            user,
            score: score as f64,
        }),
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dataset_statistics_are_consistent(ratings in rating_set(20, 30)) {
        let n = ratings.len();
        let dataset = RatingDataset::from_ratings(20, 30, ratings.clone()).unwrap();
        prop_assert_eq!(dataset.len(), n);
        // Global mean lies within the rating scale.
        prop_assert!(dataset.global_mean() >= 1.0 && dataset.global_mean() <= 5.0);
        // Per-item counts sum to the total.
        let total: usize = (0..20).map(|i| dataset.item_rating_count(i)).sum();
        prop_assert_eq!(total, n);
        let total_users: usize = (0..30).map(|u| dataset.user_rating_count(u)).sum();
        prop_assert_eq!(total_users, n);
        // Density is the ratio of observed to possible ratings.
        prop_assert!((dataset.density() - n as f64 / 600.0).abs() < 1e-12);
        // Item means lie within the observed range.
        for i in 0..20u32 {
            let mean = dataset.item_mean(i);
            prop_assert!((1.0 - 1e-9..=5.0 + 1e-9).contains(&mean));
        }
    }

    #[test]
    fn split_partitions_without_loss(ratings in rating_set(15, 15), fraction in 0.1f64..0.9, seed in 0u64..100) {
        prop_assume!(ratings.len() >= 2);
        let dataset = RatingDataset::from_ratings(15, 15, ratings).unwrap();
        let (train, holdout) = dataset.split(fraction, seed).unwrap();
        prop_assert_eq!(train.len() + holdout.len(), dataset.len());
        prop_assert!(!train.is_empty());
        prop_assert!(!holdout.is_empty());
        prop_assert_eq!(train.n_items(), dataset.n_items());
        prop_assert_eq!(holdout.n_users(), dataset.n_users());
    }

    #[test]
    fn embedding_training_never_panics_and_predictions_are_finite(
        ratings in rating_set(12, 12),
        dims in 1usize..6,
    ) {
        let dataset = RatingDataset::from_ratings(12, 12, ratings).unwrap();
        let config = EuclideanEmbeddingConfig {
            dimensions: dims,
            epochs: 5,
            learning_rate: 0.01,
            ..Default::default()
        };
        let model = EuclideanEmbeddingModel::train(&dataset, &config).unwrap();
        prop_assert_eq!(model.dimensions(), dims);
        for item in 0..12u32 {
            for user in 0..12u32 {
                let prediction = model.predict(item, user).unwrap();
                prop_assert!(prediction.is_finite());
            }
        }
        // The exported space has one coordinate vector per item.
        let space = model.to_space();
        prop_assert_eq!(space.len(), 12);
        prop_assert_eq!(space.dimensions(), dims);
    }

    #[test]
    fn space_distances_form_a_metric_and_knn_is_sorted(
        coords in prop::collection::vec(prop::collection::vec(-5.0f64..5.0, 3..=3), 2..30),
        k in 1usize..8,
    ) {
        let n = coords.len();
        let space = PerceptualSpace::new(coords).unwrap();
        // Symmetry and identity on a few pairs.
        for i in 0..n.min(5) as u32 {
            for j in 0..n.min(5) as u32 {
                let dij = space.distance(i, j).unwrap();
                let dji = space.distance(j, i).unwrap();
                prop_assert!((dij - dji).abs() < 1e-9);
                if i == j {
                    prop_assert!(dij < 1e-12);
                }
            }
        }
        // k-NN lists are sorted, self-free, and of the right length.
        let neighbors = space.nearest_neighbors(0, k).unwrap();
        prop_assert_eq!(neighbors.len(), k.min(n - 1));
        for w in neighbors.windows(2) {
            prop_assert!(w[0].distance <= w[1].distance + 1e-12);
        }
        prop_assert!(neighbors.iter().all(|nb| nb.item != 0));
    }
}
