//! The binary encoding of durable records.
//!
//! A deliberately small, schema-less, little-endian format in the spirit of
//! `bincode`: fixed-width integers, IEEE-754 doubles, length-prefixed
//! strings and sequences, one tag byte per enum variant.  The workspace's
//! vendored `serde` is a no-op stand-in (the build environment is offline),
//! so the record types in [`crate::records`] encode themselves explicitly
//! through [`Encoder`] / [`Decoder`] instead of deriving — which also keeps
//! the on-disk format an auditable, versioned contract rather than an
//! accident of struct layout.
//!
//! Integrity is a layer above: the WAL frames every encoded record with a
//! length prefix and a [`crc32`] checksum, and the snapshot file checksums
//! its whole payload.

use crate::{Result, StorageError};

/// Appends primitive values to a growing byte buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an IEEE-754 double.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a boolean as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends a sequence length prefix; the caller encodes the elements.
    pub fn seq_len(&mut self, n: usize) {
        self.u64(n as u64);
    }
}

/// Reads primitive values back out of an encoded byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&end| end <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(StorageError::Corrupt(format!(
                "record truncated: wanted {n} bytes at offset {} of {}",
                self.pos,
                self.buf.len()
            ))),
        }
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an IEEE-754 double.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a boolean byte, rejecting anything but 0 and 1.
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StorageError::Corrupt(format!(
                "invalid boolean byte {other:#04x}"
            ))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let n = self.seq_len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| StorageError::Corrupt(format!("invalid UTF-8 in string: {e}")))
    }

    /// Reads a sequence length prefix, bounds-checked against the bytes
    /// actually remaining so a corrupt length cannot trigger a huge
    /// allocation.
    pub fn seq_len(&mut self) -> Result<usize> {
        let n = self.u64()?;
        if n > self.buf.len() as u64 {
            return Err(StorageError::Corrupt(format!(
                "sequence length {n} exceeds the {} bytes of the record",
                self.buf.len()
            )));
        }
        Ok(n as usize)
    }
}

/// The CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) of `bytes` —
/// the checksum the WAL frames and the snapshot payload are verified with.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in bytes {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_primitives() {
        let mut e = Encoder::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX);
        e.i64(-42);
        e.f64(1.5);
        e.bool(true);
        e.str("crowd €£");
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.f64().unwrap(), 1.5);
        assert!(d.bool().unwrap());
        assert_eq!(d.str().unwrap(), "crowd €£");
        assert!(d.is_exhausted());
    }

    #[test]
    fn truncation_and_bad_bytes_are_corruption() {
        let mut d = Decoder::new(&[1, 2]);
        assert!(matches!(d.u32(), Err(StorageError::Corrupt(_))));
        let mut d = Decoder::new(&[9]);
        assert!(matches!(d.bool(), Err(StorageError::Corrupt(_))));
        // A length prefix claiming more bytes than the record holds.
        let mut e = Encoder::new();
        e.u64(1 << 40);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(d.seq_len(), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The standard check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }
}
