//! The durable record schema.
//!
//! Two kinds of payloads travel through the storage engine:
//!
//! * [`WalRecord`] — one committed change: catalog DDL, a row mutation,
//!   a materialized crowd column (per-item values plus per-item
//!   [`CellMark`] provenance with confidence and cost share), judgment
//!   cache writes, and cache invalidation.
//! * [`SnapshotImage`] — the whole-database image a checkpoint writes:
//!   every table, every provenance ledger, the incomplete-column set, the
//!   judgment cache (entries *and* effectiveness counters), and the crowd
//!   round counter (so reopened databases keep drawing fresh round seeds
//!   instead of replaying old ones).
//!
//! Every type encodes itself explicitly through [`Encoder`] / [`Decoder`]
//! (see [`crate::codec`] for why), with one tag byte per enum variant.
//! Tags are append-only: new variants take new numbers, existing numbers
//! are never reused, so old files stay readable.
//!
//! Crowd-layer concepts (judgments, provenance) appear here as plain data
//! mirrors — [`JudgmentEntry`], [`CellMark`], [`MissingCause`] — so this
//! crate does not depend on `crowddb_core`; the core converts to and from
//! its richer types when logging and replaying.

use relational::{Column, DataType, PartitionSpec, Schema, Table, Value};

use crate::codec::{Decoder, Encoder};
use crate::{Result, StorageError};

/// A perceptual-space item id (mirrors `perceptual::ItemId` without the
/// dependency).
pub type ItemId = u32;

fn corrupt(what: &str, tag: u8) -> StorageError {
    StorageError::Corrupt(format!("unknown {what} tag {tag:#04x}"))
}

fn encode_value(e: &mut Encoder, value: &Value) {
    match value {
        Value::Null => e.u8(0),
        Value::Integer(i) => {
            e.u8(1);
            e.i64(*i);
        }
        Value::Float(f) => {
            e.u8(2);
            e.f64(*f);
        }
        Value::Text(s) => {
            e.u8(3);
            e.str(s);
        }
        Value::Boolean(b) => {
            e.u8(4);
            e.bool(*b);
        }
    }
}

fn decode_value(d: &mut Decoder<'_>) -> Result<Value> {
    Ok(match d.u8()? {
        0 => Value::Null,
        1 => Value::Integer(d.i64()?),
        2 => Value::Float(d.f64()?),
        3 => Value::Text(d.str()?),
        4 => Value::Boolean(d.bool()?),
        tag => return Err(corrupt("value", tag)),
    })
}

/// Encodes a [`PartitionSpec`] with one tag byte per variant — shared by
/// the manifest's partitioned-tables section and the `MetaPartition` WAL
/// record, so the two can never drift apart.
pub fn encode_partition_spec(e: &mut Encoder, spec: &PartitionSpec) {
    match spec {
        PartitionSpec::Single => e.u8(0),
        PartitionSpec::Hash { n } => {
            e.u8(1);
            e.u32(*n as u32);
        }
        PartitionSpec::Range { bounds } => {
            e.u8(2);
            e.seq_len(bounds.len());
            for bound in bounds {
                e.i64(*bound);
            }
        }
    }
}

/// Decodes a [`PartitionSpec`] written by [`encode_partition_spec`].
pub fn decode_partition_spec(d: &mut Decoder<'_>) -> Result<PartitionSpec> {
    Ok(match d.u8()? {
        0 => PartitionSpec::Single,
        1 => PartitionSpec::Hash {
            n: d.u32()? as usize,
        },
        2 => {
            let n = d.seq_len()?;
            let mut bounds = Vec::with_capacity(n);
            for _ in 0..n {
                bounds.push(d.i64()?);
            }
            PartitionSpec::Range { bounds }
        }
        tag => return Err(corrupt("partition spec", tag)),
    })
}

fn encode_data_type(e: &mut Encoder, ty: DataType) {
    e.u8(match ty {
        DataType::Integer => 0,
        DataType::Float => 1,
        DataType::Text => 2,
        DataType::Boolean => 3,
    });
}

fn decode_data_type(d: &mut Decoder<'_>) -> Result<DataType> {
    Ok(match d.u8()? {
        0 => DataType::Integer,
        1 => DataType::Float,
        2 => DataType::Text,
        3 => DataType::Boolean,
        tag => return Err(corrupt("data type", tag)),
    })
}

fn encode_schema(e: &mut Encoder, schema: &Schema) {
    e.seq_len(schema.len());
    for column in schema.columns() {
        e.str(&column.name);
        encode_data_type(e, column.data_type);
        e.bool(column.nullable);
    }
}

fn decode_schema(d: &mut Decoder<'_>) -> Result<Schema> {
    let n = d.seq_len()?;
    let mut columns = Vec::with_capacity(n);
    for _ in 0..n {
        let name = d.str()?;
        let data_type = decode_data_type(d)?;
        let nullable = d.bool()?;
        let column = if nullable {
            Column::new(name, data_type)
        } else {
            Column::not_null(name, data_type)
        };
        columns.push(column);
    }
    Schema::new(columns)
        .map_err(|e| StorageError::Corrupt(format!("invalid schema in record: {e}")))
}

/// A full table — name, schema, and rows — as stored in snapshots and
/// `CreateTable` WAL records.
#[derive(Debug, Clone, PartialEq)]
pub struct TableImage {
    /// Table name (lower-cased, as the catalog stores it).
    pub name: String,
    /// The schema.
    pub schema: Schema,
    /// All rows, in table order.
    pub rows: Vec<Vec<Value>>,
}

impl TableImage {
    /// Captures a live table.
    pub fn of(table: &Table) -> Self {
        TableImage {
            name: table.name().to_string(),
            schema: table.schema().clone(),
            rows: table.rows().to_vec(),
        }
    }

    /// Rebuilds the live table.
    pub fn into_table(self) -> Result<Table> {
        let mut table = Table::new(self.name, self.schema);
        for row in self.rows {
            table
                .insert_row(row)
                .map_err(|e| StorageError::Corrupt(format!("invalid row in table image: {e}")))?;
        }
        Ok(table)
    }

    fn encode(&self, e: &mut Encoder) {
        e.str(&self.name);
        encode_schema(e, &self.schema);
        e.seq_len(self.rows.len());
        for row in &self.rows {
            e.seq_len(row.len());
            for value in row {
                encode_value(e, value);
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self> {
        let name = d.str()?;
        let schema = decode_schema(d)?;
        let n_rows = d.seq_len()?;
        let mut rows = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            let n_cells = d.seq_len()?;
            let mut row = Vec::with_capacity(n_cells);
            for _ in 0..n_cells {
                row.push(decode_value(d)?);
            }
            rows.push(row);
        }
        Ok(TableImage { name, schema, rows })
    }
}

/// One aggregated judgment-cache entry (mirrors
/// `crowddb_core::CachedJudgment`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JudgmentEntry {
    /// The majority verdict; `None` records a tie (also worth keeping —
    /// asking again would cost the same and likely tie again).
    pub verdict: Option<bool>,
    /// Raw judgments aggregated into the verdict.
    pub judgments: u64,
    /// Dollars paid for those judgments.
    pub cost: f64,
    /// Inter-worker agreement behind the verdict.
    pub confidence: f64,
}

impl JudgmentEntry {
    fn encode(&self, e: &mut Encoder) {
        match self.verdict {
            None => e.u8(0),
            Some(false) => e.u8(1),
            Some(true) => e.u8(2),
        }
        e.u64(self.judgments);
        e.f64(self.cost);
        e.f64(self.confidence);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self> {
        let verdict = match d.u8()? {
            0 => None,
            1 => Some(false),
            2 => Some(true),
            tag => return Err(corrupt("verdict", tag)),
        };
        Ok(JudgmentEntry {
            verdict,
            judgments: d.u64()?,
            cost: d.f64()?,
            confidence: d.f64()?,
        })
    }
}

/// Why a materialized cell has no value (mirrors
/// `crowddb_core::MissingReason`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissingCause {
    /// The query's crowd budget ran out before the item was acquired.
    BudgetExhausted,
    /// A cache-only query found no purchased judgment for the item.
    NoCachedJudgment,
    /// The verdict's agreement lies below the query's quality floor.
    BelowQualityFloor,
    /// The crowd tied on the item.
    NoMajority,
    /// The item has no coordinates in the perceptual space.
    OutOfSpace,
    /// The row was never covered by an expansion of this column.
    NotExpanded,
    /// The row's id column holds no usable item id.
    NoItemId,
}

impl MissingCause {
    fn encode(&self, e: &mut Encoder) {
        e.u8(match self {
            MissingCause::BudgetExhausted => 0,
            MissingCause::NoCachedJudgment => 1,
            MissingCause::BelowQualityFloor => 2,
            MissingCause::NoMajority => 3,
            MissingCause::OutOfSpace => 4,
            MissingCause::NotExpanded => 5,
            MissingCause::NoItemId => 6,
        });
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self> {
        Ok(match d.u8()? {
            0 => MissingCause::BudgetExhausted,
            1 => MissingCause::NoCachedJudgment,
            2 => MissingCause::BelowQualityFloor,
            3 => MissingCause::NoMajority,
            4 => MissingCause::OutOfSpace,
            5 => MissingCause::NotExpanded,
            6 => MissingCause::NoItemId,
            tag => return Err(corrupt("missing cause", tag)),
        })
    }
}

/// The pedigree of one materialized cell (mirrors
/// `crowddb_core::CellProvenance`), persisted so a reopened database
/// reports *identical* per-cell provenance — confidence and cost share
/// included — for answers bought before the restart.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CellMark {
    /// A stored (factual) value.
    Stored,
    /// A crowd majority verdict the recording query paid for.
    CrowdDerived {
        /// Inter-worker agreement behind the verdict.
        confidence: f64,
        /// Dollars of the query's crowd spend attributed to the item.
        cost_share: f64,
    },
    /// A judgment-cache hit (paid for by an earlier or concurrent query).
    CacheHit {
        /// Inter-worker agreement behind the reused verdict.
        confidence: f64,
    },
    /// An extractor (SVM) extrapolation over the perceptual space.
    Extracted,
    /// The cell is `NULL` for the recorded reason.
    Missing {
        /// Why the value is absent.
        cause: MissingCause,
    },
}

impl CellMark {
    fn encode(&self, e: &mut Encoder) {
        match self {
            CellMark::Stored => e.u8(0),
            CellMark::CrowdDerived {
                confidence,
                cost_share,
            } => {
                e.u8(1);
                e.f64(*confidence);
                e.f64(*cost_share);
            }
            CellMark::CacheHit { confidence } => {
                e.u8(2);
                e.f64(*confidence);
            }
            CellMark::Extracted => e.u8(3),
            CellMark::Missing { cause } => {
                e.u8(4);
                cause.encode(e);
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self> {
        Ok(match d.u8()? {
            0 => CellMark::Stored,
            1 => CellMark::CrowdDerived {
                confidence: d.f64()?,
                cost_share: d.f64()?,
            },
            2 => CellMark::CacheHit {
                confidence: d.f64()?,
            },
            3 => CellMark::Extracted,
            4 => CellMark::Missing {
                cause: MissingCause::decode(d)?,
            },
            tag => return Err(corrupt("cell mark", tag)),
        })
    }
}

fn encode_items<T>(e: &mut Encoder, items: &[(ItemId, T)], encode: impl Fn(&mut Encoder, &T)) {
    e.seq_len(items.len());
    for (item, payload) in items {
        e.u32(*item);
        encode(e, payload);
    }
}

fn decode_items<T>(
    d: &mut Decoder<'_>,
    decode: impl Fn(&mut Decoder<'_>) -> Result<T>,
) -> Result<Vec<(ItemId, T)>> {
    let n = d.seq_len()?;
    let mut items = Vec::with_capacity(n);
    for _ in 0..n {
        let item = d.u32()?;
        items.push((item, decode(d)?));
    }
    Ok(items)
}

/// One committed change, as framed into the write-ahead log.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A table registered with the catalog (DDL), rows included — covers
    /// both `CrowdDb::create_table` and domain loading.
    CreateTable(TableImage),
    /// A relational mutation (`INSERT` / `UPDATE` / `DELETE` / DDL issued
    /// as SQL), replayed by re-executing the statement text: mutations
    /// never dispatch crowd work, so re-execution against the recovered
    /// catalog state is deterministic.
    Mutation {
        /// The statement text, exactly as executed.
        sql: String,
    },
    /// One materialized (expanded) column: every item's value, its
    /// provenance mark, and whether the column still carries recoverable
    /// holes a later query may pay to fill.
    MaterializeColumn {
        /// The table (lower-cased).
        table: String,
        /// The column (lower-cased).
        column: String,
        /// The column's declared type.
        data_type: DataType,
        /// Per-item values, sorted by item id.
        values: Vec<(ItemId, Value)>,
        /// The provenance ledger of the column, sorted by item id;
        /// `None` for materializations that keep no ledger (numeric
        /// gold-sample expansion).
        ledger: Option<Vec<(ItemId, CellMark)>>,
        /// True when the column has budget- or cache-shaped holes.
        incomplete: bool,
    },
    /// Direct cell overwrites of an existing column, keyed by item id
    /// (repair rounds).
    SetCells {
        /// The table (lower-cased).
        table: String,
        /// The column (lower-cased).
        column: String,
        /// Per-item replacement values, sorted by item id.
        values: Vec<(ItemId, Value)>,
    },
    /// A batch of judgment-cache writes (one crowd question's ingest, or a
    /// repair round's refresh).
    CachePut {
        /// The table key (lower-cased).
        table: String,
        /// The attribute concept key (lower-cased).
        attribute: String,
        /// The entries, sorted by item id.
        entries: Vec<(ItemId, JudgmentEntry)>,
        /// The database's crowd-round counter after the write — replay
        /// takes the maximum, so a reopened database keeps drawing fresh
        /// round seeds instead of repeating pre-crash ones.
        rounds: u64,
    },
    /// All cached judgments of one `(table, attribute)` dropped.
    CacheInvalidate {
        /// The table key (lower-cased).
        table: String,
        /// The attribute concept key (lower-cased).
        attribute: String,
    },
    /// The first record of every single-partition log: configuration the
    /// replayer depends on.  Recovery rejects a directory whose recorded
    /// `id_column` differs from the opening configuration — item-keyed
    /// records would otherwise be routed through the wrong id → row
    /// mapping.
    Meta {
        /// The id-column name the writing database was configured with.
        id_column: String,
    },
    /// The first record of every *partitioned* segment: the
    /// single-partition [`WalRecord::Meta`] stamp plus which partition of
    /// which spec the segment belongs to, so replay can re-route a
    /// multi-partition statement's rows to this segment's slice even when
    /// the manifest has not recorded the table yet (a table created after
    /// the last checkpoint).
    MetaPartition {
        /// The id-column name the writing database was configured with.
        id_column: String,
        /// The partition index this segment holds.
        partition: u32,
        /// The table's partitioning spec.
        spec: PartitionSpec,
    },
}

impl WalRecord {
    /// Encodes the record to its framed payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            WalRecord::CreateTable(image) => {
                e.u8(0);
                image.encode(&mut e);
            }
            WalRecord::Mutation { sql } => {
                e.u8(1);
                e.str(sql);
            }
            WalRecord::MaterializeColumn {
                table,
                column,
                data_type,
                values,
                ledger,
                incomplete,
            } => {
                e.u8(2);
                e.str(table);
                e.str(column);
                encode_data_type(&mut e, *data_type);
                encode_items(&mut e, values, encode_value);
                match ledger {
                    None => e.bool(false),
                    Some(marks) => {
                        e.bool(true);
                        encode_items(&mut e, marks, |e, m| m.encode(e));
                    }
                }
                e.bool(*incomplete);
            }
            WalRecord::SetCells {
                table,
                column,
                values,
            } => {
                e.u8(3);
                e.str(table);
                e.str(column);
                encode_items(&mut e, values, encode_value);
            }
            WalRecord::CachePut {
                table,
                attribute,
                entries,
                rounds,
            } => {
                e.u8(4);
                e.str(table);
                e.str(attribute);
                encode_items(&mut e, entries, |e, j| j.encode(e));
                e.u64(*rounds);
            }
            WalRecord::CacheInvalidate { table, attribute } => {
                e.u8(5);
                e.str(table);
                e.str(attribute);
            }
            WalRecord::Meta { id_column } => {
                e.u8(6);
                e.str(id_column);
            }
            WalRecord::MetaPartition {
                id_column,
                partition,
                spec,
            } => {
                e.u8(7);
                e.str(id_column);
                e.u32(*partition);
                encode_partition_spec(&mut e, spec);
            }
        }
        e.into_bytes()
    }

    /// Decodes one record from its payload bytes, rejecting trailing
    /// garbage.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut d = Decoder::new(bytes);
        let record = match d.u8()? {
            0 => WalRecord::CreateTable(TableImage::decode(&mut d)?),
            1 => WalRecord::Mutation { sql: d.str()? },
            2 => {
                let table = d.str()?;
                let column = d.str()?;
                let data_type = decode_data_type(&mut d)?;
                let values = decode_items(&mut d, decode_value)?;
                let ledger = if d.bool()? {
                    Some(decode_items(&mut d, CellMark::decode)?)
                } else {
                    None
                };
                let incomplete = d.bool()?;
                WalRecord::MaterializeColumn {
                    table,
                    column,
                    data_type,
                    values,
                    ledger,
                    incomplete,
                }
            }
            3 => WalRecord::SetCells {
                table: d.str()?,
                column: d.str()?,
                values: decode_items(&mut d, decode_value)?,
            },
            4 => WalRecord::CachePut {
                table: d.str()?,
                attribute: d.str()?,
                entries: decode_items(&mut d, JudgmentEntry::decode)?,
                rounds: d.u64()?,
            },
            5 => WalRecord::CacheInvalidate {
                table: d.str()?,
                attribute: d.str()?,
            },
            6 => WalRecord::Meta {
                id_column: d.str()?,
            },
            7 => WalRecord::MetaPartition {
                id_column: d.str()?,
                partition: d.u32()?,
                spec: decode_partition_spec(&mut d)?,
            },
            tag => return Err(corrupt("WAL record", tag)),
        };
        if !d.is_exhausted() {
            return Err(StorageError::Corrupt(
                "trailing bytes after WAL record".into(),
            ));
        }
        Ok(record)
    }
}

/// One judgment-cache group inside a snapshot: the `(table, attribute)`
/// key and its entries, sorted by item id.
pub type CacheGroup = (String, String, Vec<(ItemId, JudgmentEntry)>);

/// The judgment cache as a snapshot stores it: entries grouped by
/// `(table, attribute)` plus the effectiveness counters (the WAL only
/// carries entries, so the counters are checkpoint-granular).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CacheImage {
    /// Entries per `(table, attribute)` group, each sorted by item id.
    pub groups: Vec<CacheGroup>,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that went to the crowd.
    pub misses: u64,
    /// Dollars not re-spent thanks to hits.
    pub cost_saved: f64,
}

/// One column's provenance ledger inside a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerImage {
    /// The table key (lower-cased).
    pub table: String,
    /// The column key (lower-cased).
    pub column: String,
    /// Per-item provenance marks, sorted by item id.
    pub marks: Vec<(ItemId, CellMark)>,
}

/// A `(table, column)` pair flagged as carrying recoverable holes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnImage {
    /// The table key (lower-cased).
    pub table: String,
    /// The column key (lower-cased).
    pub column: String,
}

/// The point-in-time image of the whole database a checkpoint writes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnapshotImage {
    /// Every catalog table, sorted by name.
    pub tables: Vec<TableImage>,
    /// Every provenance ledger, sorted by `(table, column)`.
    pub ledgers: Vec<LedgerImage>,
    /// The incomplete-column set, sorted.
    pub incomplete: Vec<ColumnImage>,
    /// The judgment cache.
    pub cache: CacheImage,
    /// The crowd-round counter at checkpoint time.
    pub crowd_rounds: u64,
    /// The id-column name the writing database was configured with;
    /// recovery rejects an open under a different configuration.
    pub id_column: String,
    /// Generation of the WAL this snapshot supersedes a prefix of.
    pub wal_generation: u64,
    /// How many leading records of that generation's log are already
    /// folded into this snapshot.  Replay skips them **iff** the log still
    /// carries `wal_generation` — the crash window between snapshot
    /// rename and log truncation must not double-apply non-idempotent
    /// records.
    pub wal_records_applied: u64,
}

impl SnapshotImage {
    /// Encodes the image to its payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.seq_len(self.tables.len());
        for table in &self.tables {
            table.encode(&mut e);
        }
        e.seq_len(self.ledgers.len());
        for ledger in &self.ledgers {
            e.str(&ledger.table);
            e.str(&ledger.column);
            encode_items(&mut e, &ledger.marks, |e, m| m.encode(e));
        }
        e.seq_len(self.incomplete.len());
        for column in &self.incomplete {
            e.str(&column.table);
            e.str(&column.column);
        }
        e.seq_len(self.cache.groups.len());
        for (table, attribute, entries) in &self.cache.groups {
            e.str(table);
            e.str(attribute);
            encode_items(&mut e, entries, |e, j| j.encode(e));
        }
        e.u64(self.cache.hits);
        e.u64(self.cache.misses);
        e.f64(self.cache.cost_saved);
        e.u64(self.crowd_rounds);
        e.str(&self.id_column);
        e.u64(self.wal_generation);
        e.u64(self.wal_records_applied);
        e.into_bytes()
    }

    /// Decodes an image from its payload bytes, rejecting trailing garbage.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut d = Decoder::new(bytes);
        let n_tables = d.seq_len()?;
        let mut tables = Vec::with_capacity(n_tables);
        for _ in 0..n_tables {
            tables.push(TableImage::decode(&mut d)?);
        }
        let n_ledgers = d.seq_len()?;
        let mut ledgers = Vec::with_capacity(n_ledgers);
        for _ in 0..n_ledgers {
            ledgers.push(LedgerImage {
                table: d.str()?,
                column: d.str()?,
                marks: decode_items(&mut d, CellMark::decode)?,
            });
        }
        let n_incomplete = d.seq_len()?;
        let mut incomplete = Vec::with_capacity(n_incomplete);
        for _ in 0..n_incomplete {
            incomplete.push(ColumnImage {
                table: d.str()?,
                column: d.str()?,
            });
        }
        let n_groups = d.seq_len()?;
        let mut groups = Vec::with_capacity(n_groups);
        for _ in 0..n_groups {
            let table = d.str()?;
            let attribute = d.str()?;
            groups.push((
                table,
                attribute,
                decode_items(&mut d, JudgmentEntry::decode)?,
            ));
        }
        let cache = CacheImage {
            groups,
            hits: d.u64()?,
            misses: d.u64()?,
            cost_saved: d.f64()?,
        };
        let crowd_rounds = d.u64()?;
        let id_column = d.str()?;
        let wal_generation = d.u64()?;
        let wal_records_applied = d.u64()?;
        if !d.is_exhausted() {
            return Err(StorageError::Corrupt(
                "trailing bytes after snapshot image".into(),
            ));
        }
        Ok(SnapshotImage {
            tables,
            ledgers,
            incomplete,
            cache,
            crowd_rounds,
            id_column,
            wal_generation,
            wal_records_applied,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> TableImage {
        let schema = Schema::new(vec![
            Column::not_null("item_id", DataType::Integer),
            Column::new("name", DataType::Text),
            Column::new("is_comedy", DataType::Boolean),
        ])
        .unwrap();
        let mut table = Table::new("movies", schema);
        table
            .insert_row(vec![
                Value::Integer(1),
                Value::Text("Rocky".into()),
                Value::Null,
            ])
            .unwrap();
        table
            .insert_row(vec![
                Value::Integer(2),
                Value::Text("Airplane!".into()),
                Value::Boolean(true),
            ])
            .unwrap();
        TableImage::of(&table)
    }

    #[test]
    fn wal_records_round_trip() {
        let records = vec![
            WalRecord::CreateTable(sample_table()),
            WalRecord::Mutation {
                sql: "INSERT INTO movies (item_id, name) VALUES (3, 'Alien')".into(),
            },
            WalRecord::MaterializeColumn {
                table: "movies".into(),
                column: "is_comedy".into(),
                data_type: DataType::Boolean,
                values: vec![(1, Value::Boolean(false)), (2, Value::Boolean(true))],
                ledger: Some(vec![
                    (
                        1,
                        CellMark::CrowdDerived {
                            confidence: 0.9,
                            cost_share: 0.02,
                        },
                    ),
                    (2, CellMark::CacheHit { confidence: 0.8 }),
                    (
                        3,
                        CellMark::Missing {
                            cause: MissingCause::BudgetExhausted,
                        },
                    ),
                ]),
                incomplete: true,
            },
            WalRecord::MaterializeColumn {
                table: "movies".into(),
                column: "humor".into(),
                data_type: DataType::Float,
                values: vec![(1, Value::Float(7.5))],
                ledger: None,
                incomplete: false,
            },
            WalRecord::SetCells {
                table: "movies".into(),
                column: "is_comedy".into(),
                values: vec![(2, Value::Boolean(false))],
            },
            WalRecord::CachePut {
                table: "movies".into(),
                attribute: "comedy".into(),
                entries: vec![(
                    7,
                    JudgmentEntry {
                        verdict: Some(true),
                        judgments: 10,
                        cost: 0.02,
                        confidence: 0.95,
                    },
                )],
                rounds: 4,
            },
            WalRecord::CacheInvalidate {
                table: "movies".into(),
                attribute: "comedy".into(),
            },
            WalRecord::Meta {
                id_column: "item_id".into(),
            },
            WalRecord::MetaPartition {
                id_column: "item_id".into(),
                partition: 3,
                spec: PartitionSpec::Hash { n: 4 },
            },
            WalRecord::MetaPartition {
                id_column: "item_id".into(),
                partition: 0,
                spec: PartitionSpec::Range {
                    bounds: vec![-5, 1000],
                },
            },
        ];
        for record in records {
            let bytes = record.encode();
            assert_eq!(WalRecord::decode(&bytes).unwrap(), record);
        }
    }

    #[test]
    fn snapshot_image_round_trips() {
        let image = SnapshotImage {
            tables: vec![sample_table()],
            ledgers: vec![LedgerImage {
                table: "movies".into(),
                column: "is_comedy".into(),
                marks: vec![(1, CellMark::Extracted), (2, CellMark::Stored)],
            }],
            incomplete: vec![ColumnImage {
                table: "movies".into(),
                column: "is_comedy".into(),
            }],
            cache: CacheImage {
                groups: vec![(
                    "movies".into(),
                    "comedy".into(),
                    vec![(
                        1,
                        JudgmentEntry {
                            verdict: None,
                            judgments: 8,
                            cost: 0.01,
                            confidence: 0.0,
                        },
                    )],
                )],
                hits: 12,
                misses: 3,
                cost_saved: 0.24,
            },
            crowd_rounds: 9,
            id_column: "item_id".into(),
            wal_generation: 0xABCD,
            wal_records_applied: 17,
        };
        let bytes = image.encode();
        assert_eq!(SnapshotImage::decode(&bytes).unwrap(), image);
    }

    #[test]
    fn decode_rejects_bad_tags_and_trailing_bytes() {
        assert!(matches!(
            WalRecord::decode(&[0xFF]),
            Err(StorageError::Corrupt(_))
        ));
        let mut bytes = WalRecord::Mutation { sql: "x".into() }.encode();
        bytes.push(0);
        assert!(matches!(
            WalRecord::decode(&bytes),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn table_image_rebuilds_the_table() {
        let image = sample_table();
        let table = image.clone().into_table().unwrap();
        assert_eq!(table.name(), "movies");
        assert_eq!(table.len(), 2);
        assert_eq!(TableImage::of(&table), image);
    }
}
