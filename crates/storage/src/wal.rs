//! The append-only write-ahead log.
//!
//! # File format
//!
//! ```text
//! +--------------------+
//! | magic  "CDBWAL01"  |  8 bytes
//! | generation: u64 LE |  8 bytes — a fresh unique id per (re)created log
//! +--------------------+
//! | frame 0            |
//! | frame 1            |
//! | ...                |
//! +--------------------+
//!
//! frame := [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! ```
//!
//! The **generation** ties a log to the snapshot that supersedes its
//! prefix: a checkpoint stamps the current `(generation, record count)`
//! into the snapshot it writes, and recovery skips exactly that many
//! leading records **iff** the log's generation still matches — so a
//! crash *between* the snapshot rename and the log truncation (new
//! snapshot + complete old log on disk) cannot double-apply
//! non-idempotent records.  [`Wal::reset`] gives the truncated log a new
//! generation, after which the stale skip-count in an older snapshot can
//! never match.
//!
//! Every appended record is framed with its length and the CRC-32 of its
//! payload, then flushed **and fsynced** before [`Wal::append`] returns —
//! that fsync is the commit point: once a query's materialization and
//! cache records are appended, a crash cannot un-pay the crowd.
//!
//! # Recovery semantics
//!
//! [`Wal::open`] replays the log front to back:
//!
//! * A **torn tail** — the file ends mid-frame because the process died
//!   mid-append — is expected after a crash.  The partial frame is
//!   truncated away and the log opens with every record up to it.
//! * A **checksum mismatch** on a fully present frame is *not* a crash
//!   artifact (appends never rewrite earlier bytes): it means the file was
//!   corrupted at rest, and recovery rejects the log with
//!   [`StorageError::Corrupt`] rather than silently dropping paid-for
//!   judgments.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::codec::crc32;
use crate::records::WalRecord;
use crate::{Result, StorageError};

/// File name of the log inside a database directory.
pub const WAL_FILE: &str = "wal.log";

const MAGIC: &[u8; 8] = b"CDBWAL01";

/// Frames larger than this are treated as corruption rather than honored
/// with a giant allocation (no legitimate record comes close).
const MAX_FRAME_LEN: u32 = 1 << 28;

/// Length of the file header: magic plus generation.
const HEADER_LEN: usize = 16;

/// A practically unique generation id for a fresh or reset log.  Only
/// *inequality* with stale snapshot stamps matters (no ordering), so
/// wall-clock nanoseconds are exactly enough — and the one clock source
/// the standard library offers everywhere.
fn fresh_generation() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(1)
        .max(1)
}

/// An open write-ahead log, positioned for appending.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    generation: u64,
    records: u64,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, replays every intact
    /// record, truncates a torn tail, and returns the records together
    /// with the log positioned for appending.
    ///
    /// A full-frame checksum mismatch rejects the log (see the module
    /// docs for why the two failures are treated differently).
    pub fn open(path: impl Into<PathBuf>) -> Result<(Wal, Vec<WalRecord>)> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        // A file shorter than the header — or one that reads back as all
        // zeros (power loss under delayed allocation) — can only be a
        // brand-new log or a torn header write (creation and reset both
        // write the header before any record exists), so there is nothing
        // to lose: rewrite a fresh header.  Anything else with wrong
        // magic is a foreign file and is rejected.
        let all_zero = bytes.iter().all(|&b| b == 0);
        if bytes.len() < HEADER_LEN || (all_zero && !bytes.is_empty()) {
            let head = bytes.len().min(MAGIC.len());
            if !all_zero && bytes[..head] != MAGIC[..head] {
                return Err(StorageError::Corrupt(format!(
                    "{} is not a crowddb WAL (bad magic)",
                    path.display()
                )));
            }
            let generation = fresh_generation();
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(MAGIC)?;
            file.write_all(&generation.to_le_bytes())?;
            file.sync_all()?;
            return Ok((
                Wal {
                    file,
                    path,
                    generation,
                    records: 0,
                },
                Vec::new(),
            ));
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(StorageError::Corrupt(format!(
                "{} is not a crowddb WAL (bad magic)",
                path.display()
            )));
        }
        let generation = u64::from_le_bytes(bytes[MAGIC.len()..HEADER_LEN].try_into().unwrap());

        let mut records = Vec::new();
        let mut offset = HEADER_LEN;
        while offset < bytes.len() {
            let remaining = &bytes[offset..];
            if remaining.len() < 8 {
                break; // torn frame header
            }
            let len = u32::from_le_bytes(remaining[..4].try_into().unwrap());
            let checksum = u32::from_le_bytes(remaining[4..8].try_into().unwrap());
            if len > MAX_FRAME_LEN {
                return Err(StorageError::Corrupt(format!(
                    "WAL frame at offset {offset} claims impossible length {len}"
                )));
            }
            let len = len as usize;
            if remaining.len() < 8 + len {
                break; // torn payload
            }
            let payload = &remaining[8..8 + len];
            // Power loss can expose the unwritten tail as *zeros* rather
            // than a short file (delayed allocation): a zero frame header
            // parses as len=0/crc=0 and crc32("")==0, so the zero check —
            // not just the checksum — decides torn-tail vs corruption.
            // Anything non-zero that fails validation is damage to data
            // that was once written, and is rejected.
            let zero_filled_tail = |bytes: &[u8]| bytes[offset..].iter().all(|&b| b == 0);
            if crc32(payload) != checksum {
                if zero_filled_tail(&bytes) {
                    break;
                }
                return Err(StorageError::Corrupt(format!(
                    "WAL frame at offset {offset} fails its checksum"
                )));
            }
            match WalRecord::decode(payload) {
                Ok(record) => records.push(record),
                Err(_) if zero_filled_tail(&bytes) => break,
                Err(e) => return Err(e),
            }
            offset += 8 + len;
        }
        if offset < bytes.len() {
            // Drop the torn tail so the next append starts on a clean
            // frame boundary.
            file.set_len(offset as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(offset as u64))?;
        let record_count = records.len() as u64;
        Ok((
            Wal {
                file,
                path,
                generation,
                records: record_count,
            },
            records,
        ))
    }

    /// Appends one record and fsyncs — the durability commit point.
    pub fn append(&mut self, record: &WalRecord) -> Result<()> {
        self.append_all(std::slice::from_ref(record))
    }

    /// Appends several records with **one** fsync: the group commits (or
    /// fails) together, and a query that logs a few records per crowd round
    /// pays one disk flush, not one per record.
    pub fn append_all(&mut self, records: &[WalRecord]) -> Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        let mut frames = Vec::new();
        for record in records {
            let payload = record.encode();
            frames.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frames.extend_from_slice(&crc32(&payload).to_le_bytes());
            frames.extend_from_slice(&payload);
        }
        self.file.write_all(&frames)?;
        self.file.sync_all()?;
        self.records += records.len() as u64;
        Ok(())
    }

    /// Empties the log back to a bare header under a **new generation** —
    /// called by checkpointing right after the snapshot that supersedes
    /// the logged records has been durably written.  The generation change
    /// is what invalidates the skip-count stamped into *older* snapshots
    /// (see the module docs).
    pub fn reset(&mut self) -> Result<()> {
        // Strictly above the old generation even if the wall clock
        // stepped backwards (NTP, VM restore): a collision would let a
        // snapshot stamped for the old log skip committed records of the
        // new one.
        let generation = fresh_generation().max(self.generation + 1);
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(MAGIC)?;
        self.file.write_all(&generation.to_le_bytes())?;
        self.file.sync_all()?;
        self.generation = generation;
        self.records = 0;
        Ok(())
    }

    /// The log's generation id (changes on every [`reset`](Wal::reset)).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of records currently in the log.
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::Value;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("crowddb-wal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn mutation(i: usize) -> WalRecord {
        WalRecord::Mutation {
            sql: format!("INSERT INTO t (id) VALUES ({i})"),
        }
    }

    #[test]
    fn append_and_reopen_round_trips() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join(WAL_FILE);
        {
            let (mut wal, existing) = Wal::open(&path).unwrap();
            assert!(existing.is_empty());
            wal.append(&mutation(0)).unwrap();
            wal.append_all(&[mutation(1), mutation(2)]).unwrap();
        }
        let (mut wal, records) = Wal::open(&path).unwrap();
        assert_eq!(records, vec![mutation(0), mutation(1), mutation(2)]);
        // Appending after reopen keeps extending the same log.
        wal.append(&mutation(3)).unwrap();
        drop(wal);
        let (_, records) = Wal::open(&path).unwrap();
        assert_eq!(records.len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated() {
        let dir = tmp_dir("torn");
        let path = dir.join(WAL_FILE);
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(&mutation(0)).unwrap();
            wal.append(&mutation(1)).unwrap();
        }
        // Chop bytes off the final frame, as a crash mid-append would.
        let len = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);

        let (mut wal, records) = Wal::open(&path).unwrap();
        assert_eq!(records, vec![mutation(0)]);
        // The tail was physically truncated: a fresh append lands on a
        // clean frame boundary and both records survive the next reopen.
        wal.append(&mutation(9)).unwrap();
        drop(wal);
        let (_, records) = Wal::open(&path).unwrap();
        assert_eq!(records, vec![mutation(0), mutation(9)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checksum_mismatch_is_rejected() {
        let dir = tmp_dir("crc");
        let path = dir.join(WAL_FILE);
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(&mutation(0)).unwrap();
        }
        // Flip one payload byte of the (fully present) frame.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        match Wal::open(&path) {
            Err(StorageError::Corrupt(msg)) => assert!(msg.contains("checksum")),
            other => panic!("expected corruption, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_empties_the_log() {
        let dir = tmp_dir("reset");
        let path = dir.join(WAL_FILE);
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(&WalRecord::SetCells {
            table: "t".into(),
            column: "c".into(),
            values: vec![(1, Value::Boolean(true))],
        })
        .unwrap();
        wal.reset().unwrap();
        wal.append(&mutation(7)).unwrap();
        drop(wal);
        let (_, records) = Wal::open(&path).unwrap();
        assert_eq!(records, vec![mutation(7)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_changes_the_generation_and_reopen_preserves_it() {
        let dir = tmp_dir("generation");
        let path = dir.join(WAL_FILE);
        let (mut wal, _) = Wal::open(&path).unwrap();
        let first = wal.generation();
        assert!(first > 0);
        wal.append(&mutation(0)).unwrap();
        assert_eq!(wal.record_count(), 1);
        wal.reset().unwrap();
        assert_ne!(
            wal.generation(),
            first,
            "a reset log must never match a snapshot stamped for the old one"
        );
        assert_eq!(wal.record_count(), 0);
        let second = wal.generation();
        drop(wal);
        let (wal, records) = Wal::open(&path).unwrap();
        assert_eq!(
            wal.generation(),
            second,
            "reopen reads the stored generation"
        );
        assert!(records.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_header_is_recreated_empty() {
        let dir = tmp_dir("torn-header");
        let path = dir.join(WAL_FILE);
        // A crash during creation/reset can leave a partial header; the
        // log reopens empty under a fresh generation.
        std::fs::write(&path, &MAGIC[..5]).unwrap();
        let (wal, records) = Wal::open(&path).unwrap();
        assert!(records.is_empty());
        assert!(wal.generation() > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_filled_header_is_recreated_empty() {
        let dir = tmp_dir("zero-header");
        let path = dir.join(WAL_FILE);
        // Power loss during creation under delayed allocation: the whole
        // file reads back as zeros (longer than a header).  Nothing was
        // ever committed, so the log is recreated, not rejected.
        std::fs::write(&path, [0u8; 48]).unwrap();
        let (mut wal, records) = Wal::open(&path).unwrap();
        assert!(records.is_empty());
        wal.append(&mutation(1)).unwrap();
        drop(wal);
        let (_, records) = Wal::open(&path).unwrap();
        assert_eq!(records, vec![mutation(1)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_generation_is_strictly_increasing() {
        let dir = tmp_dir("gen-monotonic");
        let path = dir.join(WAL_FILE);
        let (mut wal, _) = Wal::open(&path).unwrap();
        let mut previous = wal.generation();
        // Back-to-back resets inside one clock tick must still move the
        // generation (a collision would let a stale snapshot stamp skip
        // committed records of the new log).
        for _ in 0..5 {
            wal.reset().unwrap();
            assert!(wal.generation() > previous);
            previous = wal.generation();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_filled_tail_is_truncated_like_a_torn_one() {
        let dir = tmp_dir("zero-tail");
        let path = dir.join(WAL_FILE);
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(&mutation(0)).unwrap();
        }
        // Power loss with delayed allocation: the tail reads back as
        // zeros instead of a short file.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0u8; 64]);
        std::fs::write(&path, &bytes).unwrap();

        let (mut wal, records) = Wal::open(&path).unwrap();
        assert_eq!(records, vec![mutation(0)]);
        wal.append(&mutation(1)).unwrap();
        drop(wal);
        let (_, records) = Wal::open(&path).unwrap();
        assert_eq!(records, vec![mutation(0), mutation(1)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_wal_file_is_rejected() {
        let dir = tmp_dir("magic");
        let path = dir.join(WAL_FILE);
        std::fs::write(&path, b"definitely not a WAL").unwrap();
        assert!(matches!(Wal::open(&path), Err(StorageError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
