//! # storage — durable persistence for the crowd-enabled database
//!
//! Crowd judgments are the single most expensive resource of a
//! crowd-enabled database: every materialized cell and every
//! [`judgment-cache`](crate::records::JudgmentEntry) entry represents real
//! dollars paid to real workers.  A purely in-memory engine throws that
//! investment away on every restart.  This crate is the storage engine that
//! keeps it:
//!
//! * [`wal`] — an append-only **write-ahead log** of length-prefixed,
//!   CRC32-checksummed records, fsynced on every commit.  Recovery
//!   truncates a torn tail (a crash mid-append) and *rejects* a log whose
//!   interior records fail their checksum.
//! * [`snapshot`] — a point-in-time image of database state (one table's,
//!   or — legacy — the whole database's), written atomically (temp file +
//!   fsync + rename) so a crash during checkpointing can never destroy
//!   the previous snapshot.
//! * [`manifest`] — the root of the segmented (per-table) layout: the
//!   authoritative list of live `wal/<table>.log` segments and
//!   `snap/<table>.snap` snapshots, plus the few global counters, swapped
//!   atomically on every checkpoint.
//! * [`records`] — the durable record schema: catalog DDL, row mutations,
//!   materialized crowd cells (with confidence and cost share), judgment
//!   cache entries, and the snapshot image tying them together.
//! * [`codec`] — the little-endian binary encoding the records are framed
//!   in, including the CRC32 the WAL and snapshot integrity checks use.
//!
//! The crate is deliberately independent of `crowddb_core`: it knows the
//! relational vocabulary ([`relational::Value`], [`relational::Schema`])
//! and the shape of crowd-derived facts, but not the engine that produces
//! them.  `crowddb_core::CrowdDb::open` drives recovery and appends records
//! as queries commit.

#![warn(missing_docs)]

pub mod codec;
pub mod manifest;
pub mod records;
pub mod snapshot;
pub mod wal;

pub use codec::{crc32, Decoder, Encoder};
pub use manifest::{
    partition_segment_file_name, partition_snapshot_file_name, read_manifest, scan_segments,
    segment_file_name, snapshot_file_name, write_manifest, Manifest, ManifestEntry, MANIFEST_FILE,
    SNAP_DIR, WAL_DIR,
};
pub use records::{
    decode_partition_spec, encode_partition_spec, CacheImage, CellMark, ColumnImage, JudgmentEntry,
    LedgerImage, MissingCause, SnapshotImage, TableImage, WalRecord,
};
pub use snapshot::{
    read_snapshot, read_snapshot_file, write_snapshot, write_snapshot_file, SNAPSHOT_FILE,
};
pub use wal::{Wal, WAL_FILE};

use std::fmt;

/// Errors produced by the storage engine.
#[non_exhaustive]
#[derive(Debug)]
pub enum StorageError {
    /// An operating-system I/O failure (open, write, fsync, rename, …).
    Io(std::io::Error),
    /// A record or snapshot failed its integrity check: a checksum
    /// mismatch, an impossible length, an unknown record tag, or a
    /// truncated payload in a position recovery is not allowed to repair.
    Corrupt(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage i/o error: {e}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt storage: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, StorageError>;
