//! Snapshot files: point-in-time images of the whole database.
//!
//! # File format
//!
//! ```text
//! +--------------------+
//! | magic "CDBSNAP1"   |  8 bytes
//! | len: u64 LE        |  payload length
//! | crc32(payload): u32|  payload checksum
//! | payload            |  SnapshotImage::encode
//! +--------------------+
//! ```
//!
//! # Atomicity
//!
//! A snapshot supersedes the WAL records folded into it, so a half-written
//! snapshot must never be able to shadow a good one.  [`write_snapshot`]
//! therefore writes to `snapshot.tmp`, fsyncs it, renames it over
//! [`SNAPSHOT_FILE`] (atomic on POSIX), and fsyncs the directory so the
//! rename itself is durable.  A crash at any point leaves either the old
//! snapshot or the new one — never a torn hybrid — and [`read_snapshot`]
//! verifies the checksum before trusting a byte of it.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

use crate::codec::crc32;
use crate::records::SnapshotImage;
use crate::{Result, StorageError};

/// File name of the snapshot inside a database directory.
pub const SNAPSHOT_FILE: &str = "snapshot.db";

const TMP_FILE: &str = "snapshot.tmp";

const MAGIC: &[u8; 8] = b"CDBSNAP1";

/// Durably writes `image` to `path`, atomically replacing any previous
/// file there.  Used for both the legacy whole-database snapshot and the
/// per-table snapshots of the segmented layout.
pub fn write_snapshot_file(path: &Path, image: &SnapshotImage) -> Result<()> {
    let payload = image.encode();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(MAGIC)?;
        file.write_all(&(payload.len() as u64).to_le_bytes())?;
        file.write_all(&crc32(&payload).to_le_bytes())?;
        file.write_all(&payload)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Make the rename durable: fsync the directory entry.  Directories
    // cannot be fsynced everywhere (e.g. Windows); failing to is not
    // fatal — the data file itself is already synced.
    if let Some(parent) = path.parent() {
        if let Ok(dir_handle) = File::open(parent) {
            let _ = dir_handle.sync_all();
        }
    }
    Ok(())
}

/// Durably writes `image` as the directory's snapshot, atomically
/// replacing any previous one (the legacy single-file layout).
pub fn write_snapshot(dir: &Path, image: &SnapshotImage) -> Result<()> {
    // The historical tmp name is kept so a crash mid-upgrade under an old
    // binary and a new one clean up the same dropping.
    let _ = fs::remove_file(dir.join(TMP_FILE));
    write_snapshot_file(&dir.join(SNAPSHOT_FILE), image)
}

/// Reads the snapshot at `path`, verifying magic, length, and checksum.
/// Returns `Ok(None)` when the file does not exist.
pub fn read_snapshot_file(path: &Path) -> Result<Option<SnapshotImage>> {
    let mut file = match File::open(path) {
        Ok(file) => file,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    if bytes.len() < MAGIC.len() + 12 || &bytes[..MAGIC.len()] != MAGIC {
        return Err(StorageError::Corrupt(format!(
            "{} is not a crowddb snapshot (bad magic or truncated header)",
            path.display()
        )));
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
    let checksum = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
    let payload = &bytes[20..];
    if payload.len() != len {
        return Err(StorageError::Corrupt(format!(
            "snapshot payload is {} bytes but the header declares {len}",
            payload.len()
        )));
    }
    if crc32(payload) != checksum {
        return Err(StorageError::Corrupt("snapshot fails its checksum".into()));
    }
    Ok(Some(SnapshotImage::decode(payload)?))
}

/// Reads the directory's snapshot (the legacy single-file layout),
/// verifying magic, length, and checksum.  Returns `Ok(None)` when no
/// snapshot exists (a database that has never checkpointed).
pub fn read_snapshot(dir: &Path) -> Result<Option<SnapshotImage>> {
    read_snapshot_file(&dir.join(SNAPSHOT_FILE))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{CacheImage, JudgmentEntry, SnapshotImage};
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("crowddb-snap-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> SnapshotImage {
        SnapshotImage {
            cache: CacheImage {
                groups: vec![(
                    "movies".into(),
                    "comedy".into(),
                    vec![(
                        3,
                        JudgmentEntry {
                            verdict: Some(true),
                            judgments: 10,
                            cost: 0.02,
                            confidence: 1.0,
                        },
                    )],
                )],
                hits: 1,
                misses: 2,
                cost_saved: 0.02,
            },
            crowd_rounds: 5,
            ..Default::default()
        }
    }

    #[test]
    fn write_read_round_trips_and_replaces() {
        let dir = tmp_dir("rw");
        assert_eq!(read_snapshot(&dir).unwrap(), None);
        write_snapshot(&dir, &sample()).unwrap();
        assert_eq!(read_snapshot(&dir).unwrap(), Some(sample()));
        // A second checkpoint atomically replaces the first.
        let mut newer = sample();
        newer.crowd_rounds = 6;
        write_snapshot(&dir, &newer).unwrap();
        assert_eq!(read_snapshot(&dir).unwrap().unwrap().crowd_rounds, 6);
        assert!(!dir.join(TMP_FILE).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_is_rejected() {
        let dir = tmp_dir("corrupt");
        write_snapshot(&dir, &sample()).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_snapshot(&dir), Err(StorageError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
