//! The manifest: the root of a segmented (per-table) database directory.
//!
//! A sharded database splits its durable state by table, and optionally
//! by partition *within* a table:
//!
//! ```text
//! <dir>/
//!   manifest.db          <- this file: the authoritative list of live tables
//!   wal/<table>.log      <- one WAL segment per single-partition table
//!   wal/<table>.p<k>.log <- one WAL segment per partition k of a
//!                           partitioned table (format: crate::wal)
//!   snap/<table>.snap    <- one snapshot per single-partition table
//!   snap/<table>.p<k>.snap <- one snapshot per partition
//! ```
//!
//! Single-partition tables use the suffix-free names, byte-identical to
//! the pre-partitioning layout.  Sanitized stems never contain `.` (it is
//! `%2e`-escaped), so `<stem>.p<k>` parses unambiguously.
//!
//! The manifest is the *routing root*: its presence is what marks a
//! directory as segmented (recovery of a legacy single-file layout is
//! keyed off its absence), and its entries name the segment and snapshot
//! file of every live table.  It also carries the few pieces of state
//! that are global rather than per-table — the judgment-cache
//! effectiveness counters, the crowd-round counter, and the configured id
//! column — which are checkpoint-granular, exactly as they were in the
//! monolithic snapshot.
//!
//! # Atomicity
//!
//! The manifest is rewritten with the same tmp + fsync + rename + dir-fsync
//! pattern as snapshots: a crash mid-checkpoint leaves either the old
//! manifest or the new one.  Per-table snapshot/segment files referenced by
//! a manifest are always durably on disk *before* the manifest that names
//! them is swapped in, and recovery additionally unions in any `wal/`
//! segment the manifest does not know about (a table created after the
//! last checkpoint), so no committed record is ever orphaned.
//!
//! # File names
//!
//! Table names are lower-cased identifiers in practice, but the manifest
//! does not trust that: names are sanitized reversibly (`[a-z0-9_-]`
//! passes through, every other byte becomes `%xx`) so any table name maps
//! to a unique, portable file name and recovery can map an orphan segment
//! file back to its table.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use relational::PartitionSpec;

use crate::codec::{crc32, Decoder, Encoder};
use crate::records::{decode_partition_spec, encode_partition_spec};
use crate::{Result, StorageError};

/// File name of the manifest inside a database directory.  Its presence
/// marks the directory as using the segmented layout.
pub const MANIFEST_FILE: &str = "manifest.db";

const TMP_FILE: &str = "manifest.tmp";

/// Subdirectory holding per-table WAL segments.
pub const WAL_DIR: &str = "wal";

/// Subdirectory holding per-table snapshots.
pub const SNAP_DIR: &str = "snap";

const MAGIC: &[u8; 8] = b"CDBMANI1";

/// One live table in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Table name (lower-cased, as the catalog stores it).
    pub table: String,
    /// Segment file name inside [`WAL_DIR`].
    pub segment: String,
    /// Snapshot file name inside [`SNAP_DIR`]; `None` until the table's
    /// first checkpoint.
    pub snapshot: Option<String>,
}

/// The manifest: live tables plus the global (non-per-table) counters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Manifest {
    /// The id-column name the writing database was configured with;
    /// recovery rejects an open under a different configuration.
    pub id_column: String,
    /// Judgment-cache lookups answered from the cache (checkpoint-granular).
    pub cache_hits: u64,
    /// Judgment-cache lookups that went to the crowd (checkpoint-granular).
    pub cache_misses: u64,
    /// Dollars not re-spent thanks to cache hits (checkpoint-granular).
    pub cache_cost_saved: f64,
    /// The crowd-round counter at the last manifest write; recovery takes
    /// the maximum of this and every replayed `CachePut` round stamp.
    pub crowd_rounds: u64,
    /// Live tables, sorted by name.
    pub entries: Vec<ManifestEntry>,
    /// Partition specs of the partitioned tables, sorted by name —
    /// encoded as a trailing section so a manifest with no partitioned
    /// tables stays byte-identical to the pre-partitioning format.
    /// Single-partition tables never appear here.
    pub partitioned: Vec<(String, PartitionSpec)>,
}

impl Manifest {
    /// Looks up the entry for `table`.
    pub fn entry(&self, table: &str) -> Option<&ManifestEntry> {
        self.entries.iter().find(|e| e.table == table)
    }

    /// The partition spec of `table`: the recorded one for partitioned
    /// tables, [`PartitionSpec::Single`] otherwise.
    pub fn spec(&self, table: &str) -> PartitionSpec {
        self.partitioned
            .iter()
            .find(|(name, _)| name == table)
            .map(|(_, spec)| spec.clone())
            .unwrap_or(PartitionSpec::Single)
    }

    fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.str(&self.id_column);
        e.u64(self.cache_hits);
        e.u64(self.cache_misses);
        e.f64(self.cache_cost_saved);
        e.u64(self.crowd_rounds);
        e.seq_len(self.entries.len());
        for entry in &self.entries {
            e.str(&entry.table);
            e.str(&entry.segment);
            match &entry.snapshot {
                None => e.bool(false),
                Some(snap) => {
                    e.bool(true);
                    e.str(snap);
                }
            }
        }
        // The partitioned-tables section is appended only when non-empty:
        // a purely single-partition database keeps the legacy manifest
        // byte layout exactly.
        if !self.partitioned.is_empty() {
            e.seq_len(self.partitioned.len());
            for (table, spec) in &self.partitioned {
                e.str(table);
                encode_partition_spec(&mut e, spec);
            }
        }
        e.into_bytes()
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        let mut d = Decoder::new(bytes);
        let id_column = d.str()?;
        let cache_hits = d.u64()?;
        let cache_misses = d.u64()?;
        let cache_cost_saved = d.f64()?;
        let crowd_rounds = d.u64()?;
        let n = d.seq_len()?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let table = d.str()?;
            let segment = d.str()?;
            let snapshot = if d.bool()? { Some(d.str()?) } else { None };
            entries.push(ManifestEntry {
                table,
                segment,
                snapshot,
            });
        }
        // Legacy manifests end here; newer ones may carry the trailing
        // partitioned-tables section.
        let mut partitioned = Vec::new();
        if !d.is_exhausted() {
            let n = d.seq_len()?;
            partitioned.reserve(n);
            for _ in 0..n {
                let table = d.str()?;
                let spec = decode_partition_spec(&mut d)?;
                partitioned.push((table, spec));
            }
        }
        if !d.is_exhausted() {
            return Err(StorageError::Corrupt(
                "trailing bytes after manifest".into(),
            ));
        }
        Ok(Manifest {
            id_column,
            cache_hits,
            cache_misses,
            cache_cost_saved,
            crowd_rounds,
            entries,
            partitioned,
        })
    }
}

/// Durably writes `manifest`, atomically replacing any previous one.
pub fn write_manifest(dir: &Path, manifest: &Manifest) -> Result<()> {
    let payload = manifest.encode();
    let tmp = dir.join(TMP_FILE);
    {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(MAGIC)?;
        file.write_all(&(payload.len() as u64).to_le_bytes())?;
        file.write_all(&crc32(&payload).to_le_bytes())?;
        file.write_all(&payload)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, dir.join(MANIFEST_FILE))?;
    if let Ok(dir_handle) = File::open(dir) {
        let _ = dir_handle.sync_all();
    }
    Ok(())
}

/// Reads the directory's manifest, verifying magic, length, and checksum.
/// Returns `Ok(None)` when no manifest exists (a legacy single-file
/// directory, or a brand-new one).
pub fn read_manifest(dir: &Path) -> Result<Option<Manifest>> {
    let path = dir.join(MANIFEST_FILE);
    let mut file = match File::open(&path) {
        Ok(file) => file,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    if bytes.len() < MAGIC.len() + 12 || &bytes[..MAGIC.len()] != MAGIC {
        return Err(StorageError::Corrupt(format!(
            "{} is not a crowddb manifest (bad magic or truncated header)",
            path.display()
        )));
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
    let checksum = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
    let payload = &bytes[20..];
    if payload.len() != len {
        return Err(StorageError::Corrupt(format!(
            "manifest payload is {} bytes but the header declares {len}",
            payload.len()
        )));
    }
    if crc32(payload) != checksum {
        return Err(StorageError::Corrupt("manifest fails its checksum".into()));
    }
    Manifest::decode(payload).map(Some)
}

/// The `wal/` segment directory of a database directory.
pub fn wal_dir(dir: &Path) -> PathBuf {
    dir.join(WAL_DIR)
}

/// The `snap/` snapshot directory of a database directory.
pub fn snap_dir(dir: &Path) -> PathBuf {
    dir.join(SNAP_DIR)
}

/// Reversibly sanitizes a table name into a file-name stem: bytes in
/// `[a-z0-9_-]` pass through, everything else becomes `%xx` (lowercase
/// hex).  Distinct table names always map to distinct stems.
pub fn sanitize_table_name(table: &str) -> String {
    let mut out = String::with_capacity(table.len());
    for b in table.bytes() {
        match b {
            b'a'..=b'z' | b'0'..=b'9' | b'_' | b'-' => out.push(b as char),
            _ => out.push_str(&format!("%{b:02x}")),
        }
    }
    out
}

/// Reverses [`sanitize_table_name`].  Returns `None` for a stem that is
/// not a valid sanitized name (truncated or non-hex escape).
pub fn desanitize_table_name(stem: &str) -> Option<String> {
    let bytes = stem.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let hex = std::str::from_utf8(hex).ok()?;
                out.push(u8::from_str_radix(hex, 16).ok()?);
                i += 3;
            }
            b @ (b'a'..=b'z' | b'0'..=b'9' | b'_' | b'-') => {
                out.push(b);
                i += 1;
            }
            _ => return None,
        }
    }
    String::from_utf8(out).ok()
}

/// The segment file name (inside [`WAL_DIR`]) for a single-partition
/// `table`.
pub fn segment_file_name(table: &str) -> String {
    format!("{}.log", sanitize_table_name(table))
}

/// The snapshot file name (inside [`SNAP_DIR`]) for a single-partition
/// `table`.
pub fn snapshot_file_name(table: &str) -> String {
    format!("{}.snap", sanitize_table_name(table))
}

/// The segment file name (inside [`WAL_DIR`]) for partition `k` of a
/// partitioned `table`.  Sanitized stems never contain `.`, so the name
/// parses back unambiguously.
pub fn partition_segment_file_name(table: &str, k: usize) -> String {
    format!("{}.p{k}.log", sanitize_table_name(table))
}

/// The snapshot file name (inside [`SNAP_DIR`]) for partition `k` of a
/// partitioned `table`.
pub fn partition_snapshot_file_name(table: &str, k: usize) -> String {
    format!("{}.p{k}.snap", sanitize_table_name(table))
}

/// Splits a file stem into its table stem and partition index:
/// `movies.p3` → `("movies", Some(3))`, `movies` → `("movies", None)`.
fn split_partition_stem(stem: &str) -> (&str, Option<usize>) {
    if let Some(dot) = stem.rfind('.') {
        if let Some(digits) = stem[dot + 1..].strip_prefix('p') {
            if !digits.is_empty() {
                if let Ok(k) = digits.parse::<usize>() {
                    return (&stem[..dot], Some(k));
                }
            }
        }
    }
    (stem, None)
}

/// Maps a segment file name back to its table, if it parses as one
/// (either layout — the partition index is dropped).
pub fn table_of_segment_file(file_name: &str) -> Option<String> {
    let (stem, _) = split_partition_stem(file_name.strip_suffix(".log")?);
    desanitize_table_name(stem)
}

/// Lists every segment file currently present in `wal/`, as
/// `(table, partition, file name)` triples sorted by table then partition.
/// `partition` is `None` for a single-partition (suffix-free) segment and
/// `Some(k)` for partition `k` of a partitioned table.  Files that do not
/// parse as sanitized segment names are ignored (editor droppings, tmp
/// files).  Returns an empty list when the directory does not exist.
pub fn scan_segments(dir: &Path) -> Result<Vec<(String, Option<usize>, String)>> {
    let wal = wal_dir(dir);
    let entries = match fs::read_dir(&wal) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    let mut segments = Vec::new();
    for entry in entries {
        let entry = entry?;
        let file_name = entry.file_name();
        let Some(file_name) = file_name.to_str() else {
            continue;
        };
        let Some(stem) = file_name.strip_suffix(".log") else {
            continue;
        };
        let (table_stem, partition) = split_partition_stem(stem);
        if let Some(table) = desanitize_table_name(table_stem) {
            segments.push((table, partition, file_name.to_string()));
        }
    }
    segments.sort();
    Ok(segments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("crowddb-mani-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> Manifest {
        Manifest {
            id_column: "item_id".into(),
            cache_hits: 4,
            cache_misses: 9,
            cache_cost_saved: 0.36,
            crowd_rounds: 11,
            entries: vec![
                ManifestEntry {
                    table: "books".into(),
                    segment: "books.log".into(),
                    snapshot: None,
                },
                ManifestEntry {
                    table: "movies".into(),
                    segment: "movies.log".into(),
                    snapshot: Some("movies.snap".into()),
                },
            ],
            partitioned: Vec::new(),
        }
    }

    #[test]
    fn write_read_round_trips_and_replaces() {
        let dir = tmp_dir("rw");
        assert_eq!(read_manifest(&dir).unwrap(), None);
        write_manifest(&dir, &sample()).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), Some(sample()));
        let mut newer = sample();
        newer.crowd_rounds = 12;
        write_manifest(&dir, &newer).unwrap();
        assert_eq!(read_manifest(&dir).unwrap().unwrap().crowd_rounds, 12);
        assert!(!dir.join(TMP_FILE).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_manifest_is_rejected() {
        let dir = tmp_dir("corrupt");
        write_manifest(&dir, &sample()).unwrap();
        let path = dir.join(MANIFEST_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_manifest(&dir), Err(StorageError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn table_names_sanitize_reversibly() {
        for name in ["movies", "a_b-c9", "Movies 2!", "tbl.%", "ünïcode"] {
            let stem = sanitize_table_name(name);
            assert!(stem
                .bytes()
                .all(|b| matches!(b, b'a'..=b'z' | b'0'..=b'9' | b'_' | b'-' | b'%')));
            assert_eq!(desanitize_table_name(&stem).as_deref(), Some(name));
        }
        // Distinct names never collide, even when one contains escapes.
        assert_ne!(sanitize_table_name("a%62"), sanitize_table_name("ab"));
        assert_eq!(desanitize_table_name("%zz"), None);
        assert_eq!(desanitize_table_name("%6"), None);
    }

    #[test]
    fn segment_scan_lists_only_parseable_segments() {
        let dir = tmp_dir("scan");
        let wal = wal_dir(&dir);
        std::fs::create_dir_all(&wal).unwrap();
        std::fs::write(wal.join(segment_file_name("movies")), b"").unwrap();
        std::fs::write(wal.join(segment_file_name("über")), b"").unwrap();
        std::fs::write(wal.join(partition_segment_file_name("events", 2)), b"").unwrap();
        std::fs::write(wal.join(partition_segment_file_name("events", 0)), b"").unwrap();
        std::fs::write(wal.join("README.txt"), b"").unwrap();
        std::fs::write(wal.join("Upper.log"), b"").unwrap();
        let segments = scan_segments(&dir).unwrap();
        assert_eq!(
            segments,
            vec![
                ("events".to_string(), Some(0), "events.p0.log".to_string()),
                ("events".to_string(), Some(2), "events.p2.log".to_string()),
                ("movies".to_string(), None, "movies.log".to_string()),
                ("über".to_string(), None, segment_file_name("über")),
            ]
        );
        assert!(scan_segments(&tmp_dir("scan-empty")).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partition_file_names_parse_back() {
        assert_eq!(partition_segment_file_name("events", 3), "events.p3.log");
        assert_eq!(partition_snapshot_file_name("events", 3), "events.p3.snap");
        assert_eq!(
            table_of_segment_file("events.p3.log").as_deref(),
            Some("events")
        );
        // A table whose *name* contains a dot sanitizes it away, so the
        // partition suffix can never collide with user data.
        assert_eq!(sanitize_table_name("a.p3"), "a%2ep3");
        assert_eq!(split_partition_stem("a%2ep3"), ("a%2ep3", None));
    }

    #[test]
    fn manifest_partitioned_section_round_trips_and_stays_legacy_compatible() {
        let dir = tmp_dir("partitioned");
        // No partitioned tables: byte layout has no trailing section.
        write_manifest(&dir, &sample()).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), Some(sample()));
        // With partitioned tables the section round-trips.
        let mut manifest = sample();
        manifest.partitioned = vec![
            ("events".to_string(), PartitionSpec::Hash { n: 4 }),
            (
                "readings".to_string(),
                PartitionSpec::Range {
                    bounds: vec![100, 200],
                },
            ),
        ];
        write_manifest(&dir, &manifest).unwrap();
        let read = read_manifest(&dir).unwrap().unwrap();
        assert_eq!(read, manifest);
        assert_eq!(read.spec("events"), PartitionSpec::Hash { n: 4 });
        assert_eq!(read.spec("movies"), PartitionSpec::Single);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
