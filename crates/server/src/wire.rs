//! The wire protocol: framing, handshake, and message codecs.
//!
//! Everything on the socket is a **frame**: an 8-byte header — payload
//! length (`u32`, little-endian) followed by the payload's CRC-32
//! ([`storage::crc32`], the same polynomial the WAL uses) — and then the
//! payload itself.  The codec discipline is [`storage`]'s: explicit
//! little-endian primitives through [`Encoder`] / [`Decoder`], one tag byte
//! per enum variant, length-prefixed strings and sequences, so the wire
//! format is an auditable versioned contract rather than an accident of
//! struct layout.  A frame that is truncated, oversize
//! ([`MAX_FRAME_LEN`]), or fails its checksum is a
//! [`CrowdDbError::Protocol`] — the connection carrying it is torn down,
//! the server stays up.
//!
//! A connection opens with a **handshake**: the client sends
//! [`ClientHello`] (magic, [`PROTOCOL_VERSION`], optional auth token), the
//! server answers [`HandshakeReply`] — accepted with a session id, or
//! rejected with a reason — and only then do [`Request`] / [`Response`]
//! frames flow.  Requests carry a client-chosen `id` so one connection can
//! run many queries at once; every response names the request it belongs
//! to, and a streamed query's events arrive interleaved with other
//! requests' traffic, demultiplexed by that id.
//!
//! The payload types of the query surface — [`QueryEvent`],
//! [`QueryOutcome`], [`ExpansionPolicy`], [`ExpansionReport`], per-cell
//! [`CellProvenance`], and the full [`CrowdDbError`] enum including every
//! nested engine error — round-trip the codec exactly: a remote caller
//! sees the same typed events and typed errors an in-process caller does.

use crate::server::ServerStats;
use crowddb_core::expansion::ExpansionStage;
use crowddb_core::{
    CellProvenance, CrowdDbError, DegradeReason, ExpansionMode, ExpansionPolicy, ExpansionReport,
    MissingReason, QueryEvent, QueryOutcome, Result, RowSet, StatementResult,
};
use relational::{PartitionSpec, Value};
use std::io::{Read, Write};
use storage::{crc32, decode_partition_spec, encode_partition_spec, Decoder, Encoder};
use telemetry::MonitorTree;

/// Version of the wire protocol; bumped on any incompatible change.  The
/// handshake rejects a client whose version differs.  Version 2 added the
/// observability surface (stats / metrics / monitor requests, the
/// `Degraded` expansion stage, and the `Overloaded` error).  Version 3
/// added intra-table partitioning: the [`Request::CreateTable`] message
/// and its length-prefixed [`PartitionSpec`] payload field (a spec variant
/// this build does not know decodes as single-partition instead of
/// dropping the connection).
pub const PROTOCOL_VERSION: u32 = 3;

/// Ceiling on [`MonitorTree`] nesting the codec will decode.  The live
/// monitor hierarchy is a few levels deep; anything past this bound is a
/// malformed (or hostile) frame, rejected before the recursion can become
/// a stack overflow.
pub const MAX_MONITOR_DEPTH: usize = 64;

/// The four magic bytes opening a [`ClientHello`] — lets the server reject
/// a non-CrowdDb client on the first frame instead of misparsing it.
pub const MAGIC: [u8; 4] = *b"CRWD";

/// Upper bound on a frame's payload length.  A length prefix beyond this is
/// treated as corruption (or hostility) and drops the connection before any
/// allocation happens.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

fn protocol_err(message: impl Into<String>) -> CrowdDbError {
    CrowdDbError::protocol(message)
}

fn io_err(context: &str, e: std::io::Error) -> CrowdDbError {
    protocol_err(format!("{context}: {e}"))
}

// Decoder failures (ran off the end of the payload, bad UTF-8, oversize
// sequence) arrive as `CrowdDbError::Storage` via the blanket From impl;
// on the wire they are protocol errors — the frame was malformed.
fn as_protocol(e: CrowdDbError) -> CrowdDbError {
    match e {
        CrowdDbError::Storage(m) => protocol_err(format!("malformed message: {m}")),
        other => other,
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Writes one frame (header + payload) and flushes the writer.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_FRAME_LEN as usize {
        return Err(protocol_err(format!(
            "frame payload of {} bytes exceeds the {MAX_FRAME_LEN}-byte limit",
            payload.len()
        )));
    }
    let mut header = [0u8; 8];
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&header).map_err(|e| io_err("frame write", e))?;
    w.write_all(payload).map_err(|e| io_err("frame write", e))?;
    w.flush().map_err(|e| io_err("frame flush", e))
}

/// Reads one frame's payload, verifying length bound and checksum.
///
/// Returns `Ok(None)` on a clean end-of-stream (the peer closed the
/// connection *between* frames); end-of-stream in the middle of a frame,
/// an oversize length prefix, and a checksum mismatch are all
/// [`CrowdDbError::Protocol`] errors.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>> {
    let mut header = [0u8; 8];
    let mut read = 0;
    while read < header.len() {
        match r.read(&mut header[read..]) {
            Ok(0) if read == 0 => return Ok(None),
            Ok(0) => {
                return Err(protocol_err(format!(
                    "connection closed mid-frame-header ({read} of 8 bytes)"
                )))
            }
            Ok(n) => read += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(io_err("frame header read", e)),
        }
    }
    let len = u32::from_le_bytes(header[..4].try_into().unwrap());
    let want_crc = u32::from_le_bytes(header[4..].try_into().unwrap());
    if len > MAX_FRAME_LEN {
        return Err(protocol_err(format!(
            "frame length {len} exceeds the {MAX_FRAME_LEN}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|e| io_err("frame payload read", e))?;
    let got_crc = crc32(&payload);
    if got_crc != want_crc {
        return Err(protocol_err(format!(
            "frame checksum mismatch: header says {want_crc:#010x}, payload hashes to {got_crc:#010x}"
        )));
    }
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

/// The first frame of a connection, client → server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientHello {
    /// The client's [`PROTOCOL_VERSION`]; the server rejects a mismatch.
    pub protocol_version: u32,
    /// Shared-secret auth token; must match the server's configured token
    /// (`None` ⇔ the server requires none).
    pub auth_token: Option<String>,
}

impl ClientHello {
    /// Encodes the hello into a frame payload.
    pub fn to_payload(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        for byte in MAGIC {
            e.u8(byte);
        }
        e.u32(self.protocol_version);
        encode_opt_str(&mut e, self.auth_token.as_deref());
        e.into_bytes()
    }

    /// Decodes a hello, verifying the magic bytes first.
    pub fn from_payload(bytes: &[u8]) -> Result<ClientHello> {
        ClientHello::from_payload_inner(bytes).map_err(as_protocol)
    }

    fn from_payload_inner(bytes: &[u8]) -> Result<ClientHello> {
        let mut d = Decoder::new(bytes);
        let mut magic = [0u8; 4];
        for slot in &mut magic {
            *slot = d.u8()?;
        }
        if magic != MAGIC {
            return Err(protocol_err(format!(
                "bad magic {magic:02x?}: not a CrowdDb client"
            )));
        }
        let hello = ClientHello {
            protocol_version: d.u32()?,
            auth_token: decode_opt_str(&mut d)?,
        };
        expect_exhausted(&d)?;
        Ok(hello)
    }
}

/// The server's answer to a [`ClientHello`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandshakeReply {
    /// The connection is live; requests may flow.
    Accepted {
        /// The server's [`PROTOCOL_VERSION`] (equal to the client's).
        protocol_version: u32,
        /// Server-assigned id of this connection's session.
        session_id: u64,
    },
    /// The connection is refused; the server closes it after this frame.
    Rejected {
        /// Why (version mismatch, bad token, shutdown, …).
        reason: String,
    },
}

impl HandshakeReply {
    /// Encodes the reply into a frame payload.
    pub fn to_payload(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            HandshakeReply::Accepted {
                protocol_version,
                session_id,
            } => {
                e.u8(0);
                e.u32(*protocol_version);
                e.u64(*session_id);
            }
            HandshakeReply::Rejected { reason } => {
                e.u8(1);
                e.str(reason);
            }
        }
        e.into_bytes()
    }

    /// Decodes a reply.
    pub fn from_payload(bytes: &[u8]) -> Result<HandshakeReply> {
        HandshakeReply::from_payload_inner(bytes).map_err(as_protocol)
    }

    fn from_payload_inner(bytes: &[u8]) -> Result<HandshakeReply> {
        let mut d = Decoder::new(bytes);
        let reply = match d.u8()? {
            0 => HandshakeReply::Accepted {
                protocol_version: d.u32()?,
                session_id: d.u64()?,
            },
            1 => HandshakeReply::Rejected { reason: d.str()? },
            tag => return Err(protocol_err(format!("unknown handshake reply tag {tag}"))),
        };
        expect_exhausted(&d)?;
        Ok(reply)
    }
}

// ---------------------------------------------------------------------------
// Requests and responses
// ---------------------------------------------------------------------------

/// One client → server message (after the handshake).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Start a query.  With `events`, the server streams every
    /// [`QueryEvent`] as it is produced (the remote anytime path); without,
    /// only the terminal `Completed` (or failure) comes back — the remote
    /// equivalent of a blocking `run()`.
    Query {
        /// Client-chosen id all of this query's responses carry.
        id: u64,
        /// The SQL text (a `WITH EXPANSION` clause works as in-process).
        sql: String,
        /// Explicit per-query policy; `None` applies the connection's
        /// session defaults ([`Request::SetDefaults`]).
        policy: Option<ExpansionPolicy>,
        /// Whether intermediate events (snapshot, progress, deltas) are
        /// wanted.
        events: bool,
    },
    /// Replace the connection's session-default [`ExpansionPolicy`]
    /// (answered with [`Response::Ack`]).
    SetDefaults {
        /// Id echoed on the acknowledgement.
        id: u64,
        /// The new defaults.
        policy: ExpansionPolicy,
    },
    /// Liveness check (answered with [`Response::Ack`]).
    Ping {
        /// Id echoed on the acknowledgement.
        id: u64,
    },
    /// Snapshot the server's connection/query counters (answered with
    /// [`Response::Stats`]).
    Stats {
        /// Id echoed on the reply.
        id: u64,
    },
    /// Scrape the engine's full metric catalog as Prometheus text
    /// (answered with [`Response::Metrics`]).
    Metrics {
        /// Id echoed on the reply.
        id: u64,
    },
    /// Snapshot the engine's live state-monitor tree (answered with
    /// [`Response::Monitor`]).
    Monitor {
        /// Id echoed on the reply.
        id: u64,
    },
    /// Create a table with an explicit storage partition layout (answered
    /// with [`Response::Ack`], or [`Response::QueryFailed`] carrying the
    /// typed error).  Plain SQL `CREATE TABLE` through
    /// [`Request::Query`] stays single-partition; this message is the
    /// remote twin of the in-process
    /// [`TableOptions`](crowddb_core::TableOptions) builder.  Added in
    /// protocol version 3.
    CreateTable {
        /// Id echoed on the acknowledgement.
        id: u64,
        /// The `CREATE TABLE` DDL defining the table's name and schema.
        sql: String,
        /// Partition layout of the new table's storage.
        partitions: PartitionSpec,
    },
    /// Clean shutdown: the server tears the connection down.  In-flight
    /// queries keep running server-side (their crowd work completes and is
    /// cached); only the notifications stop.
    Goodbye,
}

/// Encodes a [`PartitionSpec`] as a *versioned payload field*: the spec's
/// own codec ([`encode_partition_spec`]) wrapped in a length prefix, so a
/// decoder that does not understand the variant inside can still consume
/// exactly the right number of bytes and keep the frame parseable.
fn encode_spec_field(e: &mut Encoder, spec: &PartitionSpec) {
    let mut sub = Encoder::new();
    encode_partition_spec(&mut sub, spec);
    let bytes = sub.into_bytes();
    e.seq_len(bytes.len());
    for byte in bytes {
        e.u8(byte);
    }
}

/// Decodes a [`PartitionSpec`] field written by [`encode_spec_field`].
/// An unknown spec variant (a newer peer's layout) decodes as
/// [`PartitionSpec::Single`] — the universally valid fallback — instead of
/// failing the frame; the length prefix keeps the decoder aligned either
/// way.
fn decode_spec_field(d: &mut Decoder<'_>) -> Result<PartitionSpec> {
    let len = d.seq_len()?;
    let mut bytes = Vec::with_capacity(len);
    for _ in 0..len {
        bytes.push(d.u8()?);
    }
    let mut sub = Decoder::new(&bytes);
    match decode_partition_spec(&mut sub) {
        Ok(spec) if sub.is_exhausted() => Ok(spec),
        _ => Ok(PartitionSpec::Single),
    }
}

impl Request {
    /// Encodes the request into a frame payload.
    pub fn to_payload(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            Request::Query {
                id,
                sql,
                policy,
                events,
            } => {
                e.u8(0);
                e.u64(*id);
                e.str(sql);
                match policy {
                    Some(policy) => {
                        e.bool(true);
                        encode_policy(&mut e, policy);
                    }
                    None => e.bool(false),
                }
                e.bool(*events);
            }
            Request::SetDefaults { id, policy } => {
                e.u8(1);
                e.u64(*id);
                encode_policy(&mut e, policy);
            }
            Request::Ping { id } => {
                e.u8(2);
                e.u64(*id);
            }
            Request::Goodbye => e.u8(3),
            Request::Stats { id } => {
                e.u8(4);
                e.u64(*id);
            }
            Request::Metrics { id } => {
                e.u8(5);
                e.u64(*id);
            }
            Request::Monitor { id } => {
                e.u8(6);
                e.u64(*id);
            }
            Request::CreateTable {
                id,
                sql,
                partitions,
            } => {
                e.u8(7);
                e.u64(*id);
                e.str(sql);
                encode_spec_field(&mut e, partitions);
            }
        }
        e.into_bytes()
    }

    /// Decodes a request.
    pub fn from_payload(bytes: &[u8]) -> Result<Request> {
        Request::from_payload_inner(bytes).map_err(as_protocol)
    }

    fn from_payload_inner(bytes: &[u8]) -> Result<Request> {
        let mut d = Decoder::new(bytes);
        let request = match d.u8()? {
            0 => {
                let id = d.u64()?;
                let sql = d.str()?;
                let policy = if d.bool()? {
                    Some(decode_policy(&mut d)?)
                } else {
                    None
                };
                Request::Query {
                    id,
                    sql,
                    policy,
                    events: d.bool()?,
                }
            }
            1 => Request::SetDefaults {
                id: d.u64()?,
                policy: decode_policy(&mut d)?,
            },
            2 => Request::Ping { id: d.u64()? },
            3 => Request::Goodbye,
            4 => Request::Stats { id: d.u64()? },
            5 => Request::Metrics { id: d.u64()? },
            6 => Request::Monitor { id: d.u64()? },
            7 => Request::CreateTable {
                id: d.u64()?,
                sql: d.str()?,
                partitions: decode_spec_field(&mut d)?,
            },
            tag => return Err(protocol_err(format!("unknown request tag {tag}"))),
        };
        expect_exhausted(&d)?;
        Ok(request)
    }
}

/// One server → client message, tagged with the request it answers.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// One event of a streamed query.  `Completed` is always the final
    /// event of a successful query, exactly as in-process.
    Event {
        /// The query's request id.
        id: u64,
        /// The event, bit-identical to the in-process stream's.
        event: QueryEvent,
    },
    /// The query failed; this is its terminal message.
    QueryFailed {
        /// The query's request id.
        id: u64,
        /// The typed error, round-tripped through the codec.
        error: CrowdDbError,
    },
    /// Acknowledges a [`Request::SetDefaults`] or [`Request::Ping`].
    Ack {
        /// The acknowledged request's id.
        id: u64,
    },
    /// Answers a [`Request::Stats`] with the server's counters.
    Stats {
        /// The answered request's id.
        id: u64,
        /// The counter snapshot.
        stats: ServerStats,
    },
    /// Answers a [`Request::Metrics`] with the engine's metric catalog
    /// rendered as Prometheus text exposition.
    Metrics {
        /// The answered request's id.
        id: u64,
        /// The scrape body; parse it with [`telemetry::parse_text`].
        text: String,
    },
    /// Answers a [`Request::Monitor`] with a snapshot of the engine's
    /// live state-monitor tree.
    Monitor {
        /// The answered request's id.
        id: u64,
        /// The monitor tree at snapshot time.
        tree: MonitorTree,
    },
}

impl Response {
    /// Encodes the response into a frame payload.  Fails only on a
    /// [`QueryEvent`] variant this protocol version cannot express.
    pub fn to_payload(&self) -> Result<Vec<u8>> {
        let mut e = Encoder::new();
        match self {
            Response::Event { id, event } => {
                e.u8(0);
                e.u64(*id);
                encode_event(&mut e, event)?;
            }
            Response::QueryFailed { id, error } => {
                e.u8(1);
                e.u64(*id);
                encode_error(&mut e, error);
            }
            Response::Ack { id } => {
                e.u8(2);
                e.u64(*id);
            }
            Response::Stats { id, stats } => {
                e.u8(3);
                e.u64(*id);
                encode_server_stats(&mut e, stats);
            }
            Response::Metrics { id, text } => {
                e.u8(4);
                e.u64(*id);
                e.str(text);
            }
            Response::Monitor { id, tree } => {
                e.u8(5);
                e.u64(*id);
                encode_monitor_tree(&mut e, tree);
            }
        }
        Ok(e.into_bytes())
    }

    /// Decodes a response.
    pub fn from_payload(bytes: &[u8]) -> Result<Response> {
        Response::from_payload_inner(bytes).map_err(as_protocol)
    }

    fn from_payload_inner(bytes: &[u8]) -> Result<Response> {
        let mut d = Decoder::new(bytes);
        let response = match d.u8()? {
            0 => Response::Event {
                id: d.u64()?,
                event: decode_event(&mut d)?,
            },
            1 => Response::QueryFailed {
                id: d.u64()?,
                error: decode_error(&mut d)?,
            },
            2 => Response::Ack { id: d.u64()? },
            3 => Response::Stats {
                id: d.u64()?,
                stats: decode_server_stats(&mut d)?,
            },
            4 => Response::Metrics {
                id: d.u64()?,
                text: d.str()?,
            },
            5 => Response::Monitor {
                id: d.u64()?,
                tree: decode_monitor_tree(&mut d)?,
            },
            tag => return Err(protocol_err(format!("unknown response tag {tag}"))),
        };
        expect_exhausted(&d)?;
        Ok(response)
    }
}

// ---------------------------------------------------------------------------
// Payload codecs
// ---------------------------------------------------------------------------

fn expect_exhausted(d: &Decoder<'_>) -> Result<()> {
    if d.is_exhausted() {
        Ok(())
    } else {
        Err(protocol_err("trailing bytes after a well-formed message"))
    }
}

fn encode_opt_str(e: &mut Encoder, v: Option<&str>) {
    match v {
        Some(s) => {
            e.bool(true);
            e.str(s);
        }
        None => e.bool(false),
    }
}

fn decode_opt_str(d: &mut Decoder<'_>) -> Result<Option<String>> {
    Ok(if d.bool()? { Some(d.str()?) } else { None })
}

fn encode_opt_f64(e: &mut Encoder, v: Option<f64>) {
    match v {
        Some(x) => {
            e.bool(true);
            e.f64(x);
        }
        None => e.bool(false),
    }
}

fn decode_opt_f64(d: &mut Decoder<'_>) -> Result<Option<f64>> {
    Ok(if d.bool()? { Some(d.f64()?) } else { None })
}

fn encode_mode(e: &mut Encoder, mode: ExpansionMode) {
    e.u8(match mode {
        ExpansionMode::Deny => 0,
        ExpansionMode::CacheOnly => 1,
        ExpansionMode::BestEffort => 2,
        ExpansionMode::Full => 3,
        // `ExpansionMode` is #[non_exhaustive]; a future mode this protocol
        // version cannot name degrades to Full, the engine default.
        _ => 3,
    });
}

fn decode_mode(d: &mut Decoder<'_>) -> Result<ExpansionMode> {
    Ok(match d.u8()? {
        0 => ExpansionMode::Deny,
        1 => ExpansionMode::CacheOnly,
        2 => ExpansionMode::BestEffort,
        3 => ExpansionMode::Full,
        tag => return Err(protocol_err(format!("unknown expansion mode tag {tag}"))),
    })
}

/// Encodes an [`ExpansionPolicy`] (mode, budget, quality floor, adaptive).
pub fn encode_policy(e: &mut Encoder, policy: &ExpansionPolicy) {
    encode_mode(e, policy.mode);
    encode_opt_f64(e, policy.budget);
    encode_opt_f64(e, policy.quality_floor);
    e.bool(policy.adaptive);
}

/// Decodes an [`ExpansionPolicy`].
pub fn decode_policy(d: &mut Decoder<'_>) -> Result<ExpansionPolicy> {
    decode_policy_inner(d).map_err(as_protocol)
}

fn decode_policy_inner(d: &mut Decoder<'_>) -> Result<ExpansionPolicy> {
    let mut policy = ExpansionPolicy::full();
    policy.mode = decode_mode(d)?;
    policy.budget = decode_opt_f64(d)?;
    policy.quality_floor = decode_opt_f64(d)?;
    policy.adaptive = d.bool()?;
    Ok(policy)
}

fn encode_value(e: &mut Encoder, value: &Value) {
    match value {
        Value::Null => e.u8(0),
        Value::Integer(v) => {
            e.u8(1);
            e.i64(*v);
        }
        Value::Float(v) => {
            e.u8(2);
            e.f64(*v);
        }
        Value::Text(v) => {
            e.u8(3);
            e.str(v);
        }
        Value::Boolean(v) => {
            e.u8(4);
            e.bool(*v);
        }
    }
}

fn decode_value(d: &mut Decoder<'_>) -> Result<Value> {
    Ok(match d.u8()? {
        0 => Value::Null,
        1 => Value::Integer(d.i64()?),
        2 => Value::Float(d.f64()?),
        3 => Value::Text(d.str()?),
        4 => Value::Boolean(d.bool()?),
        tag => return Err(protocol_err(format!("unknown value tag {tag}"))),
    })
}

fn encode_missing_reason(e: &mut Encoder, reason: MissingReason) {
    e.u8(match reason {
        MissingReason::BudgetExhausted => 0,
        MissingReason::NoCachedJudgment => 1,
        MissingReason::BelowQualityFloor => 2,
        MissingReason::NoMajority => 3,
        MissingReason::OutOfSpace => 4,
        MissingReason::NotExpanded => 5,
        MissingReason::NoItemId => 6,
        // #[non_exhaustive]: a reason this protocol version cannot name
        // degrades to the generic "not expanded".
        _ => 5,
    });
}

fn decode_missing_reason(d: &mut Decoder<'_>) -> Result<MissingReason> {
    Ok(match d.u8()? {
        0 => MissingReason::BudgetExhausted,
        1 => MissingReason::NoCachedJudgment,
        2 => MissingReason::BelowQualityFloor,
        3 => MissingReason::NoMajority,
        4 => MissingReason::OutOfSpace,
        5 => MissingReason::NotExpanded,
        6 => MissingReason::NoItemId,
        tag => return Err(protocol_err(format!("unknown missing-reason tag {tag}"))),
    })
}

fn encode_provenance(e: &mut Encoder, provenance: &CellProvenance) {
    match provenance {
        CellProvenance::Stored => e.u8(0),
        CellProvenance::CrowdDerived {
            confidence,
            cost_share,
        } => {
            e.u8(1);
            e.f64(*confidence);
            e.f64(*cost_share);
        }
        CellProvenance::CacheHit { confidence } => {
            e.u8(2);
            e.f64(*confidence);
        }
        CellProvenance::Extracted => e.u8(3),
        CellProvenance::Missing { reason } => {
            e.u8(4);
            encode_missing_reason(e, *reason);
        }
        // #[non_exhaustive]: a pedigree this protocol version cannot name
        // degrades to the weakest claim, "not expanded".
        _ => {
            e.u8(4);
            encode_missing_reason(e, MissingReason::NotExpanded);
        }
    }
}

fn decode_provenance(d: &mut Decoder<'_>) -> Result<CellProvenance> {
    Ok(match d.u8()? {
        0 => CellProvenance::Stored,
        1 => CellProvenance::CrowdDerived {
            confidence: d.f64()?,
            cost_share: d.f64()?,
        },
        2 => CellProvenance::CacheHit {
            confidence: d.f64()?,
        },
        3 => CellProvenance::Extracted,
        4 => CellProvenance::Missing {
            reason: decode_missing_reason(d)?,
        },
        tag => return Err(protocol_err(format!("unknown provenance tag {tag}"))),
    })
}

fn encode_rowset(e: &mut Encoder, rows: &RowSet) {
    e.seq_len(rows.columns.len());
    for column in &rows.columns {
        e.str(column);
    }
    e.seq_len(rows.rows.len());
    for row in &rows.rows {
        e.seq_len(row.len());
        for value in row {
            encode_value(e, value);
        }
    }
    e.seq_len(rows.provenance.len());
    for row in &rows.provenance {
        e.seq_len(row.len());
        for provenance in row {
            encode_provenance(e, provenance);
        }
    }
}

fn decode_rowset(d: &mut Decoder<'_>) -> Result<RowSet> {
    let n_columns = d.seq_len()?;
    let mut columns = Vec::with_capacity(n_columns);
    for _ in 0..n_columns {
        columns.push(d.str()?);
    }
    let n_rows = d.seq_len()?;
    let mut rows = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let n_cells = d.seq_len()?;
        let mut row = Vec::with_capacity(n_cells);
        for _ in 0..n_cells {
            row.push(decode_value(d)?);
        }
        rows.push(row);
    }
    let n_provenance = d.seq_len()?;
    let mut provenance = Vec::with_capacity(n_provenance);
    for _ in 0..n_provenance {
        let n_cells = d.seq_len()?;
        let mut row = Vec::with_capacity(n_cells);
        for _ in 0..n_cells {
            row.push(decode_provenance(d)?);
        }
        provenance.push(row);
    }
    Ok(RowSet {
        columns,
        rows,
        provenance,
    })
}

fn encode_degrade_reason(e: &mut Encoder, reason: DegradeReason) {
    e.u8(match reason {
        DegradeReason::ConcurrencyPressure => 0,
        DegradeReason::DollarRateExceeded => 1,
        DegradeReason::QueuePressure => 2,
    });
}

fn decode_degrade_reason(d: &mut Decoder<'_>) -> Result<DegradeReason> {
    Ok(match d.u8()? {
        0 => DegradeReason::ConcurrencyPressure,
        1 => DegradeReason::DollarRateExceeded,
        2 => DegradeReason::QueuePressure,
        tag => return Err(protocol_err(format!("unknown degrade reason tag {tag}"))),
    })
}

fn encode_stage(e: &mut Encoder, stage: &ExpansionStage) {
    match stage {
        ExpansionStage::MissingAttributeDetected => e.u8(0),
        ExpansionStage::ExpansionPlanned => e.u8(1),
        ExpansionStage::JudgmentsReused => e.u8(2),
        ExpansionStage::JoinedInflightRound => e.u8(3),
        ExpansionStage::BudgetExhausted => e.u8(4),
        ExpansionStage::ColumnAdded => e.u8(5),
        ExpansionStage::CrowdSourcingStarted => e.u8(6),
        ExpansionStage::JudgmentsAggregated => e.u8(7),
        ExpansionStage::ExtractorTrained => e.u8(8),
        ExpansionStage::ColumnMaterialized => e.u8(9),
        ExpansionStage::QueryReExecuted => e.u8(10),
        ExpansionStage::Degraded { from, to, reason } => {
            e.u8(11);
            encode_mode(e, *from);
            encode_mode(e, *to);
            encode_degrade_reason(e, *reason);
        }
    }
}

fn decode_stage(d: &mut Decoder<'_>) -> Result<ExpansionStage> {
    Ok(match d.u8()? {
        0 => ExpansionStage::MissingAttributeDetected,
        1 => ExpansionStage::ExpansionPlanned,
        2 => ExpansionStage::JudgmentsReused,
        3 => ExpansionStage::JoinedInflightRound,
        4 => ExpansionStage::BudgetExhausted,
        5 => ExpansionStage::ColumnAdded,
        6 => ExpansionStage::CrowdSourcingStarted,
        7 => ExpansionStage::JudgmentsAggregated,
        8 => ExpansionStage::ExtractorTrained,
        9 => ExpansionStage::ColumnMaterialized,
        10 => ExpansionStage::QueryReExecuted,
        11 => ExpansionStage::Degraded {
            from: decode_mode(d)?,
            to: decode_mode(d)?,
            reason: decode_degrade_reason(d)?,
        },
        tag => return Err(protocol_err(format!("unknown expansion stage tag {tag}"))),
    })
}

/// Encodes a [`ServerStats`] counter snapshot.
pub fn encode_server_stats(e: &mut Encoder, stats: &ServerStats) {
    e.u64(stats.connections_accepted);
    e.u64(stats.connections_active);
    e.u64(stats.handshakes_rejected);
    e.u64(stats.protocol_errors);
    e.u64(stats.queries_started);
    e.u64(stats.queries_completed);
}

/// Decodes a [`ServerStats`] counter snapshot.
pub fn decode_server_stats(d: &mut Decoder<'_>) -> Result<ServerStats> {
    Ok(ServerStats {
        connections_accepted: d.u64()?,
        connections_active: d.u64()?,
        handshakes_rejected: d.u64()?,
        protocol_errors: d.u64()?,
        queries_started: d.u64()?,
        queries_completed: d.u64()?,
    })
}

/// Encodes a [`MonitorTree`] snapshot: name, sorted values, children,
/// recursively.
pub fn encode_monitor_tree(e: &mut Encoder, tree: &MonitorTree) {
    e.str(&tree.name);
    e.seq_len(tree.values.len());
    for (key, value) in &tree.values {
        e.str(key);
        e.str(value);
    }
    e.seq_len(tree.children.len());
    for child in &tree.children {
        encode_monitor_tree(e, child);
    }
}

/// Decodes a [`MonitorTree`], rejecting nesting past [`MAX_MONITOR_DEPTH`].
pub fn decode_monitor_tree(d: &mut Decoder<'_>) -> Result<MonitorTree> {
    decode_monitor_tree_at(d, 0).map_err(as_protocol)
}

fn decode_monitor_tree_at(d: &mut Decoder<'_>, depth: usize) -> Result<MonitorTree> {
    if depth > MAX_MONITOR_DEPTH {
        return Err(protocol_err(format!(
            "monitor tree nests deeper than {MAX_MONITOR_DEPTH} levels"
        )));
    }
    let name = d.str()?;
    let n_values = d.seq_len()?;
    let mut values = Vec::with_capacity(n_values);
    for _ in 0..n_values {
        let key = d.str()?;
        let value = d.str()?;
        values.push((key, value));
    }
    let n_children = d.seq_len()?;
    let mut children = Vec::with_capacity(n_children);
    for _ in 0..n_children {
        children.push(decode_monitor_tree_at(d, depth + 1)?);
    }
    Ok(MonitorTree {
        name,
        values,
        children,
    })
}

fn encode_report(e: &mut Encoder, report: &ExpansionReport) {
    e.str(&report.table);
    e.str(&report.column);
    e.str(&report.attribute);
    e.str(&report.strategy);
    e.seq_len(report.stages.len());
    for stage in &report.stages {
        encode_stage(e, stage);
    }
    e.u64(report.items_crowd_sourced as u64);
    e.u64(report.judgments_collected as u64);
    e.u64(report.rows_filled as u64);
    e.u64(report.rows_unfilled as u64);
    e.f64(report.crowd_cost);
    e.f64(report.crowd_minutes);
    e.u64(report.training_set_size as u64);
    e.u64(report.cache_hits as u64);
    e.u64(report.cache_misses as u64);
    e.f64(report.cost_saved);
    e.u64(report.items_unmapped as u64);
    e.u64(report.items_coalesced as u64);
    e.u64(report.items_dropped as u64);
}

fn decode_report(d: &mut Decoder<'_>) -> Result<ExpansionReport> {
    let table = d.str()?;
    let column = d.str()?;
    let attribute = d.str()?;
    let strategy = d.str()?;
    let n_stages = d.seq_len()?;
    let mut stages = Vec::with_capacity(n_stages);
    for _ in 0..n_stages {
        stages.push(decode_stage(d)?);
    }
    Ok(ExpansionReport {
        table,
        column,
        attribute,
        strategy,
        stages,
        items_crowd_sourced: d.u64()? as usize,
        judgments_collected: d.u64()? as usize,
        rows_filled: d.u64()? as usize,
        rows_unfilled: d.u64()? as usize,
        crowd_cost: d.f64()?,
        crowd_minutes: d.f64()?,
        training_set_size: d.u64()? as usize,
        cache_hits: d.u64()? as usize,
        cache_misses: d.u64()? as usize,
        cost_saved: d.f64()?,
        items_unmapped: d.u64()? as usize,
        items_coalesced: d.u64()? as usize,
        items_dropped: d.u64()? as usize,
    })
}

/// Encodes a [`QueryOutcome`] (policy, result, reports, cost).
pub fn encode_outcome(e: &mut Encoder, outcome: &QueryOutcome) {
    encode_policy(e, &outcome.policy);
    match &outcome.result {
        StatementResult::Rows(rows) => {
            e.u8(0);
            encode_rowset(e, rows);
        }
        StatementResult::Mutation { rows_affected } => {
            e.u8(1);
            e.u64(*rows_affected as u64);
        }
        // #[non_exhaustive]: a future statement shape degrades to an empty
        // mutation rather than a lie about rows.
        _ => {
            e.u8(1);
            e.u64(0);
        }
    }
    e.seq_len(outcome.reports.len());
    for report in &outcome.reports {
        encode_report(e, report);
    }
    e.f64(outcome.crowd_cost);
}

/// Decodes a [`QueryOutcome`].
pub fn decode_outcome(d: &mut Decoder<'_>) -> Result<QueryOutcome> {
    decode_outcome_inner(d).map_err(as_protocol)
}

fn decode_outcome_inner(d: &mut Decoder<'_>) -> Result<QueryOutcome> {
    let policy = decode_policy(d)?;
    let result = match d.u8()? {
        0 => StatementResult::Rows(decode_rowset(d)?),
        1 => StatementResult::Mutation {
            rows_affected: d.u64()? as usize,
        },
        tag => return Err(protocol_err(format!("unknown statement result tag {tag}"))),
    };
    let n_reports = d.seq_len()?;
    let mut reports = Vec::with_capacity(n_reports);
    for _ in 0..n_reports {
        reports.push(decode_report(d)?);
    }
    let crowd_cost = d.f64()?;
    Ok(QueryOutcome::new(policy, result, reports, crowd_cost))
}

/// Encodes a [`QueryEvent`].  Fails on an event variant this protocol
/// version cannot express (`QueryEvent` is `#[non_exhaustive]`): the
/// server skips such events rather than sending garbage.
pub fn encode_event(e: &mut Encoder, event: &QueryEvent) -> Result<()> {
    match event {
        QueryEvent::Snapshot(rows) => {
            e.u8(0);
            encode_rowset(e, rows);
        }
        QueryEvent::Delta {
            rows,
            concept,
            round,
            cost_so_far,
            ..
        } => {
            e.u8(1);
            encode_rowset(e, rows);
            e.str(concept);
            e.u64(*round as u64);
            e.f64(*cost_so_far);
        }
        QueryEvent::Progress {
            concept,
            items_resolved,
            items_outstanding,
            estimated_completeness,
            estimated_remaining_cost,
            ..
        } => {
            e.u8(2);
            e.str(concept);
            e.u64(*items_resolved as u64);
            e.u64(*items_outstanding as u64);
            e.f64(*estimated_completeness);
            e.f64(*estimated_remaining_cost);
        }
        QueryEvent::Completed(outcome) => {
            e.u8(3);
            encode_outcome(e, outcome);
        }
        other => {
            return Err(protocol_err(format!(
                "query event {other:?} is not expressible in protocol version {PROTOCOL_VERSION}"
            )))
        }
    }
    Ok(())
}

/// Decodes a [`QueryEvent`].
pub fn decode_event(d: &mut Decoder<'_>) -> Result<QueryEvent> {
    decode_event_inner(d).map_err(as_protocol)
}

fn decode_event_inner(d: &mut Decoder<'_>) -> Result<QueryEvent> {
    Ok(match d.u8()? {
        0 => QueryEvent::Snapshot(decode_rowset(d)?),
        1 => {
            let rows = decode_rowset(d)?;
            let concept = d.str()?;
            let round = d.u64()? as usize;
            let cost_so_far = d.f64()?;
            QueryEvent::delta(rows, concept, round, cost_so_far)
        }
        2 => {
            let concept = d.str()?;
            let items_resolved = d.u64()? as usize;
            let items_outstanding = d.u64()? as usize;
            let estimated_completeness = d.f64()?;
            let estimated_remaining_cost = d.f64()?;
            QueryEvent::progress(
                concept,
                items_resolved,
                items_outstanding,
                estimated_completeness,
                estimated_remaining_cost,
            )
        }
        3 => QueryEvent::Completed(decode_outcome(d)?),
        tag => return Err(protocol_err(format!("unknown query event tag {tag}"))),
    })
}

/// Encodes a [`CrowdDbError`], preserving the exact variant — including
/// every nested engine error — so remote callers match on typed errors,
/// never on strings.
pub fn encode_error(e: &mut Encoder, error: &CrowdDbError) {
    match error {
        CrowdDbError::Relational(sub) => {
            e.u8(0);
            match sub {
                relational::RelationalError::Parse(m) => {
                    e.u8(0);
                    e.str(m);
                }
                relational::RelationalError::UnknownTable(m) => {
                    e.u8(1);
                    e.str(m);
                }
                relational::RelationalError::UnknownColumn { table, column } => {
                    e.u8(2);
                    e.str(table);
                    e.str(column);
                }
                relational::RelationalError::TableExists(m) => {
                    e.u8(3);
                    e.str(m);
                }
                relational::RelationalError::ColumnExists(m) => {
                    e.u8(4);
                    e.str(m);
                }
                relational::RelationalError::TypeMismatch(m) => {
                    e.u8(5);
                    e.str(m);
                }
                relational::RelationalError::InvalidStatement(m) => {
                    e.u8(6);
                    e.str(m);
                }
                relational::RelationalError::Evaluation(m) => {
                    e.u8(7);
                    e.str(m);
                }
            }
        }
        CrowdDbError::Perceptual(sub) => {
            e.u8(1);
            match sub {
                perceptual::PerceptualError::InvalidRatings(m) => {
                    e.u8(0);
                    e.str(m);
                }
                perceptual::PerceptualError::InvalidConfig(m) => {
                    e.u8(1);
                    e.str(m);
                }
                perceptual::PerceptualError::UnknownId(m) => {
                    e.u8(2);
                    e.str(m);
                }
                perceptual::PerceptualError::Numerical(m) => {
                    e.u8(3);
                    e.str(m);
                }
            }
        }
        CrowdDbError::Learning(sub) => {
            e.u8(2);
            match sub {
                mlkit::MlError::InvalidInput(m) => {
                    e.u8(0);
                    e.str(m);
                }
                mlkit::MlError::InvalidParameter(m) => {
                    e.u8(1);
                    e.str(m);
                }
                mlkit::MlError::MissingClass { positive } => {
                    e.u8(2);
                    e.bool(*positive);
                }
                mlkit::MlError::Numerical(m) => {
                    e.u8(3);
                    e.str(m);
                }
            }
        }
        CrowdDbError::Crowd(sub) => {
            e.u8(3);
            match sub {
                crowdsim::CrowdError::InvalidConfig(m) => {
                    e.u8(0);
                    e.str(m);
                }
                crowdsim::CrowdError::UnknownId(m) => {
                    e.u8(1);
                    e.str(m);
                }
            }
        }
        CrowdDbError::UnknownAttribute { table, attribute } => {
            e.u8(4);
            e.str(table);
            e.str(attribute);
        }
        CrowdDbError::Configuration(m) => {
            e.u8(5);
            e.str(m);
        }
        CrowdDbError::Contention(m) => {
            e.u8(6);
            e.str(m);
        }
        CrowdDbError::Storage(m) => {
            e.u8(7);
            e.str(m);
        }
        CrowdDbError::ExpansionDenied { table, columns } => {
            e.u8(8);
            e.str(table);
            e.seq_len(columns.len());
            for column in columns {
                e.str(column);
            }
        }
        CrowdDbError::Protocol { message, .. } => {
            e.u8(9);
            e.str(message);
        }
        CrowdDbError::Overloaded { tenant, reason } => {
            e.u8(10);
            e.str(tenant);
            e.str(reason);
        }
        // `CrowdDbError` is #[non_exhaustive]; an error variant this
        // protocol version cannot name crosses the wire as a Protocol
        // error carrying its rendered message — typed-ness degrades, the
        // diagnosis survives.
        other => {
            e.u8(9);
            e.str(&other.to_string());
        }
    }
}

/// Decodes a [`CrowdDbError`].
pub fn decode_error(d: &mut Decoder<'_>) -> Result<CrowdDbError> {
    decode_error_inner(d).map_err(as_protocol)
}

fn decode_error_inner(d: &mut Decoder<'_>) -> Result<CrowdDbError> {
    Ok(match d.u8()? {
        0 => CrowdDbError::Relational(match d.u8()? {
            0 => relational::RelationalError::Parse(d.str()?),
            1 => relational::RelationalError::UnknownTable(d.str()?),
            2 => relational::RelationalError::UnknownColumn {
                table: d.str()?,
                column: d.str()?,
            },
            3 => relational::RelationalError::TableExists(d.str()?),
            4 => relational::RelationalError::ColumnExists(d.str()?),
            5 => relational::RelationalError::TypeMismatch(d.str()?),
            6 => relational::RelationalError::InvalidStatement(d.str()?),
            7 => relational::RelationalError::Evaluation(d.str()?),
            tag => return Err(protocol_err(format!("unknown relational error tag {tag}"))),
        }),
        1 => CrowdDbError::Perceptual(match d.u8()? {
            0 => perceptual::PerceptualError::InvalidRatings(d.str()?),
            1 => perceptual::PerceptualError::InvalidConfig(d.str()?),
            2 => perceptual::PerceptualError::UnknownId(d.str()?),
            3 => perceptual::PerceptualError::Numerical(d.str()?),
            tag => return Err(protocol_err(format!("unknown perceptual error tag {tag}"))),
        }),
        2 => CrowdDbError::Learning(match d.u8()? {
            0 => mlkit::MlError::InvalidInput(d.str()?),
            1 => mlkit::MlError::InvalidParameter(d.str()?),
            2 => mlkit::MlError::MissingClass {
                positive: d.bool()?,
            },
            3 => mlkit::MlError::Numerical(d.str()?),
            tag => return Err(protocol_err(format!("unknown learning error tag {tag}"))),
        }),
        3 => CrowdDbError::Crowd(match d.u8()? {
            0 => crowdsim::CrowdError::InvalidConfig(d.str()?),
            1 => crowdsim::CrowdError::UnknownId(d.str()?),
            tag => return Err(protocol_err(format!("unknown crowd error tag {tag}"))),
        }),
        4 => CrowdDbError::UnknownAttribute {
            table: d.str()?,
            attribute: d.str()?,
        },
        5 => CrowdDbError::Configuration(d.str()?),
        6 => CrowdDbError::Contention(d.str()?),
        7 => CrowdDbError::Storage(d.str()?),
        8 => {
            let table = d.str()?;
            let n_columns = d.seq_len()?;
            let mut columns = Vec::with_capacity(n_columns);
            for _ in 0..n_columns {
                columns.push(d.str()?);
            }
            CrowdDbError::ExpansionDenied { table, columns }
        }
        9 => CrowdDbError::protocol(d.str()?),
        10 => CrowdDbError::Overloaded {
            tenant: d.str()?,
            reason: d.str()?,
        },
        tag => return Err(protocol_err(format!("unknown error tag {tag}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowddb_core::expansion::ExpansionStage;

    fn frame_round_trip(payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, payload).unwrap();
        let mut cursor = &buf[..];
        read_frame(&mut cursor).unwrap().unwrap()
    }

    #[test]
    fn frames_round_trip_and_detect_damage() {
        assert_eq!(frame_round_trip(b"hello"), b"hello");
        assert_eq!(frame_round_trip(b""), b"");

        // Clean EOF between frames.
        let mut empty: &[u8] = &[];
        assert!(read_frame(&mut empty).unwrap().is_none());

        // Truncated header.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut cursor = &buf[..3];
        assert!(matches!(
            read_frame(&mut cursor),
            Err(CrowdDbError::Protocol { .. })
        ));

        // Truncated payload.
        let mut cursor = &buf[..buf.len() - 2];
        assert!(matches!(
            read_frame(&mut cursor),
            Err(CrowdDbError::Protocol { .. })
        ));

        // Flipped payload byte fails the checksum.
        let mut corrupt = buf.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x40;
        let mut cursor = &corrupt[..];
        let err = read_frame(&mut cursor).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");

        // An oversize length prefix is rejected before any allocation.
        let mut oversize = Vec::new();
        oversize.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        oversize.extend_from_slice(&0u32.to_le_bytes());
        let mut cursor = &oversize[..];
        let err = read_frame(&mut cursor).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn handshake_round_trips_and_rejects_bad_magic() {
        for hello in [
            ClientHello {
                protocol_version: PROTOCOL_VERSION,
                auth_token: None,
            },
            ClientHello {
                protocol_version: 7,
                auth_token: Some("sesame".into()),
            },
        ] {
            let decoded = ClientHello::from_payload(&hello.to_payload()).unwrap();
            assert_eq!(decoded, hello);
        }
        let mut bad = ClientHello {
            protocol_version: PROTOCOL_VERSION,
            auth_token: None,
        }
        .to_payload();
        bad[0] = b'X';
        let err = ClientHello::from_payload(&bad).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");

        for reply in [
            HandshakeReply::Accepted {
                protocol_version: PROTOCOL_VERSION,
                session_id: 42,
            },
            HandshakeReply::Rejected {
                reason: "bad token".into(),
            },
        ] {
            let decoded = HandshakeReply::from_payload(&reply.to_payload()).unwrap();
            assert_eq!(decoded, reply);
        }
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Query {
                id: 9,
                sql: "SELECT name FROM movies WHERE is_comedy = true".into(),
                policy: Some(ExpansionPolicy::best_effort(12.5).with_quality_floor(0.8)),
                events: true,
            },
            Request::Query {
                id: 10,
                sql: "SELECT 1".into(),
                policy: None,
                events: false,
            },
            Request::SetDefaults {
                id: 11,
                policy: ExpansionPolicy::cache_only(),
            },
            Request::Ping { id: 12 },
            Request::Stats { id: 13 },
            Request::Metrics { id: 14 },
            Request::Monitor { id: 15 },
            Request::CreateTable {
                id: 16,
                sql: "CREATE TABLE things (item_id INTEGER, name TEXT)".into(),
                partitions: PartitionSpec::Hash { n: 4 },
            },
            Request::CreateTable {
                id: 17,
                sql: "CREATE TABLE ranged (item_id INTEGER)".into(),
                partitions: PartitionSpec::Range {
                    bounds: vec![100, 2000],
                },
            },
            Request::CreateTable {
                id: 18,
                sql: "CREATE TABLE plain (item_id INTEGER)".into(),
                partitions: PartitionSpec::Single,
            },
            Request::Goodbye,
        ];
        for request in requests {
            let decoded = Request::from_payload(&request.to_payload()).unwrap();
            assert_eq!(decoded, request);
        }
        assert!(Request::from_payload(&[250]).is_err());
        // Trailing garbage after a well-formed request is a protocol error.
        let mut payload = Request::Ping { id: 1 }.to_payload();
        payload.push(0);
        assert!(Request::from_payload(&payload).is_err());
    }

    #[test]
    fn unknown_partition_spec_variant_falls_back_to_single() {
        // Hand-build a CreateTable frame whose spec field carries a variant
        // tag this build has never heard of.  The length prefix keeps the
        // decoder aligned, so the frame still parses — as single-partition —
        // instead of killing the connection.
        let mut e = Encoder::new();
        e.u8(7);
        e.u64(42);
        e.str("CREATE TABLE future (item_id INTEGER)");
        e.seq_len(5); // spec field: 5 payload bytes
        e.u8(250); // unknown spec variant tag
        for byte in [1, 2, 3, 4] {
            e.u8(byte); // opaque variant payload, skipped via the prefix
        }
        let decoded = Request::from_payload(&e.into_bytes()).unwrap();
        assert_eq!(
            decoded,
            Request::CreateTable {
                id: 42,
                sql: "CREATE TABLE future (item_id INTEGER)".into(),
                partitions: PartitionSpec::Single,
            }
        );
    }

    fn sample_rowset() -> RowSet {
        RowSet {
            columns: vec!["name".into(), "is_comedy".into()],
            rows: vec![
                vec![Value::Text("Rocky".into()), Value::Boolean(false)],
                vec![Value::Text("Grease".into()), Value::Null],
                vec![Value::Integer(3), Value::Float(0.25)],
            ],
            provenance: vec![
                vec![
                    CellProvenance::Stored,
                    CellProvenance::CrowdDerived {
                        confidence: 0.9,
                        cost_share: 0.02,
                    },
                ],
                vec![
                    CellProvenance::Stored,
                    CellProvenance::Missing {
                        reason: MissingReason::BudgetExhausted,
                    },
                ],
                vec![
                    CellProvenance::CacheHit { confidence: 0.75 },
                    CellProvenance::Extracted,
                ],
            ],
        }
    }

    fn sample_report() -> ExpansionReport {
        ExpansionReport {
            table: "movies".into(),
            column: "is_comedy".into(),
            attribute: "Comedy".into(),
            strategy: "perceptual-space extraction".into(),
            stages: vec![
                ExpansionStage::MissingAttributeDetected,
                ExpansionStage::Degraded {
                    from: ExpansionMode::Full,
                    to: ExpansionMode::BestEffort,
                    reason: crowddb_core::DegradeReason::DollarRateExceeded,
                },
                ExpansionStage::ExpansionPlanned,
                ExpansionStage::JudgmentsReused,
                ExpansionStage::JoinedInflightRound,
                ExpansionStage::BudgetExhausted,
                ExpansionStage::ColumnAdded,
                ExpansionStage::CrowdSourcingStarted,
                ExpansionStage::JudgmentsAggregated,
                ExpansionStage::ExtractorTrained,
                ExpansionStage::ColumnMaterialized,
                ExpansionStage::QueryReExecuted,
            ],
            items_crowd_sourced: 100,
            judgments_collected: 1000,
            rows_filled: 900,
            rows_unfilled: 100,
            crowd_cost: 2.0,
            crowd_minutes: 15.0,
            training_set_size: 80,
            cache_hits: 7,
            cache_misses: 93,
            cost_saved: 0.14,
            items_unmapped: 3,
            items_coalesced: 5,
            items_dropped: 2,
        }
    }

    #[test]
    fn events_and_outcomes_round_trip() {
        let outcome = QueryOutcome::new(
            ExpansionPolicy::best_effort(4.0).with_quality_floor(0.7),
            StatementResult::Rows(sample_rowset()),
            vec![sample_report()],
            1.25,
        );
        let events = [
            QueryEvent::Snapshot(sample_rowset()),
            QueryEvent::delta(sample_rowset(), "Comedy", 2, 0.75),
            QueryEvent::progress("Comedy", 30, 70, 0.3, 1.4),
            QueryEvent::Completed(outcome.clone()),
        ];
        for event in &events {
            let mut e = Encoder::new();
            encode_event(&mut e, event).unwrap();
            let bytes = e.into_bytes();
            let mut d = Decoder::new(&bytes);
            let decoded = decode_event(&mut d).unwrap();
            assert!(d.is_exhausted());
            assert_eq!(&decoded, event);
        }
        // Outcomes with a mutation result round-trip too.
        let mutation = QueryOutcome::new(
            ExpansionPolicy::full(),
            StatementResult::Mutation { rows_affected: 17 },
            Vec::new(),
            0.0,
        );
        let mut e = Encoder::new();
        encode_outcome(&mut e, &mutation);
        let bytes = e.into_bytes();
        let decoded = decode_outcome(&mut Decoder::new(&bytes)).unwrap();
        assert_eq!(decoded, mutation);
    }

    /// The satellite contract: **every** existing [`CrowdDbError`] variant
    /// — including each nested engine error variant — survives the codec
    /// exactly, so remote callers never fall back to stringly-typed errors.
    #[test]
    fn every_error_variant_round_trips_exactly() {
        let errors: Vec<CrowdDbError> = vec![
            CrowdDbError::Relational(relational::RelationalError::Parse("bad token".into())),
            CrowdDbError::Relational(relational::RelationalError::UnknownTable("movies".into())),
            CrowdDbError::Relational(relational::RelationalError::UnknownColumn {
                table: "movies".into(),
                column: "is_comedy".into(),
            }),
            CrowdDbError::Relational(relational::RelationalError::TableExists("movies".into())),
            CrowdDbError::Relational(relational::RelationalError::ColumnExists("name".into())),
            CrowdDbError::Relational(relational::RelationalError::TypeMismatch("int/bool".into())),
            CrowdDbError::Relational(relational::RelationalError::InvalidStatement(
                "arity".into(),
            )),
            CrowdDbError::Relational(relational::RelationalError::Evaluation("div 0".into())),
            CrowdDbError::Perceptual(perceptual::PerceptualError::InvalidRatings("empty".into())),
            CrowdDbError::Perceptual(perceptual::PerceptualError::InvalidConfig("d = 0".into())),
            CrowdDbError::Perceptual(perceptual::PerceptualError::UnknownId("item 7".into())),
            CrowdDbError::Perceptual(perceptual::PerceptualError::Numerical("NaN".into())),
            CrowdDbError::Learning(mlkit::MlError::InvalidInput("no rows".into())),
            CrowdDbError::Learning(mlkit::MlError::InvalidParameter("C < 0".into())),
            CrowdDbError::Learning(mlkit::MlError::MissingClass { positive: true }),
            CrowdDbError::Learning(mlkit::MlError::MissingClass { positive: false }),
            CrowdDbError::Learning(mlkit::MlError::Numerical("diverged".into())),
            CrowdDbError::Crowd(crowdsim::CrowdError::InvalidConfig("no items".into())),
            CrowdDbError::Crowd(crowdsim::CrowdError::UnknownId("worker 9".into())),
            CrowdDbError::UnknownAttribute {
                table: "movies".into(),
                attribute: "humor".into(),
            },
            CrowdDbError::Configuration("no crowd source".into()),
            CrowdDbError::Contention("kept aborting".into()),
            CrowdDbError::Storage("torn record".into()),
            CrowdDbError::ExpansionDenied {
                table: "movies".into(),
                columns: vec!["is_comedy".into(), "is_horror".into()],
            },
            CrowdDbError::protocol("handshake rejected"),
            CrowdDbError::Overloaded {
                tenant: "acme".into(),
                reason: "5 concurrent queries at cap 5".into(),
            },
        ];
        for error in &errors {
            let mut e = Encoder::new();
            encode_error(&mut e, error);
            let bytes = e.into_bytes();
            let mut d = Decoder::new(&bytes);
            let decoded = decode_error(&mut d).unwrap();
            assert!(d.is_exhausted());
            assert_eq!(&decoded, error, "variant {error:?} did not round-trip");
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::Event {
                id: 3,
                event: QueryEvent::Snapshot(sample_rowset()),
            },
            Response::QueryFailed {
                id: 4,
                error: CrowdDbError::ExpansionDenied {
                    table: "movies".into(),
                    columns: vec!["is_comedy".into()],
                },
            },
            Response::Ack { id: 5 },
            Response::QueryFailed {
                id: 6,
                error: CrowdDbError::Overloaded {
                    tenant: "acme".into(),
                    reason: "hard cap".into(),
                },
            },
            Response::Stats {
                id: 7,
                stats: ServerStats {
                    connections_accepted: 12,
                    connections_active: 3,
                    handshakes_rejected: 2,
                    protocol_errors: 1,
                    queries_started: 40,
                    queries_completed: 39,
                },
            },
            Response::Metrics {
                id: 8,
                text:
                    "# TYPE crowddb_queries_failed_total counter\ncrowddb_queries_failed_total 0\n"
                        .into(),
            },
            Response::Monitor {
                id: 9,
                tree: MonitorTree {
                    name: "crowddb".into(),
                    values: vec![],
                    children: vec![MonitorTree {
                        name: "expansions".into(),
                        values: vec![("cost_so_far".into(), "2.50".into())],
                        children: vec![],
                    }],
                },
            },
        ];
        for response in responses {
            let payload = response.to_payload().unwrap();
            let decoded = Response::from_payload(&payload).unwrap();
            assert_eq!(decoded, response);
        }
        assert!(Response::from_payload(&[9]).is_err());
    }

    #[test]
    fn monitor_tree_depth_limit_is_enforced() {
        let mut tree = MonitorTree {
            name: "leaf".into(),
            values: vec![],
            children: vec![],
        };
        for i in 0..=MAX_MONITOR_DEPTH {
            tree = MonitorTree {
                name: format!("n{i}"),
                values: vec![],
                children: vec![tree],
            };
        }
        let mut e = Encoder::new();
        encode_monitor_tree(&mut e, &tree);
        let bytes = e.into_bytes();
        let err = decode_monitor_tree(&mut Decoder::new(&bytes)).unwrap_err();
        assert!(err.to_string().contains("nests deeper"), "{err}");
    }

    #[test]
    fn garbage_payloads_are_typed_protocol_errors_not_panics() {
        for garbage in [&[][..], &[42u8][..], &[0, 0, 0][..], &[1, 255, 255][..]] {
            match Request::from_payload(garbage) {
                Err(CrowdDbError::Protocol { .. }) => {}
                other => panic!("garbage {garbage:?} produced {other:?}"),
            }
        }
        let mut d = Decoder::new(&[200]);
        assert!(matches!(
            decode_event(&mut d),
            Err(CrowdDbError::Protocol { .. })
        ));
    }
}
