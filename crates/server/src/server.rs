//! The multi-client TCP server wrapping a [`CrowdDb`].
//!
//! [`CrowdDbServer::bind`] takes a shared database and a listen address and
//! serves the wire protocol of [`crate::wire`].  One dedicated thread
//! accepts connections; everything else — per-connection reader loops, the
//! single writer serializing each connection's outbound frames, and one
//! pump per in-flight query forwarding its [`QueryEvent`]s — runs as jobs
//! on the database's own elastic scheduler pool, so a pile-up of slow
//! clients grows overflow workers instead of starving the expansion
//! pipeline.
//!
//! Because every connection talks to the *same* [`CrowdDb`], the engine's
//! cross-query machinery works across clients for free: two clients asking
//! for the same missing attribute coalesce onto one in-flight crowd round
//! (the first pays, the joiner rides along), and a judgment crowdsourced
//! for one client is a cache hit for the next.
//!
//! A client that vanishes mid-stream costs nothing but its notifications:
//! its pump's next send fails, the pump drops its [`QueryStream`] and
//! exits, and the dispatched expansion completes on the scheduler —
//! releasing its in-flight claim and populating the judgment cache so a
//! follow-up query (from anyone) finishes from cache.
//!
//! [`QueryEvent`]: crowddb_core::QueryEvent
//! [`QueryStream`]: crowddb_core::QueryStream

use crate::wire::{
    read_frame, write_frame, ClientHello, HandshakeReply, Request, Response, PROTOCOL_VERSION,
};
use crowddb_core::{CrowdDb, CrowdDbError, ExpansionPolicy, QueryEvent, Result, TableOptions};
use relational::PartitionSpec;
use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use telemetry::StateMonitor;

/// Tuning knobs for a [`CrowdDbServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Shared-secret token every [`ClientHello`] must present.  `None`
    /// accepts tokenless clients (and rejects ones that do send a token).
    pub auth_token: Option<String>,
    /// Cap on how long one outbound frame may take to write before the
    /// connection is declared dead.  `None` blocks indefinitely.
    pub write_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            auth_token: None,
            write_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// A point-in-time snapshot of the server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections_accepted: u64,
    /// Connections currently live (post-accept, pre-teardown).
    pub connections_active: u64,
    /// Handshakes refused (version mismatch, bad token, bad magic).
    pub handshakes_rejected: u64,
    /// Malformed frames / undecodable requests; each one cost its sender
    /// the connection, and nothing else.
    pub protocol_errors: u64,
    /// Queries started on behalf of remote clients.
    pub queries_started: u64,
    /// Of those, queries that ran to a terminal event (success or typed
    /// failure) — including ones whose client had already vanished.
    pub queries_completed: u64,
}

#[derive(Default)]
struct Counters {
    connections_accepted: AtomicU64,
    connections_active: AtomicU64,
    handshakes_rejected: AtomicU64,
    protocol_errors: AtomicU64,
    queries_started: AtomicU64,
    queries_completed: AtomicU64,
}

struct Shared {
    db: Arc<CrowdDb>,
    config: ServerConfig,
    shutting_down: AtomicBool,
    counters: Counters,
    next_session_id: AtomicU64,
    // One try-cloned handle per live connection, so shutdown can sever
    // every socket and unblock the reader jobs parked in read_frame.
    connections: Mutex<HashMap<u64, TcpStream>>,
    // The server's branch of the database's state-monitor tree; each live
    // connection hangs a child under it for the lifetime of its session.
    monitor: StateMonitor,
}

/// A running CrowdDb network server.  Dropping it shuts it down: the
/// listener closes, every live connection is severed, and the accept
/// thread is joined.
pub struct CrowdDbServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for CrowdDbServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrowdDbServer")
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

impl CrowdDbServer {
    /// Binds a listener and starts serving `db` at `addr` (pass port 0 to
    /// let the OS pick; [`local_addr`](CrowdDbServer::local_addr) reports
    /// the result).
    pub fn bind(db: Arc<CrowdDb>, addr: impl ToSocketAddrs, config: ServerConfig) -> Result<Self> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| CrowdDbError::protocol(format!("bind failed: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| CrowdDbError::protocol(format!("local_addr failed: {e}")))?;
        let monitor = db.state_monitor().make_child("server");
        let shared = Arc::new(Shared {
            db,
            config,
            shutting_down: AtomicBool::new(false),
            counters: Counters::default(),
            next_session_id: AtomicU64::new(1),
            connections: Mutex::new(HashMap::new()),
            monitor,
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("crowddb-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(|e| CrowdDbError::protocol(format!("accept thread spawn failed: {e}")))?;
        Ok(CrowdDbServer {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the server is actually listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshots the server's counters.
    pub fn stats(&self) -> ServerStats {
        snapshot_counters(&self.shared.counters)
    }

    /// Stops accepting, severs every live connection, and joins the accept
    /// thread.  Queries already dispatched to the crowd complete on the
    /// database's scheduler (their judgments land in the cache); only
    /// their notifications are lost.  Idempotent.
    pub fn shutdown(&mut self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the acceptor: it checks the flag after every accept, so a
        // throwaway self-connection gets it past the blocking call.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Sever live connections; their reader jobs unblock with an error,
        // tear themselves down, and decrement the active count.
        for (_, sock) in self.shared.connections.lock().unwrap().drain() {
            let _ = sock.shutdown(Shutdown::Both);
        }
        // Bounded wait for teardown so the CrowdDb's scheduler isn't
        // dropped while connection jobs still hold sockets.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while self
            .shared
            .counters
            .connections_active
            .load(Ordering::SeqCst)
            > 0
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

impl Drop for CrowdDbServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn snapshot_counters(c: &Counters) -> ServerStats {
    ServerStats {
        connections_accepted: c.connections_accepted.load(Ordering::SeqCst),
        connections_active: c.connections_active.load(Ordering::SeqCst),
        handshakes_rejected: c.handshakes_rejected.load(Ordering::SeqCst),
        protocol_errors: c.protocol_errors.load(Ordering::SeqCst),
        queries_started: c.queries_started.load(Ordering::SeqCst),
        queries_completed: c.queries_completed.load(Ordering::SeqCst),
    }
}

/// The engine's metric catalog plus the server's own counter families,
/// rendered as one Prometheus scrape body.
fn metrics_text(shared: &Shared) -> String {
    let mut snap = shared.db.metrics_snapshot();
    let stats = snapshot_counters(&shared.counters);
    snap.push_counter(
        "crowddb_server_connections_accepted_total",
        "Connections accepted over the server's lifetime",
        stats.connections_accepted as f64,
    );
    snap.push_gauge(
        "crowddb_server_connections_active",
        "Connections currently live",
        stats.connections_active as f64,
    );
    snap.push_counter(
        "crowddb_server_handshakes_rejected_total",
        "Handshakes refused (version mismatch, bad token, connection cap)",
        stats.handshakes_rejected as f64,
    );
    snap.push_counter(
        "crowddb_server_protocol_errors_total",
        "Malformed frames or undecodable requests",
        stats.protocol_errors as f64,
    );
    snap.push_counter(
        "crowddb_server_queries_started_total",
        "Queries started on behalf of remote clients",
        stats.queries_started as f64,
    );
    snap.push_counter(
        "crowddb_server_queries_completed_total",
        "Remote queries that ran to a terminal event",
        stats.queries_completed as f64,
    );
    snap.sorted().render()
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for incoming in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let sock = match incoming {
            Ok(sock) => sock,
            Err(_) => continue,
        };
        let session_id = shared.next_session_id.fetch_add(1, Ordering::SeqCst);
        shared
            .counters
            .connections_accepted
            .fetch_add(1, Ordering::SeqCst);
        shared
            .counters
            .connections_active
            .fetch_add(1, Ordering::SeqCst);
        if let Ok(handle) = sock.try_clone() {
            shared
                .connections
                .lock()
                .unwrap()
                .insert(session_id, handle);
        }
        let conn_shared = Arc::clone(&shared);
        let db = Arc::clone(&shared.db);
        db.spawn_background(move || {
            handle_connection(conn_shared, sock, session_id);
        });
    }
}

/// Runs one connection start to finish: handshake, reader loop, teardown.
fn handle_connection(shared: Arc<Shared>, mut sock: TcpStream, session_id: u64) {
    let _ = sock.set_nodelay(true);
    if let Ok(tenant) = handshake(&shared, &mut sock, session_id) {
        serve_requests(&shared, &mut sock, session_id, &tenant);
        if let Some(limiter) = shared.db.limiter() {
            limiter.release_connection(&tenant);
        }
    }
    let _ = sock.shutdown(Shutdown::Both);
    shared.connections.lock().unwrap().remove(&session_id);
    shared
        .counters
        .connections_active
        .fetch_sub(1, Ordering::SeqCst);
}

/// Runs the handshake; on success returns the tenant identity the
/// connection authenticated as (the admission controller's accounting
/// key).  The shared-secret token of [`ServerConfig::auth_token`] maps to
/// the `"default"` tenant; a token naming a tenant configured on the
/// database's [`Limiter`](crowddb_core::Limiter) authenticates as that
/// tenant and claims one of its connection slots.
fn handshake(shared: &Arc<Shared>, sock: &mut TcpStream, session_id: u64) -> Result<String> {
    let hello = match read_frame(sock)? {
        Some(payload) => ClientHello::from_payload(&payload),
        None => return Err(CrowdDbError::protocol("closed before hello")),
    };
    let reject = |sock: &mut TcpStream, reason: String| {
        shared
            .counters
            .handshakes_rejected
            .fetch_add(1, Ordering::SeqCst);
        let reply = HandshakeReply::Rejected {
            reason: reason.clone(),
        };
        let _ = write_frame(sock, &reply.to_payload());
        Err(CrowdDbError::protocol(reason))
    };
    let hello = match hello {
        Ok(hello) => hello,
        Err(e) => {
            shared
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::SeqCst);
            log_protocol_error(session_id, &e);
            return reject(sock, e.to_string());
        }
    };
    if hello.protocol_version != PROTOCOL_VERSION {
        return reject(
            sock,
            format!(
                "protocol version mismatch: client speaks {}, server speaks {PROTOCOL_VERSION}",
                hello.protocol_version
            ),
        );
    }
    let limiter = shared.db.limiter();
    let tenant = if hello.auth_token == shared.config.auth_token {
        "default".to_string()
    } else {
        match hello.auth_token.as_deref() {
            Some(token) if limiter.as_ref().is_some_and(|l| l.has_tenant(token)) => {
                token.to_string()
            }
            _ => return reject(sock, "auth token rejected".into()),
        }
    };
    if let Some(limiter) = &limiter {
        if let Err(reason) = limiter.admit_connection(&tenant) {
            return reject(sock, format!("connection rejected: {reason}"));
        }
    }
    let reply = HandshakeReply::Accepted {
        protocol_version: PROTOCOL_VERSION,
        session_id,
    };
    write_frame(sock, &reply.to_payload())?;
    Ok(tenant)
}

/// The post-handshake reader loop.  Decodes requests and dispatches each
/// query to its own pump job; returns when the client says goodbye, the
/// connection drops, or a malformed frame arrives.
fn serve_requests(shared: &Arc<Shared>, sock: &mut TcpStream, session_id: u64, tenant: &str) {
    // All outbound traffic funnels through one writer job so concurrent
    // pumps never interleave partial frames.
    let (tx, rx) = mpsc::channel::<Vec<u8>>();
    let writer_sock = match sock.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let _ = writer_sock.set_write_timeout(shared.config.write_timeout);
    shared
        .db
        .spawn_background(move || writer_loop(rx, writer_sock));

    // The connection's node in the state-monitor tree, live until this
    // function returns.
    let conn_monitor = shared.monitor.make_child(format!("session-{session_id}"));
    conn_monitor.insert("tenant", tenant);
    if let Ok(peer) = sock.peer_addr() {
        conn_monitor.insert("peer", peer);
    }

    // Per-connection session state: defaults applied to queries that do
    // not carry their own policy.
    let defaults: Arc<Mutex<Option<ExpansionPolicy>>> = Arc::new(Mutex::new(None));

    loop {
        let payload = match read_frame(sock) {
            Ok(Some(payload)) => payload,
            // Clean EOF at a frame boundary: client is gone; its in-flight
            // queries keep running server-side.
            Ok(None) => break,
            Err(e) => {
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::SeqCst);
                log_protocol_error(session_id, &e);
                break;
            }
        };
        match Request::from_payload(&payload) {
            Ok(Request::Query {
                id,
                sql,
                policy,
                events,
            }) => {
                shared
                    .counters
                    .queries_started
                    .fetch_add(1, Ordering::SeqCst);
                let db = Arc::clone(&shared.db);
                let pump_shared = Arc::clone(shared);
                let pump_tx = tx.clone();
                let pump_defaults = Arc::clone(&defaults);
                let pump_tenant = tenant.to_string();
                shared.db.spawn_background(move || {
                    pump_query(
                        db,
                        pump_shared,
                        pump_tx,
                        pump_defaults,
                        pump_tenant,
                        id,
                        sql,
                        policy,
                        events,
                    );
                });
            }
            Ok(Request::SetDefaults { id, policy }) => {
                *defaults.lock().unwrap() = Some(policy);
                send_response(&tx, &Response::Ack { id });
            }
            Ok(Request::Ping { id }) => {
                send_response(&tx, &Response::Ack { id });
            }
            Ok(Request::Stats { id }) => {
                let stats = snapshot_counters(&shared.counters);
                send_response(&tx, &Response::Stats { id, stats });
            }
            Ok(Request::Metrics { id }) => {
                let text = metrics_text(shared);
                send_response(&tx, &Response::Metrics { id, text });
            }
            Ok(Request::Monitor { id }) => {
                let tree = shared.db.state_monitor().to_tree();
                send_response(&tx, &Response::Monitor { id, tree });
            }
            Ok(Request::CreateTable {
                id,
                sql,
                partitions,
            }) => {
                let response = match create_remote_table(&shared.db, &sql, partitions) {
                    Ok(()) => Response::Ack { id },
                    Err(error) => Response::QueryFailed { id, error },
                };
                send_response(&tx, &response);
            }
            Ok(Request::Goodbye) => break,
            Err(e) => {
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::SeqCst);
                log_protocol_error(session_id, &e);
                break;
            }
        }
    }
    // Sever the socket: the writer's next write fails and it exits, which
    // disconnects the channel, which makes orphaned pumps' sends fail, so
    // they drop their streams and bail.  The queries themselves finish on
    // the scheduler regardless — releasing in-flight claims and filling
    // the judgment cache.
    let _ = sock.shutdown(Shutdown::Both);
    drop(tx);
}

fn writer_loop(rx: mpsc::Receiver<Vec<u8>>, mut sock: TcpStream) {
    while let Ok(payload) = rx.recv() {
        if write_frame(&mut sock, &payload).is_err() {
            break;
        }
    }
    let _ = sock.shutdown(Shutdown::Both);
}

fn send_response(tx: &mpsc::Sender<Vec<u8>>, response: &Response) -> bool {
    match response.to_payload() {
        Ok(payload) => tx.send(payload).is_ok(),
        Err(_) => true, // inexpressible event: skip it, keep the connection
    }
}

/// One in-flight query: runs it on the shared database and forwards its
/// stream to the connection's writer, tagged with the request id.
#[allow(clippy::too_many_arguments)]
fn pump_query(
    db: Arc<CrowdDb>,
    shared: Arc<Shared>,
    tx: mpsc::Sender<Vec<u8>>,
    defaults: Arc<Mutex<Option<ExpansionPolicy>>>,
    tenant: String,
    id: u64,
    sql: String,
    policy: Option<ExpansionPolicy>,
    events: bool,
) {
    let mut builder = db.query(sql).tenant(tenant);
    let effective = policy.or_else(|| defaults.lock().unwrap().clone());
    if let Some(policy) = effective {
        builder = builder.policy(policy);
    }
    let mut stream = builder.stream();
    let mut client_gone = false;
    for event in &mut stream {
        let terminal = matches!(event, QueryEvent::Completed(_));
        if (events || terminal) && !send_response(&tx, &Response::Event { id, event }) {
            // Client disconnected mid-stream.  Drop the stream and
            // exit; the dispatched expansion still completes on the
            // scheduler, so its in-flight claim is released and its
            // judgments are cached for whoever asks next.
            client_gone = true;
            break;
        }
    }
    if !client_gone {
        if let Err(error) = stream.wait() {
            send_response(&tx, &Response::QueryFailed { id, error });
        }
    }
    shared
        .counters
        .queries_completed
        .fetch_add(1, Ordering::SeqCst);
}

/// Executes a remote `CREATE TABLE` DDL against a scratch catalog and
/// installs the result with the requested partition layout — the server
/// half of [`Request::CreateTable`].  Anything but a `CREATE TABLE`
/// statement is refused before touching the engine.
fn create_remote_table(db: &CrowdDb, sql: &str, partitions: PartitionSpec) -> Result<()> {
    let statement = relational::sql::parse(sql)?;
    if !matches!(statement, relational::sql::Statement::CreateTable { .. }) {
        return Err(CrowdDbError::Configuration(
            "a CreateTable request must carry a CREATE TABLE statement".into(),
        ));
    }
    let mut scratch = relational::Catalog::new();
    relational::executor::execute(&statement, &mut scratch)?;
    let name = scratch
        .table_names()
        .pop()
        .expect("CREATE TABLE created a table");
    let table = scratch.table(&name).expect("listed table exists").clone();
    let options = TableOptions::new(table.name(), &db.config().id_column).partitions(partitions);
    db.create_table_with(options, table)
}

fn log_protocol_error(session_id: u64, error: &CrowdDbError) {
    eprintln!("crowddb-server: dropping connection {session_id}: {error}");
}
