//! The network service layer: CrowdDb as a multi-client TCP server.
//!
//! In-process, a [`CrowdDb`](crowddb_core::CrowdDb) already multiplexes
//! concurrent sessions over one engine: queries run on an elastic
//! scheduler, concurrent expansions of the same attribute coalesce onto a
//! single crowd round, and every crowdsourced judgment lands in a shared
//! cache.  This crate puts that engine on a socket.  [`CrowdDbServer`]
//! accepts TCP connections speaking the framed, checksummed, versioned
//! binary protocol of [`wire`]; each connection is a session with its own
//! policy defaults and as many concurrent in-flight queries as it cares to
//! tag with request ids; each query's anytime event stream — snapshot,
//! progress, deltas, completion — is forwarded frame by frame as the
//! expansion produces it.
//!
//! The interesting property is what *doesn't* change: because every
//! connection drives the same engine, cross-client coalescing, owner-pays
//! cost accounting, judgment reuse, and crash-safe persistence all behave
//! exactly as they do for in-process callers.  N clients asking for the
//! same missing attribute still buy exactly one crowd round.
//!
//! The matching blocking client lives in `crowddb-client`.

#![warn(missing_docs)]

pub mod server;
pub mod wire;

pub use server::{CrowdDbServer, ServerConfig, ServerStats};
