//! Anytime answers: the streaming query API.
//!
//! `run()` hides minutes of simulated crowd latency behind an
//! all-or-nothing [`QueryOutcome`].  Trushkowsky et al. (*Getting It All
//! from the Crowd*, PAPERS.md) argue that crowd-powered queries should
//! instead surface partial answers plus a principled completeness estimate
//! while acquisition continues.  [`QueryStream`] is that surface: a
//! blocking [`Iterator`] of [`QueryEvent`]s fed over an
//! [`std::sync::mpsc`] channel by the expansion work running on the
//! database's [`scheduler`](crate::scheduler) threads.
//!
//! The event order for one query is:
//!
//! 1. [`QueryEvent::Snapshot`] — the rows answerable *right now* from
//!    stored and previously purchased cells (missing attributes behave as
//!    all-`NULL` columns), delivered before any crowd work starts;
//! 2. interleaved [`QueryEvent::Progress`] and [`QueryEvent::Delta`]
//!    events, one stream per concept, as cache hits, coalesced rounds, and
//!    this query's own crowd rounds resolve items;
//! 3. exactly one final [`QueryEvent::Completed`] carrying the same
//!    [`QueryOutcome`] a blocking [`run`](crate::QueryBuilder::run) would
//!    have produced under the same seed and policy — `run` *is* a drain
//!    over this stream, so there is exactly one execution path.
//!
//! Dropping a stream early does **not** cancel the query: the crowd work
//! already dispatched completes, is paid for, and lands in the judgment
//! cache and catalog as usual — only the notifications stop.

use std::sync::mpsc;

use crate::error::CrowdDbError;
use crate::session::{QueryOutcome, RowSet};
use crate::Result;

/// One incremental notification from an in-flight anytime query.
///
/// The enum (and its struct variants) are `#[non_exhaustive]`: future
/// event kinds and per-event fields can appear without breaking matches —
/// always include a wildcard arm and `..` rest patterns.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum QueryEvent {
    /// The rows answerable immediately from stored and already-purchased
    /// cells, with per-cell provenance, in the same shape as the eventual
    /// full answer.  Referenced attributes that are not materialized yet
    /// behave as all-`NULL` columns: their cells carry
    /// [`Missing`](crate::CellProvenance::Missing) provenance and
    /// predicates over them reject rows, exactly as over an
    /// existing-but-unfilled column.  Emitted once, before any crowd work.
    Snapshot(RowSet),
    /// Fresh verdicts one of this query's own crowd rounds brought in.
    #[non_exhaustive]
    Delta {
        /// The newly judged items as `(id column, concept)` rows — the raw
        /// per-item verdicts of the round with `CrowdDerived` provenance,
        /// keyed by the configured id column.  Filtering, projection, and
        /// extractor extrapolation happen once at completion; this is the
        /// acquisition as it lands.
        rows: RowSet,
        /// The domain concept the round asked about.
        concept: String,
        /// 0-based index of the crowd round *this query* dispatched
        /// (coalesced foreign rounds surface as [`QueryEvent::Progress`]
        /// jumps instead — they are not this query's rounds).
        round: usize,
        /// Dollars this query has been charged so far, across all concepts.
        cost_so_far: f64,
    },
    /// The acquisition state of one concept.
    #[non_exhaustive]
    Progress {
        /// The domain concept being acquired.
        concept: String,
        /// Items with an answer so far (cached, coalesced, or freshly
        /// judged — ties included: the crowd was asked and answered).
        items_resolved: usize,
        /// Items still without an answer.  After a budget ran out
        /// mid-plan this is the `BudgetExhausted` remainder the query
        /// will *not* acquire — reported explicitly rather than the
        /// stream silently stopping short.
        items_outstanding: usize,
        /// Estimated fraction of the *achievable* answer already resolved,
        /// in `[0, 1]`.  The denominator comes from the crowd source's own
        /// [`estimate_outstanding`](crate::CrowdSource::estimate_outstanding)
        /// hook when it offers one: items the crowd is never expected to
        /// resolve (nobody knows them) do not count against completeness,
        /// in the spirit of Trushkowsky et al.'s estimators.
        estimated_completeness: f64,
        /// Predicted dollars to acquire the outstanding items (0 when
        /// nothing is outstanding or the source cannot price its work).
        estimated_remaining_cost: f64,
    },
    /// The query finished.  The payload is exactly what
    /// [`run`](crate::QueryBuilder::run) would have returned — same rows,
    /// same per-cell provenance, same dollars — because `run` is itself a
    /// drain over this stream.  Always the final event.
    Completed(QueryOutcome),
}

impl QueryEvent {
    /// Builds a [`Delta`](QueryEvent::Delta) event.  The struct variant is
    /// `#[non_exhaustive]`, so out-of-crate producers — above all the
    /// network service layer decoding events off the wire — construct it
    /// through this entry point.
    pub fn delta(rows: RowSet, concept: impl Into<String>, round: usize, cost_so_far: f64) -> Self {
        QueryEvent::Delta {
            rows,
            concept: concept.into(),
            round,
            cost_so_far,
        }
    }

    /// Builds a [`Progress`](QueryEvent::Progress) event (the wire-decoding
    /// counterpart of [`QueryEvent::delta`]).
    pub fn progress(
        concept: impl Into<String>,
        items_resolved: usize,
        items_outstanding: usize,
        estimated_completeness: f64,
        estimated_remaining_cost: f64,
    ) -> Self {
        QueryEvent::Progress {
            concept: concept.into(),
            items_resolved,
            items_outstanding,
            estimated_completeness,
            estimated_remaining_cost,
        }
    }
}

/// What the worker sends over the channel: events, or the query's failure.
pub(crate) enum StreamMessage {
    Event(QueryEvent),
    Failed(CrowdDbError),
}

/// The worker-side half of a stream: emits events into the channel,
/// silently dropping them once the consumer has gone away (an abandoned
/// stream must not fail the expansion that other queries may be coalescing
/// onto).  [`EventSink::null`] is the sink of non-query entry points like
/// [`CrowdDb::expand_columns`](crate::CrowdDb::expand_columns) — same
/// pipeline, nobody listening.
pub(crate) struct EventSink {
    sender: Option<mpsc::Sender<StreamMessage>>,
    /// Whether intermediate events (snapshot, progress, deltas) are wanted.
    /// A blocking `run()` drains the same stream but only needs the
    /// terminal message — building events nobody reads would make the
    /// compat path pay for the streaming one.
    events: bool,
}

impl EventSink {
    /// A connected sink plus the receiver its [`QueryStream`] reads.
    /// `events = false` delivers only the terminal completion/failure.
    pub(crate) fn channel(events: bool) -> (EventSink, mpsc::Receiver<StreamMessage>) {
        let (sender, receiver) = mpsc::channel();
        (
            EventSink {
                sender: Some(sender),
                events,
            },
            receiver,
        )
    }

    /// A sink that discards everything (non-streaming entry points).
    pub(crate) fn null() -> EventSink {
        EventSink {
            sender: None,
            events: false,
        }
    }

    /// True when somebody may be listening for intermediate events — lets
    /// the pipeline skip building events (snapshots, estimates) nobody
    /// would see.
    pub(crate) fn is_live(&self) -> bool {
        self.sender.is_some() && self.events
    }

    pub(crate) fn emit(&self, event: QueryEvent) {
        if !self.is_live() {
            // Terminal messages go through `complete`/`fail`, which send
            // regardless of the events flag.
            return;
        }
        if let Some(sender) = &self.sender {
            let _ = sender.send(StreamMessage::Event(event));
        }
    }

    /// Terminal success: emits the final [`QueryEvent::Completed`]
    /// (delivered even on an events-off sink — it carries the outcome).
    pub(crate) fn complete(&self, outcome: QueryOutcome) {
        if let Some(sender) = &self.sender {
            let _ = sender.send(StreamMessage::Event(QueryEvent::Completed(outcome)));
        }
    }

    /// Terminal failure: the stream ends and [`QueryStream::wait`] returns
    /// the error.
    pub(crate) fn fail(&self, error: CrowdDbError) {
        if let Some(sender) = &self.sender {
            let _ = sender.send(StreamMessage::Failed(error));
        }
    }
}

/// A blocking stream of [`QueryEvent`]s from one anytime query.
///
/// Obtained from [`QueryBuilder::stream`](crate::QueryBuilder::stream).
/// Iterate to consume events as the background expansion produces them;
/// iteration ends after [`QueryEvent::Completed`] (or on failure).  Call
/// [`wait`](QueryStream::wait) to drain the remainder and get the final
/// [`QueryOutcome`] — which is exactly what
/// [`run`](crate::QueryBuilder::run) does.
///
/// ```no_run
/// # use crowddb_core::{CrowdDb, CrowdDbConfig, QueryEvent};
/// # let db = CrowdDb::new(CrowdDbConfig::default());
/// let mut stream = db
///     .query("SELECT name FROM movies WHERE is_comedy = true")
///     .stream();
/// for event in &mut stream {
///     match event {
///         QueryEvent::Snapshot(rows) => println!("{} rows right now", rows.rows.len()),
///         QueryEvent::Progress { concept, estimated_completeness, .. } => {
///             println!("{concept}: {:.0} % complete", estimated_completeness * 100.0);
///         }
///         QueryEvent::Completed(outcome) => println!("paid ${:.2}", outcome.crowd_cost),
///         _ => {}
///     }
/// }
/// let outcome = stream.wait()?;
/// # Ok::<(), crowddb_core::CrowdDbError>(())
/// ```
#[must_use = "a query stream does nothing until iterated or waited on"]
pub struct QueryStream {
    receiver: mpsc::Receiver<StreamMessage>,
    outcome: Option<Result<QueryOutcome>>,
    done: bool,
}

impl std::fmt::Debug for QueryStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryStream")
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl QueryStream {
    pub(crate) fn new(receiver: mpsc::Receiver<StreamMessage>) -> Self {
        QueryStream {
            receiver,
            outcome: None,
            done: false,
        }
    }

    /// Drains the remaining events and returns the final outcome — the
    /// blocking view of the stream ([`QueryBuilder::run`] is exactly this).
    ///
    /// [`QueryBuilder::run`]: crate::QueryBuilder::run
    pub fn wait(mut self) -> Result<QueryOutcome> {
        while self.next().is_some() {}
        self.outcome.unwrap_or_else(|| {
            Err(CrowdDbError::Contention(
                "the query's worker thread terminated without completing its stream".into(),
            ))
        })
    }

    /// The final outcome, once the stream has ended (`None` while events
    /// are still pending).
    pub fn outcome(&self) -> Option<&Result<QueryOutcome>> {
        self.outcome.as_ref()
    }
}

impl Iterator for QueryStream {
    type Item = QueryEvent;

    fn next(&mut self) -> Option<QueryEvent> {
        if self.done {
            return None;
        }
        match self.receiver.recv() {
            Ok(StreamMessage::Event(event)) => {
                if let QueryEvent::Completed(outcome) = &event {
                    self.outcome = Some(Ok(outcome.clone()));
                    self.done = true;
                }
                Some(event)
            }
            Ok(StreamMessage::Failed(error)) => {
                self.outcome = Some(Err(error));
                self.done = true;
                None
            }
            // The worker died (panic) without a terminal message.
            Err(mpsc::RecvError) => {
                self.done = true;
                if self.outcome.is_none() {
                    self.outcome = Some(Err(CrowdDbError::Contention(
                        "the query's worker thread terminated without completing its stream".into(),
                    )));
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ExpansionPolicy;
    use crate::session::StatementResult;

    fn outcome() -> QueryOutcome {
        QueryOutcome {
            policy: ExpansionPolicy::full(),
            result: StatementResult::Mutation { rows_affected: 0 },
            reports: Vec::new(),
            crowd_cost: 0.0,
        }
    }

    #[test]
    fn stream_yields_events_then_completes() {
        let (sink, receiver) = EventSink::channel(true);
        assert!(sink.is_live());
        sink.emit(QueryEvent::Progress {
            concept: "Comedy".into(),
            items_resolved: 3,
            items_outstanding: 7,
            estimated_completeness: 0.3,
            estimated_remaining_cost: 1.4,
        });
        sink.complete(outcome());
        let mut stream = QueryStream::new(receiver);
        assert!(matches!(
            stream.next(),
            Some(QueryEvent::Progress {
                items_resolved: 3,
                ..
            })
        ));
        assert!(matches!(stream.next(), Some(QueryEvent::Completed(_))));
        assert!(stream.next().is_none(), "Completed ends the stream");
        assert!(matches!(stream.outcome(), Some(Ok(_))));
        assert!(stream.wait().is_ok());
    }

    #[test]
    fn failure_ends_the_stream_with_the_error() {
        let (sink, receiver) = EventSink::channel(true);
        sink.fail(CrowdDbError::Configuration("boom".into()));
        let mut stream = QueryStream::new(receiver);
        assert!(stream.next().is_none());
        assert!(matches!(
            stream.wait(),
            Err(CrowdDbError::Configuration(msg)) if msg == "boom"
        ));
    }

    #[test]
    fn a_dead_worker_surfaces_as_an_error_not_a_hang() {
        let (sink, receiver) = EventSink::channel(true);
        drop(sink); // the worker vanished without a terminal message
        let stream = QueryStream::new(receiver);
        assert!(matches!(stream.wait(), Err(CrowdDbError::Contention(_))));
    }

    #[test]
    fn null_sink_discards_everything() {
        let sink = EventSink::null();
        assert!(!sink.is_live());
        sink.emit(QueryEvent::Snapshot(RowSet {
            columns: vec![],
            rows: vec![],
            provenance: vec![],
        }));
        sink.complete(outcome());
        sink.fail(CrowdDbError::Configuration("nobody hears this".into()));
    }
}
