//! Poison-forgiving lock acquisition, shared by every synchronized
//! structure of the crate.
//!
//! A poisoned lock means some thread panicked while holding it.  The
//! database's shared structures are all updated in single self-contained
//! steps (one map insert, one counter bump, one column fill per guard), so
//! the state behind a poisoned lock is still internally consistent and
//! serving it beats cascading the panic into every concurrent query.  If a
//! future change makes any critical section multi-step (where a mid-panic
//! could expose a torn invariant), revisit this policy *here* — every
//! module shares these helpers precisely so the decision lives in one
//! place.

use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Acquires a shared read lock, ignoring poisoning.
pub(crate) fn rlock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Acquires an exclusive write lock, ignoring poisoning.
pub(crate) fn wlock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// Acquires a mutex, ignoring poisoning.
pub(crate) fn mlock<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Attempts to acquire a mutex without blocking, ignoring poisoning.
///
/// Returns `None` when the lock is currently held elsewhere.  For best-effort
/// reads (progress estimates, stats) where a stale or missing answer beats
/// parking behind a long-held lock — e.g. a crowd source mid-round.
pub(crate) fn try_mlock<T>(lock: &Mutex<T>) -> Option<MutexGuard<'_, T>> {
    match lock.try_lock() {
        Ok(guard) => Some(guard),
        Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
        Err(std::sync::TryLockError::WouldBlock) => None,
    }
}
