//! Error type of the crowd-enabled database.

use std::fmt;

/// Errors produced by the crowd-enabled database layer.
///
/// The enum is `#[non_exhaustive]`: future expansion modes and policy
/// failures can add variants without breaking downstream matches.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum CrowdDbError {
    /// An error bubbled up from the relational engine.
    Relational(relational::RelationalError),
    /// An error bubbled up from the perceptual-space crate.
    Perceptual(perceptual::PerceptualError),
    /// An error bubbled up from the machine-learning toolkit.
    Learning(mlkit::MlError),
    /// An error bubbled up from the crowd simulator.
    Crowd(crowdsim::CrowdError),
    /// A query references an attribute that is neither in the schema nor
    /// registered for expansion.
    UnknownAttribute {
        /// The table that was queried.
        table: String,
        /// The unresolvable attribute.
        attribute: String,
    },
    /// The database is mis-configured (missing space, missing crowd source,
    /// unregistered table, …).
    Configuration(String),
    /// A transient concurrency failure: concurrent acquisitions of the same
    /// attribute kept aborting or resolving disjoint item sets.  Unlike
    /// [`Configuration`](CrowdDbError::Configuration) this is not a caller
    /// mistake — retrying the query is reasonable.
    Contention(String),
    /// A durability failure: the write-ahead log or snapshot could not be
    /// read or written, or a file failed its integrity check on recovery.
    /// The message carries the storage engine's diagnosis (the variant
    /// stores a string because [`storage::StorageError`] wraps
    /// non-cloneable I/O errors).
    Storage(String),
    /// The query referenced missing expandable columns, but its policy was
    /// [`ExpansionMode::Deny`](crate::ExpansionMode::Deny): the caller asked
    /// to never trigger crowd spending, so the expansion was refused rather
    /// than silently paid for.
    ExpansionDenied {
        /// The table whose expansion was refused.
        table: String,
        /// The missing columns the query would have expanded.
        columns: Vec<String>,
    },
    /// A failure of the network service layer itself — a broken or refused
    /// connection, a protocol-version or authentication mismatch, a
    /// malformed frame — as opposed to a database error that was carried
    /// *over* the wire intact (those decode back into their original
    /// variants).  Construct via [`CrowdDbError::protocol`]; the variant is
    /// `#[non_exhaustive]` so transport diagnostics can grow fields without
    /// breaking matches.
    #[non_exhaustive]
    Protocol {
        /// The transport layer's diagnosis.
        message: String,
    },
    /// The admission controller refused the query outright: the tenant is
    /// past its *hard* concurrency cap and shedding the load is the only
    /// way to protect every other tenant on the engine.  Softer pressure
    /// never produces this error — it degrades the expansion mode instead
    /// (see
    /// [`ExpansionStage::Degraded`](crate::expansion::ExpansionStage::Degraded)),
    /// so `Overloaded` always means "retry later", not "rephrase".
    Overloaded {
        /// The tenant whose cap was hit.
        tenant: String,
        /// The limiter's diagnosis (which cap, at what value).
        reason: String,
    },
}

impl fmt::Display for CrowdDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrowdDbError::Relational(e) => write!(f, "relational error: {e}"),
            CrowdDbError::Perceptual(e) => write!(f, "perceptual space error: {e}"),
            CrowdDbError::Learning(e) => write!(f, "learning error: {e}"),
            CrowdDbError::Crowd(e) => write!(f, "crowd error: {e}"),
            CrowdDbError::UnknownAttribute { table, attribute } => write!(
                f,
                "attribute {attribute} of table {table} is not in the schema and not registered for expansion"
            ),
            CrowdDbError::Configuration(msg) => write!(f, "configuration error: {msg}"),
            CrowdDbError::Contention(msg) => write!(f, "contention error: {msg}"),
            CrowdDbError::Storage(msg) => write!(f, "storage error: {msg}"),
            CrowdDbError::ExpansionDenied { table, columns } => write!(
                f,
                "expansion denied by the query policy: table {table} is missing columns {}",
                columns.join(", ")
            ),
            CrowdDbError::Protocol { message } => write!(f, "protocol error: {message}"),
            CrowdDbError::Overloaded { tenant, reason } => {
                write!(f, "overloaded: tenant {tenant} rejected: {reason}")
            }
        }
    }
}

impl CrowdDbError {
    /// Builds a [`Protocol`](CrowdDbError::Protocol) error — the
    /// constructor the network service layer (and any other transport)
    /// uses, since the variant itself is `#[non_exhaustive]`.
    pub fn protocol(message: impl Into<String>) -> Self {
        CrowdDbError::Protocol {
            message: message.into(),
        }
    }
}

impl std::error::Error for CrowdDbError {}

impl From<relational::RelationalError> for CrowdDbError {
    fn from(e: relational::RelationalError) -> Self {
        CrowdDbError::Relational(e)
    }
}

impl From<perceptual::PerceptualError> for CrowdDbError {
    fn from(e: perceptual::PerceptualError) -> Self {
        CrowdDbError::Perceptual(e)
    }
}

impl From<mlkit::MlError> for CrowdDbError {
    fn from(e: mlkit::MlError) -> Self {
        CrowdDbError::Learning(e)
    }
}

impl From<crowdsim::CrowdError> for CrowdDbError {
    fn from(e: crowdsim::CrowdError) -> Self {
        CrowdDbError::Crowd(e)
    }
}

impl From<storage::StorageError> for CrowdDbError {
    fn from(e: storage::StorageError) -> Self {
        CrowdDbError::Storage(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CrowdDbError = relational::RelationalError::UnknownTable("movies".into()).into();
        assert!(e.to_string().contains("movies"));
        let e: CrowdDbError = perceptual::PerceptualError::InvalidConfig("d = 0".into()).into();
        assert!(e.to_string().contains("d = 0"));
        let e: CrowdDbError = mlkit::MlError::MissingClass { positive: true }.into();
        assert!(e.to_string().contains("positive"));
        let e: CrowdDbError = crowdsim::CrowdError::InvalidConfig("no items".into()).into();
        assert!(e.to_string().contains("no items"));
        let e = CrowdDbError::UnknownAttribute {
            table: "movies".into(),
            attribute: "humor".into(),
        };
        assert!(e.to_string().contains("humor"));
        let e = CrowdDbError::Configuration("no crowd source".into());
        assert!(e.to_string().contains("no crowd source"));
        let e = CrowdDbError::ExpansionDenied {
            table: "movies".into(),
            columns: vec!["is_comedy".into(), "humor".into()],
        };
        assert!(e.to_string().contains("denied"));
        assert!(e.to_string().contains("is_comedy, humor"));
        let e = CrowdDbError::protocol("handshake rejected");
        assert!(e.to_string().contains("protocol error"));
        assert!(e.to_string().contains("handshake rejected"));
        let e = CrowdDbError::Overloaded {
            tenant: "acme".into(),
            reason: "3 concurrent queries at cap 3".into(),
        };
        assert!(e.to_string().contains("overloaded"));
        assert!(e.to_string().contains("acme"));
    }
}
