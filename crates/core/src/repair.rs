//! Closing the data-quality loop of Section 4.4: audit a crowd labeling,
//! re-crowd-source only the questionable responses, and merge the new
//! judgments back in.
//!
//! The paper concludes that "by reevaluating those responses in a new crowd
//! task, data quality can be increased significantly … at the same time, by
//! focusing on questionable responses only, this increase of quality comes
//! with minimal costs."  [`repair_labels`] implements exactly that loop on
//! top of [`audit_binary_labels`] and an arbitrary [`CrowdSource`].

use crowdsim::majority_vote;
use perceptual::{ItemId, PerceptualSpace};

use crate::audit::audit_binary_labels;
use crate::crowd_source::CrowdSource;
use crate::error::CrowdDbError;
use crate::extraction::ExtractionConfig;
use crate::Result;

/// The outcome of one audit-and-repair round.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairOutcome {
    /// The repaired labeling (indexable by item id).
    pub labels: Vec<bool>,
    /// Items that were flagged by the audit and re-crowd-sourced.
    pub flagged: Vec<ItemId>,
    /// Of the flagged items, how many ended up with a changed label.
    pub labels_changed: usize,
    /// Crowd cost of the repair round in dollars.
    pub repair_cost: f64,
    /// Crowd wall-clock minutes of the repair round.
    pub repair_minutes: f64,
}

impl RepairOutcome {
    /// Fraction of the corpus that had to be re-crowd-sourced.
    pub fn fraction_recrowdsourced(&self, corpus_size: usize) -> f64 {
        if corpus_size == 0 {
            return 0.0;
        }
        self.flagged.len() as f64 / corpus_size as f64
    }
}

/// Audits `labels` against the perceptual space, re-crowd-sources the
/// flagged items via `crowd` (asking about `attribute`), and overwrites a
/// flagged item's label whenever the new crowd round produces a clear
/// majority.
///
/// Items the new crowd round cannot decide keep their original label — the
/// method never discards data, it only revises it with fresh evidence.
pub fn repair_labels<C: CrowdSource + ?Sized>(
    space: &PerceptualSpace,
    labels: &[bool],
    crowd: &mut C,
    attribute: &str,
    extraction: &ExtractionConfig,
    seed: u64,
) -> Result<RepairOutcome> {
    let all: Vec<ItemId> = (0..labels.len() as ItemId).collect();
    repair_labels_among(space, labels, &all, crowd, attribute, extraction, seed)
}

/// Like [`repair_labels`], but only items listed in `eligible` may be
/// flagged and re-crowd-sourced.
///
/// Used when the labeling spans a perceptual space whose items are not all
/// present in the data being repaired (e.g. rows were deleted after the
/// expansion): paying the crowd to re-judge an item no query can ever
/// return would be money wasted on unreachable data.
#[allow(clippy::too_many_arguments)]
pub fn repair_labels_among<C: CrowdSource + ?Sized>(
    space: &PerceptualSpace,
    labels: &[bool],
    eligible: &[ItemId],
    crowd: &mut C,
    attribute: &str,
    extraction: &ExtractionConfig,
    seed: u64,
) -> Result<RepairOutcome> {
    if labels.len() != space.len() {
        return Err(CrowdDbError::Configuration(format!(
            "{} labels given but the space contains {} items",
            labels.len(),
            space.len()
        )));
    }
    let eligible: std::collections::HashSet<ItemId> = eligible.iter().copied().collect();
    let mut audit = audit_binary_labels(space, labels, extraction)?;
    audit.flagged.retain(|item| eligible.contains(item));
    let mut repaired = labels.to_vec();
    if audit.flagged.is_empty() {
        return Ok(RepairOutcome {
            labels: repaired,
            flagged: Vec::new(),
            labels_changed: 0,
            repair_cost: 0.0,
            repair_minutes: 0.0,
        });
    }

    let run = crowd.collect(&audit.flagged, attribute, seed)?;
    let verdicts = majority_vote(&run.judgments, &audit.flagged);
    let mut labels_changed = 0;
    for verdict in &verdicts {
        if let Some(new_label) = verdict.verdict {
            let idx = verdict.item as usize;
            if repaired[idx] != new_label {
                repaired[idx] = new_label;
                labels_changed += 1;
            }
        }
    }

    Ok(RepairOutcome {
        labels: repaired,
        flagged: audit.flagged,
        labels_changed,
        repair_cost: run.total_cost,
        repair_minutes: run.total_minutes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crowd_source::SimulatedCrowd;
    use crowdsim::ExperimentRegime;
    use datagen::{DomainConfig, SyntheticDomain};
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn setup() -> (SyntheticDomain, PerceptualSpace) {
        let domain = SyntheticDomain::generate(&DomainConfig::movies().scaled(0.1), 77).unwrap();
        let space = crate::db::build_space_for_domain(&domain, 12, 20).unwrap();
        (domain, space)
    }

    fn corrupt(truth: &[bool], fraction: f64, seed: u64) -> (Vec<bool>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..truth.len()).collect();
        idx.shuffle(&mut rng);
        let n = (truth.len() as f64 * fraction).round() as usize;
        let swapped: Vec<usize> = idx.into_iter().take(n).collect();
        let mut labels = truth.to_vec();
        for &i in &swapped {
            labels[i] = !labels[i];
        }
        (labels, swapped)
    }

    #[test]
    fn repair_improves_label_accuracy_at_low_cost() {
        let (domain, space) = setup();
        let truth = domain.labels_for_category(0);
        let (corrupted, _) = corrupt(&truth, 0.15, 1);
        let accuracy = |labels: &[bool]| {
            labels
                .iter()
                .zip(truth.iter())
                .filter(|(a, b)| a == b)
                .count() as f64
                / truth.len() as f64
        };
        let before = accuracy(&corrupted);

        let mut crowd = SimulatedCrowd::new(&domain, ExperimentRegime::LookupWithGold, 2);
        let outcome = repair_labels(
            &space,
            &corrupted,
            &mut crowd,
            "Comedy",
            &ExtractionConfig::default(),
            3,
        )
        .unwrap();
        let after = accuracy(&outcome.labels);
        assert!(
            after > before,
            "repair should improve accuracy: before {before}, after {after}"
        );
        assert!(outcome.labels_changed > 0);
        // Only a fraction of the corpus was re-crowd-sourced.
        assert!(outcome.fraction_recrowdsourced(truth.len()) < 0.6);
        assert!(outcome.repair_cost > 0.0);
        // Cost is far below a full re-run (which would need 10 judgments for
        // every item at $0.02 per 10-item HIT ⇒ $0.02 × n).
        assert!(outcome.repair_cost < 0.03 * truth.len() as f64);
    }

    #[test]
    fn clean_labels_require_no_repair_work() {
        let (domain, space) = setup();
        let truth = domain.labels_for_category(0);
        let mut crowd = SimulatedCrowd::new(&domain, ExperimentRegime::TrustedWorkers, 4);
        let outcome = repair_labels(
            &space,
            &truth,
            &mut crowd,
            "Comedy",
            &ExtractionConfig::default(),
            5,
        )
        .unwrap();
        // The audit may flag a few borderline items, but the bulk of the
        // corpus is untouched and the repaired labels stay highly accurate.
        let agreement = outcome
            .labels
            .iter()
            .zip(truth.iter())
            .filter(|(a, b)| a == b)
            .count() as f64
            / truth.len() as f64;
        assert!(agreement > 0.9, "agreement {agreement}");
        assert!(outcome.fraction_recrowdsourced(truth.len()) < 0.3);
    }

    #[test]
    fn mismatched_inputs_and_unknown_attributes_error() {
        let (domain, space) = setup();
        let truth = domain.labels_for_category(0);
        let mut crowd = SimulatedCrowd::new(&domain, ExperimentRegime::TrustedWorkers, 6);
        assert!(repair_labels(
            &space,
            &truth[..10],
            &mut crowd,
            "Comedy",
            &ExtractionConfig::default(),
            7
        )
        .is_err());
        assert!(repair_labels(
            &space,
            &truth,
            &mut crowd,
            "NotACategory",
            &ExtractionConfig::default(),
            8
        )
        .is_err());
    }
}
