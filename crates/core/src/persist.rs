//! Durability wiring: logging committed changes to the [`storage`] engine
//! and rebuilding a [`CrowdDb`](crate::CrowdDb) from its files.
//!
//! # What is durable
//!
//! Everything real money or real work produced: catalog DDL and rows,
//! SQL mutations, materialized crowd columns (values *and* the per-cell
//! provenance ledger, confidence and cost share included), the
//! incomplete-column set, judgment-cache entries and invalidations, and
//! the crowd-round counter.  Runtime bindings — perceptual spaces, crowd
//! sources, column → concept registrations — are *not* persisted: they are
//! live objects the application re-binds after
//! [`CrowdDb::open`](crate::CrowdDb::open) (see
//! `examples/persistent_session.rs`), and nothing about them costs crowd
//! dollars to recreate.
//!
//! # Segmented layout
//!
//! The durable state is sharded by table, mirroring the engine's
//! per-table catalog shards: each table owns one WAL segment
//! (`wal/<table>.log`) and one snapshot (`snap/<table>.snap`), tied
//! together by the [`storage::manifest`].  Tables therefore commit,
//! checkpoint, and recover independently: writers on different tables
//! never share a WAL mutex, [`Durability::checkpoint_table`] compacts one
//! segment without touching the others, and [`recover`] replays segments
//! in parallel on a worker pool.  A directory in the legacy single-file
//! layout (`wal.log` + `snapshot.db`, the PR 5 format) is migrated into
//! segments once, on open ([`migrate_legacy`]).
//!
//! # Write path and crash consistency
//!
//! Mutators apply their change to the in-memory state first and then
//! append the matching [`WalRecord`] (group-fsynced) to their table's
//! segment before the query returns.  Two invariants make this safe
//! against a checkpoint of the same table running concurrently (see
//! [`CrowdDb::checkpoint`](crate::CrowdDb::checkpoint)):
//!
//! 1. Catalog-shaped records (`CreateTable`, `Mutation`,
//!    `MaterializeColumn`, `SetCells`) are applied *and* logged under the
//!    table's exclusive shard lock, and the checkpoint holds the shared
//!    shard lock across both its state capture and its segment swap — so
//!    each such record lands either entirely before the snapshot (and is
//!    truncated with the old segment) or entirely after it (and replays
//!    on top).  This matters because `Mutation` replay re-executes the
//!    SQL and is **not** idempotent.
//! 2. Cache-shaped records (`CachePut`, `CacheInvalidate`) are applied
//!    outside the shard lock, so one may be captured by the snapshot
//!    *and* land in the fresh segment; both replay idempotently (same-key
//!    overwrite / remove), so the double-apply is harmless.
//!
//! A crash between the in-memory apply and the append loses that one
//! change — exactly the "query never returned" outcome WAL semantics
//! promise.  A crash mid-append leaves a torn tail the next [`recover`]
//! truncates.  A crash mid-*incremental*-checkpoint leaves each table
//! with either its old snapshot + complete old segment or its new
//! snapshot (+ reset segment): per-table generation stamps keep every
//! table individually consistent, whichever subset the crash interrupted.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};

use perceptual::ItemId;
use relational::{executor, sql, Catalog};
use storage::manifest::{snap_dir, wal_dir};
use storage::{
    read_manifest, read_snapshot, read_snapshot_file, scan_segments, segment_file_name,
    snapshot_file_name, write_manifest, write_snapshot_file, CacheImage, CellMark, ColumnImage,
    JudgmentEntry, LedgerImage, Manifest, ManifestEntry, MissingCause, SnapshotImage, StorageError,
    TableImage, Wal, WalRecord, SNAPSHOT_FILE, WAL_FILE,
};

use crate::cache::{CacheStats, CachedJudgment, JudgmentCache};
use crate::error::CrowdDbError;
use crate::materialize::materialize_column;
use crate::planner;
use crate::provenance::{CellProvenance, MissingReason};
use crate::scheduler::Scheduler;
use crate::sync::{mlock, rlock, wlock};
use crate::Result;

/// The per-column provenance ledger type shared with `db.rs`.
pub(crate) type ProvenanceLedger = HashMap<(String, String), HashMap<ItemId, CellProvenance>>;

/// One table's WAL segment: the open log plus the dirty flag incremental
/// checkpoints consult.  The segment mutex is the per-table *WAL lock* of
/// the locking discipline documented in `docs/architecture.md`.
pub(crate) struct Segment {
    wal: Mutex<Wal>,
    /// True when the segment has received an append since the table's last
    /// checkpoint — the table must be re-snapshotted.  Cleared under the
    /// segment mutex before the checkpoint captures state, so a racing
    /// append re-dirties the table for the *next* checkpoint.
    dirty: AtomicBool,
}

/// The open durability engine of a persistent database: the directory and
/// the per-table WAL segments.
pub(crate) struct Durability {
    dir: PathBuf,
    id_column: String,
    /// Table → segment.  The map lock guards membership only (segment
    /// creation); appends synchronize on each segment's own mutex, so
    /// distinct tables never contend.
    segments: RwLock<BTreeMap<String, Arc<Segment>>>,
    /// Serializes manifest rewrites (last in the lock order).
    manifest: Mutex<()>,
    /// Set on the first append failure; every later durable operation is
    /// refused.  In-memory state was already mutated when the failed
    /// append was attempted, so continuing to commit *later* changes
    /// would write a log that replays against a catalog the disk never
    /// saw — fail-stop keeps the divergence to the one lost change,
    /// which recovery treats as "that query never returned".
    failed: AtomicBool,
}

impl Durability {
    fn new(dir: &Path, id_column: &str, segments: BTreeMap<String, Arc<Segment>>) -> Durability {
        Durability {
            dir: dir.to_path_buf(),
            id_column: id_column.to_string(),
            segments: RwLock::new(segments),
            manifest: Mutex::new(()),
            failed: AtomicBool::new(false),
        }
    }

    fn check_not_failed(&self) -> Result<()> {
        if self.failed.load(Ordering::SeqCst) {
            return Err(CrowdDbError::Storage(
                "a previous WAL append failed; the storage engine is fail-stopped — reopen \
                 the database to recover to the last durable state"
                    .into(),
            ));
        }
        Ok(())
    }

    fn fail_stop<T>(&self, result: std::result::Result<T, StorageError>) -> Result<T> {
        if result.is_err() {
            self.failed.store(true, Ordering::SeqCst);
        }
        result.map_err(CrowdDbError::from)
    }

    /// Looks up (or lazily creates, on a table's first durable record) the
    /// segment for `table`.
    fn segment(&self, table: &str) -> Result<Arc<Segment>> {
        let key = table.to_lowercase();
        if let Some(segment) = rlock(&self.segments).get(&key) {
            return Ok(Arc::clone(segment));
        }
        let mut segments = wlock(&self.segments);
        if let Some(segment) = segments.get(&key) {
            return Ok(Arc::clone(segment));
        }
        // First record for this table: open a fresh segment.  The manifest
        // is *not* rewritten here — recovery unions in orphan segments, so
        // the new table is durable the moment its segment's first group
        // fsyncs, and the manifest catches up at the next checkpoint.
        std::fs::create_dir_all(wal_dir(&self.dir)).map_err(StorageError::from)?;
        let opened = Wal::open(wal_dir(&self.dir).join(segment_file_name(&key)));
        let (mut wal, _) = self.fail_stop(opened)?;
        if wal.record_count() == 0 {
            let meta = wal.append(&WalRecord::Meta {
                id_column: self.id_column.clone(),
            });
            self.fail_stop(meta)?;
        }
        let segment = Arc::new(Segment {
            wal: Mutex::new(wal),
            dirty: AtomicBool::new(false),
        });
        segments.insert(key, Arc::clone(&segment));
        Ok(segment)
    }

    /// Appends `records` to `table`'s segment as one fsynced group — the
    /// commit point.
    pub(crate) fn log(&self, table: &str, records: &[WalRecord]) -> Result<()> {
        self.check_not_failed()?;
        let segment = self.segment(table)?;
        let wal = &mut *mlock(&segment.wal);
        let result = wal.append_all(records);
        segment.dirty.store(true, Ordering::SeqCst);
        self.fail_stop(result)
    }

    /// Writes the captured image as `table`'s new snapshot, then truncates
    /// its segment under a fresh generation.  Returns the segment bytes
    /// reclaimed by the truncation.
    ///
    /// `capture` runs while the segment mutex is held — no record can slip
    /// into the old segment after the state it describes was captured —
    /// and receives the segment's current `(generation, record count)`,
    /// which the image must carry: recovery only skips the
    /// already-snapshotted prefix when the on-disk segment still has that
    /// generation, so a crash *between* the snapshot rename and the reset
    /// (new snapshot + complete old segment) replays nothing twice.  The
    /// caller must already hold the table's shared shard lock (see the
    /// module docs for the two-invariant argument).
    pub(crate) fn checkpoint_table(
        &self,
        table: &str,
        capture: impl FnOnce(u64, u64) -> SnapshotImage,
    ) -> Result<u64> {
        self.check_not_failed()?;
        let segment = self.segment(table)?;
        let mut wal = mlock(&segment.wal);
        let bytes_before = std::fs::metadata(wal.path()).map(|m| m.len()).unwrap_or(0);
        // Clear the flag *before* capturing: an append racing in after the
        // capture re-dirties the table so the next checkpoint picks it up.
        segment.dirty.store(false, Ordering::SeqCst);
        let image = capture(wal.generation(), wal.record_count());
        std::fs::create_dir_all(snap_dir(&self.dir)).map_err(StorageError::from)?;
        let snap_path = snap_dir(&self.dir).join(snapshot_file_name(&table.to_lowercase()));
        // A failed snapshot write leaves the old snapshot + untouched
        // segment — fully consistent, no fail-stop needed, but the table
        // is still dirty.  A failed reset or Meta append leaves the
        // segment in an unknown shape: fail-stop.
        if let Err(e) = write_snapshot_file(&snap_path, &image) {
            segment.dirty.store(true, Ordering::SeqCst);
            return Err(e.into());
        }
        let reset = wal.reset();
        self.fail_stop(reset)?;
        // Every segment starts with its Meta record (the reset emptied it).
        let meta = wal.append(&WalRecord::Meta {
            id_column: self.id_column.clone(),
        });
        self.fail_stop(meta)?;
        let bytes_after = std::fs::metadata(wal.path()).map(|m| m.len()).unwrap_or(0);
        Ok(bytes_before.saturating_sub(bytes_after))
    }

    /// Rewrites the manifest from the live segment set and the given
    /// global counters.  Called after recovery and after each checkpoint —
    /// the manifest is checkpoint-granular by design (segment and snapshot
    /// file names are stable per table, so a stale manifest never points
    /// at missing data; orphan segments are unioned in on recovery).
    pub(crate) fn write_manifest_state(&self, stats: CacheStats, crowd_rounds: u64) -> Result<()> {
        self.check_not_failed()?;
        let entries: Vec<ManifestEntry> = rlock(&self.segments)
            .keys()
            .map(|table| {
                let snapshot = snapshot_file_name(table);
                ManifestEntry {
                    table: table.clone(),
                    segment: segment_file_name(table),
                    snapshot: snap_dir(&self.dir)
                        .join(&snapshot)
                        .exists()
                        .then_some(snapshot),
                }
            })
            .collect();
        let _guard = mlock(&self.manifest);
        write_manifest(
            &self.dir,
            &Manifest {
                id_column: self.id_column.clone(),
                cache_hits: stats.hits,
                cache_misses: stats.misses,
                cache_cost_saved: stats.cost_saved,
                crowd_rounds,
                entries,
            },
        )
        .map_err(CrowdDbError::from)
    }

    /// True when `table` has unsnapshotted records (an incremental
    /// checkpoint must include it).  A table with no segment yet has
    /// nothing durable to compact.
    pub(crate) fn is_dirty(&self, table: &str) -> bool {
        rlock(&self.segments)
            .get(&table.to_lowercase())
            .is_some_and(|s| s.dirty.load(Ordering::SeqCst))
    }

    /// Total size of all live WAL segments in bytes (diagnostics; used by
    /// tests to verify checkpoint compaction).
    pub(crate) fn wal_bytes(&self) -> u64 {
        self.wal_bytes_by_table().into_iter().map(|(_, b)| b).sum()
    }

    /// Per-table segment sizes in bytes, sorted by table name.
    pub(crate) fn wal_bytes_by_table(&self) -> Vec<(String, u64)> {
        let segments: Vec<(String, Arc<Segment>)> = rlock(&self.segments)
            .iter()
            .map(|(t, s)| (t.clone(), Arc::clone(s)))
            .collect();
        segments
            .into_iter()
            .map(|(table, segment)| {
                let wal = mlock(&segment.wal);
                let bytes = std::fs::metadata(wal.path()).map(|m| m.len()).unwrap_or(0);
                (table, bytes)
            })
            .collect()
    }
}

/// The in-memory state recovered from a database directory, ready to be
/// moved into a `DbInner`.
pub(crate) struct RecoveredState {
    pub(crate) catalog: Catalog,
    pub(crate) cache: JudgmentCache,
    pub(crate) provenance: ProvenanceLedger,
    pub(crate) incomplete: HashSet<(String, String)>,
    pub(crate) crowd_rounds: u64,
}

impl Default for RecoveredState {
    fn default() -> Self {
        RecoveredState {
            catalog: Catalog::new(),
            cache: JudgmentCache::new(),
            provenance: HashMap::new(),
            incomplete: HashSet::new(),
            crowd_rounds: 0,
        }
    }
}

/// Opens (creating if needed) the database directory and returns the
/// recovered state plus the engine positioned for appending.
///
/// Routing: a directory with a manifest recovers segment-by-segment
/// (replayed on up to `parallelism` workers); a manifest-less directory
/// with a legacy `wal.log`/`snapshot.db` is recovered through the old
/// single-file path and migrated into segments; an empty directory starts
/// fresh with an empty manifest.
pub(crate) fn recover(
    dir: &Path,
    id_column: &str,
    parallelism: usize,
) -> Result<(RecoveredState, Durability)> {
    std::fs::create_dir_all(dir).map_err(|e| {
        CrowdDbError::Storage(format!(
            "cannot create database directory {}: {e}",
            dir.display()
        ))
    })?;
    match read_manifest(dir)? {
        Some(manifest) => recover_segmented(dir, id_column, parallelism, manifest),
        None if dir.join(WAL_FILE).exists() || dir.join(SNAPSHOT_FILE).exists() => {
            migrate_legacy(dir, id_column)
        }
        None => {
            let durability = Durability::new(dir, id_column, BTreeMap::new());
            durability.write_manifest_state(CacheStats::default(), 0)?;
            Ok((RecoveredState::default(), durability))
        }
    }
}

/// One table's replay result: its recovered slice of the database plus
/// its open segment.
struct TableRecovered {
    table: String,
    state: RecoveredState,
    wal: Wal,
    /// True when the segment held records beyond the snapshotted prefix —
    /// the table must not be skipped by the next incremental checkpoint.
    dirty: bool,
}

/// Recovers a segmented directory: replays every live segment (manifest
/// entries ∪ orphan segments on disk) and merges the per-table results in
/// sorted table order, so the outcome is bit-identical however many
/// workers replayed them.
fn recover_segmented(
    dir: &Path,
    id_column: &str,
    parallelism: usize,
    manifest: Manifest,
) -> Result<(RecoveredState, Durability)> {
    if !manifest.id_column.is_empty() && manifest.id_column != id_column {
        return Err(CrowdDbError::Storage(format!(
            "database directory {} was written with id_column '{}' but is being \
             opened with id_column '{id_column}' — item-keyed records would be \
             misrouted; open with the original configuration",
            dir.display(),
            manifest.id_column
        )));
    }
    // The manifest is authoritative for checkpointed tables, but a table
    // created after the last checkpoint exists only as a segment file:
    // union both sources so no committed record is orphaned.
    let mut tables: Vec<String> = manifest.entries.iter().map(|e| e.table.clone()).collect();
    for (table, _) in scan_segments(dir)? {
        if !tables.contains(&table) {
            tables.push(table);
        }
    }
    tables.sort_unstable();
    std::fs::create_dir_all(wal_dir(dir)).map_err(StorageError::from)?;

    let results = replay_tables(dir, id_column, parallelism, tables)?;

    let mut state = RecoveredState::default();
    let mut crowd_rounds = manifest.crowd_rounds;
    let mut segments = BTreeMap::new();
    for recovered in results {
        for name in recovered.state.catalog.table_names() {
            let table = recovered
                .state
                .catalog
                .table(&name)
                .expect("listed table exists");
            state.catalog.create_table(table.clone())?;
        }
        state.provenance.extend(recovered.state.provenance);
        state.incomplete.extend(recovered.state.incomplete);
        let (groups, _) = recovered.state.cache.export();
        state.cache.absorb(groups);
        crowd_rounds = crowd_rounds.max(recovered.state.crowd_rounds);
        segments.insert(
            recovered.table,
            Arc::new(Segment {
                wal: Mutex::new(recovered.wal),
                dirty: AtomicBool::new(recovered.dirty),
            }),
        );
    }
    // Global counters are checkpoint-granular and live in the manifest.
    state.cache.set_stats(CacheStats {
        hits: manifest.cache_hits,
        misses: manifest.cache_misses,
        cost_saved: manifest.cache_cost_saved,
        entries: 0,
    });
    state.crowd_rounds = crowd_rounds;
    let durability = Durability::new(dir, id_column, segments);
    // Fold any orphan segments into the manifest now that they replayed.
    durability.write_manifest_state(state.cache.stats(), state.crowd_rounds)?;
    Ok((state, durability))
}

/// Replays `tables` — inline when `parallelism <= 1`, otherwise on a
/// worker pool — and returns the results sorted by table name.  Replay
/// order cannot matter: segments share no state, and the caller merges in
/// sorted order regardless of completion order.
fn replay_tables(
    dir: &Path,
    id_column: &str,
    parallelism: usize,
    tables: Vec<String>,
) -> Result<Vec<TableRecovered>> {
    if parallelism <= 1 || tables.len() <= 1 {
        return tables
            .into_iter()
            .map(|table| replay_one(dir, id_column, table))
            .collect();
    }
    let pool = Scheduler::new(parallelism.min(tables.len()));
    let (tx, rx) = mpsc::channel();
    for table in tables {
        let tx = tx.clone();
        let dir = dir.to_path_buf();
        let id_column = id_column.to_string();
        pool.spawn(move || {
            let result = replay_one(&dir, &id_column, table);
            let _ = tx.send(result);
        });
    }
    drop(tx);
    let mut results: Vec<TableRecovered> = rx.iter().collect::<Result<_>>()?;
    results.sort_unstable_by(|a, b| a.table.cmp(&b.table));
    Ok(results)
}

/// Replays one table: its snapshot (if any), then its segment on top,
/// skipping the already-snapshotted prefix when the generation stamps
/// still match (the same discipline the monolithic layout used, now per
/// table).
fn replay_one(dir: &Path, id_column: &str, table: String) -> Result<TableRecovered> {
    let snapshot = read_snapshot_file(&snap_dir(dir).join(snapshot_file_name(&table)))?;
    let (mut state, wal_stamp) = match snapshot {
        Some(image) => {
            if !image.id_column.is_empty() && image.id_column != id_column {
                return Err(CrowdDbError::Storage(format!(
                    "table '{table}' in {} was written with id_column '{}' but is being \
                     opened with id_column '{id_column}' — item-keyed records would be \
                     misrouted; open with the original configuration",
                    dir.display(),
                    image.id_column
                )));
            }
            let stamp = (image.wal_generation, image.wal_records_applied);
            (state_of_snapshot(image)?, Some(stamp))
        }
        None => (RecoveredState::default(), None),
    };
    let (mut wal, records) = Wal::open(wal_dir(dir).join(segment_file_name(&table)))?;
    // Records the snapshot already folded in are skipped — but only while
    // the segment still carries the generation the snapshot stamped.  A
    // segment that was reset since (or never matched) replays in full.
    let skip = match wal_stamp {
        Some((generation, applied)) if generation == wal.generation() => {
            (applied as usize).min(records.len())
        }
        _ => 0,
    };
    if wal.record_count() == 0 {
        // A brand-new (or torn-header-recreated, necessarily empty)
        // segment: stamp the configuration its replayer will depend on.
        wal.append(&WalRecord::Meta {
            id_column: id_column.to_string(),
        })?;
    }
    let mut dirty = false;
    for record in records.into_iter().skip(skip) {
        dirty |= !matches!(record, WalRecord::Meta { .. });
        apply(record, &mut state, id_column, dir)?;
    }
    Ok(TableRecovered {
        table,
        state,
        wal,
        dirty,
    })
}

/// Recovers a legacy single-file directory (the PR 5 format) through the
/// old whole-database path, then rewrites it into the segmented layout:
/// per-table snapshots and fresh segments first, the manifest last (its
/// appearance is the commit point of the migration), and only then are
/// the legacy files deleted.  A crash anywhere re-runs cleanly: before
/// the manifest lands the directory still recovers as legacy; after, the
/// stray legacy files are ignored and re-deleted.
fn migrate_legacy(dir: &Path, id_column: &str) -> Result<(RecoveredState, Durability)> {
    let snapshot = read_snapshot(dir)?;
    let (mut state, wal_stamp) = match snapshot {
        Some(image) => {
            if !image.id_column.is_empty() && image.id_column != id_column {
                return Err(CrowdDbError::Storage(format!(
                    "database directory {} was written with id_column '{}' but is being \
                     opened with id_column '{id_column}' — item-keyed records would be \
                     misrouted; open with the original configuration",
                    dir.display(),
                    image.id_column
                )));
            }
            let stamp = (image.wal_generation, image.wal_records_applied);
            (state_of_snapshot(image)?, Some(stamp))
        }
        None => (RecoveredState::default(), None),
    };
    {
        let (wal, records) = Wal::open(dir.join(WAL_FILE))?;
        let skip = match wal_stamp {
            Some((generation, applied)) if generation == wal.generation() => {
                (applied as usize).min(records.len())
            }
            _ => 0,
        };
        for record in records.into_iter().skip(skip) {
            apply(record, &mut state, id_column, dir)?;
        }
        // The legacy log is consumed; it is deleted below, after the
        // segmented layout durably supersedes it.
    }
    std::fs::create_dir_all(wal_dir(dir)).map_err(StorageError::from)?;
    std::fs::create_dir_all(snap_dir(dir)).map_err(StorageError::from)?;
    let mut segments = BTreeMap::new();
    for name in state.catalog.table_names() {
        let (mut wal, _) = Wal::open(wal_dir(dir).join(segment_file_name(&name)))?;
        if wal.record_count() > 0 {
            // Leftover from a crashed earlier migration attempt; the
            // legacy files are still authoritative, so start over.
            wal.reset()?;
        }
        wal.append(&WalRecord::Meta {
            id_column: id_column.to_string(),
        })?;
        let table = state.catalog.table(&name).expect("listed table exists");
        let image = table_snapshot_image(
            TableSnapshotParts {
                table,
                cache: &state.cache,
                provenance: &state.provenance,
                incomplete: &state.incomplete,
                crowd_rounds: state.crowd_rounds,
                id_column,
            },
            wal.generation(),
            wal.record_count(),
        );
        write_snapshot_file(&snap_dir(dir).join(snapshot_file_name(&name)), &image)?;
        segments.insert(
            name,
            Arc::new(Segment {
                wal: Mutex::new(wal),
                dirty: AtomicBool::new(false),
            }),
        );
    }
    let durability = Durability::new(dir, id_column, segments);
    durability.write_manifest_state(state.cache.stats(), state.crowd_rounds)?;
    let _ = std::fs::remove_file(dir.join(WAL_FILE));
    let _ = std::fs::remove_file(dir.join(SNAPSHOT_FILE));
    Ok((state, durability))
}

/// Replays one WAL record onto the recovered state.
fn apply(record: WalRecord, state: &mut RecoveredState, id_column: &str, dir: &Path) -> Result<()> {
    match record {
        WalRecord::Meta {
            id_column: recorded,
        } => {
            if recorded != id_column {
                return Err(CrowdDbError::Storage(format!(
                    "database directory {} was written with id_column '{recorded}' but is \
                     being opened with id_column '{id_column}' — item-keyed records would \
                     be misrouted; open with the original configuration",
                    dir.display()
                )));
            }
        }
        WalRecord::CreateTable(image) => {
            // Idempotent: a record that raced a checkpoint may already be
            // covered by the snapshot.
            if state.catalog.table(&image.name).is_err() {
                state.catalog.create_table(image.into_table()?)?;
            }
        }
        WalRecord::Mutation { sql: text } => {
            let statement = sql::parse(&text)?;
            executor::execute(&statement, &mut state.catalog)?;
        }
        WalRecord::MaterializeColumn {
            table,
            column,
            data_type,
            values,
            ledger,
            incomplete,
        } => {
            let values: HashMap<ItemId, relational::Value> = values.into_iter().collect();
            let table_ref = state.catalog.table(&table)?;
            let (rows, _, _) = planner::row_mapping(table_ref, id_column, &table)?;
            let table_mut = state.catalog.table_mut(&table)?;
            materialize_column(table_mut, &column, data_type, &values, &rows)?;
            let key = (table.clone(), column.clone());
            if let Some(marks) = ledger {
                state.provenance.insert(
                    key.clone(),
                    marks
                        .into_iter()
                        .map(|(item, mark)| (item, provenance_of_mark(mark)))
                        .collect(),
                );
            }
            if incomplete {
                state.incomplete.insert(key);
            } else {
                state.incomplete.remove(&key);
            }
        }
        WalRecord::SetCells {
            table,
            column,
            values,
        } => {
            let values: HashMap<ItemId, relational::Value> = values.into_iter().collect();
            let table_ref = state.catalog.table(&table)?;
            let (rows, _, _) = planner::row_mapping(table_ref, id_column, &table)?;
            let table_mut = state.catalog.table_mut(&table)?;
            for (row, item) in rows {
                if let Some(value) = values.get(&item) {
                    table_mut.set_value(row, &column, value.clone())?;
                }
            }
        }
        WalRecord::CachePut {
            table,
            attribute,
            entries,
            rounds,
        } => {
            for (item, entry) in entries {
                state
                    .cache
                    .insert(&table, &attribute, item, judgment_of_entry(entry));
            }
            state.crowd_rounds = state.crowd_rounds.max(rounds);
        }
        WalRecord::CacheInvalidate { table, attribute } => {
            state.cache.invalidate(&table, &attribute);
        }
    }
    Ok(())
}

fn state_of_snapshot(image: SnapshotImage) -> Result<RecoveredState> {
    let mut catalog = Catalog::new();
    for table in image.tables {
        catalog.create_table(table.into_table()?)?;
    }
    let provenance = image
        .ledgers
        .into_iter()
        .map(|ledger| {
            (
                (ledger.table, ledger.column),
                ledger
                    .marks
                    .into_iter()
                    .map(|(item, mark)| (item, provenance_of_mark(mark)))
                    .collect(),
            )
        })
        .collect();
    let incomplete = image
        .incomplete
        .into_iter()
        .map(|c| (c.table, c.column))
        .collect();
    let cache = JudgmentCache::restore(
        image
            .cache
            .groups
            .into_iter()
            .map(|(table, attribute, entries)| {
                (
                    table,
                    attribute,
                    entries
                        .into_iter()
                        .map(|(item, entry)| (item, judgment_of_entry(entry)))
                        .collect(),
                )
            })
            .collect(),
        CacheStats {
            hits: image.cache.hits,
            misses: image.cache.misses,
            cost_saved: image.cache.cost_saved,
            entries: 0, // derived from the entries themselves
        },
    );
    Ok(RecoveredState {
        catalog,
        cache,
        provenance,
        incomplete,
        crowd_rounds: image.crowd_rounds,
    })
}

/// Borrowed views of the live state a per-table checkpoint captures (the
/// caller holds the table's shared shard lock; the other structures are
/// read through their own synchronization and filtered down to the
/// table's slice).
pub(crate) struct TableSnapshotParts<'a> {
    pub(crate) table: &'a relational::Table,
    pub(crate) cache: &'a JudgmentCache,
    pub(crate) provenance: &'a ProvenanceLedger,
    pub(crate) incomplete: &'a HashSet<(String, String)>,
    pub(crate) crowd_rounds: u64,
    pub(crate) id_column: &'a str,
}

/// Captures one table's state as a snapshot image, stamped with the
/// segment position it supersedes (see [`Durability::checkpoint_table`]).
/// The image's cache counters are zero: the global effectiveness counters
/// are manifest state, not per-table state.
pub(crate) fn table_snapshot_image(
    parts: TableSnapshotParts<'_>,
    wal_generation: u64,
    wal_records_applied: u64,
) -> SnapshotImage {
    let TableSnapshotParts {
        table,
        cache,
        provenance,
        incomplete,
        crowd_rounds,
        id_column,
    } = parts;
    let name = table.name().to_string();
    let mut ledgers: Vec<LedgerImage> = provenance
        .iter()
        .filter(|((t, _), _)| *t == name)
        .map(|((table, column), marks)| {
            let mut marks: Vec<(ItemId, CellMark)> = marks
                .iter()
                .map(|(&item, provenance)| (item, mark_of_provenance(*provenance)))
                .collect();
            marks.sort_unstable_by_key(|(item, _)| *item);
            LedgerImage {
                table: table.clone(),
                column: column.clone(),
                marks,
            }
        })
        .collect();
    ledgers.sort_unstable_by(|a, b| (&a.table, &a.column).cmp(&(&b.table, &b.column)));
    let mut incomplete: Vec<ColumnImage> = incomplete
        .iter()
        .filter(|(t, _)| *t == name)
        .map(|(table, column)| ColumnImage {
            table: table.clone(),
            column: column.clone(),
        })
        .collect();
    incomplete.sort_unstable_by(|a, b| (&a.table, &a.column).cmp(&(&b.table, &b.column)));
    SnapshotImage {
        tables: vec![TableImage::of(table)],
        ledgers,
        incomplete,
        cache: CacheImage {
            groups: cache
                .export_table(&name)
                .into_iter()
                .map(|(table, attribute, entries)| {
                    (
                        table,
                        attribute,
                        entries
                            .into_iter()
                            .map(|(item, judgment)| (item, entry_of_judgment(&judgment)))
                            .collect(),
                    )
                })
                .collect(),
            hits: 0,
            misses: 0,
            cost_saved: 0.0,
        },
        crowd_rounds,
        id_column: id_column.to_string(),
        wal_generation,
        wal_records_applied,
    }
}

/// Builds the WAL record of one judgment-cache write batch, sorted for a
/// deterministic log.
pub(crate) fn cache_put_record(
    table: &str,
    attribute: &str,
    entries: impl IntoIterator<Item = (ItemId, CachedJudgment)>,
    rounds: u64,
) -> WalRecord {
    let mut entries: Vec<(ItemId, JudgmentEntry)> = entries
        .into_iter()
        .map(|(item, judgment)| (item, entry_of_judgment(&judgment)))
        .collect();
    entries.sort_unstable_by_key(|(item, _)| *item);
    WalRecord::CachePut {
        table: table.to_lowercase(),
        attribute: attribute.to_lowercase(),
        entries,
        rounds,
    }
}

pub(crate) fn entry_of_judgment(judgment: &CachedJudgment) -> JudgmentEntry {
    JudgmentEntry {
        verdict: judgment.verdict,
        judgments: judgment.judgments as u64,
        cost: judgment.cost,
        confidence: judgment.confidence,
    }
}

pub(crate) fn judgment_of_entry(entry: JudgmentEntry) -> CachedJudgment {
    CachedJudgment {
        verdict: entry.verdict,
        judgments: entry.judgments as usize,
        cost: entry.cost,
        confidence: entry.confidence,
    }
}

pub(crate) fn mark_of_provenance(provenance: CellProvenance) -> CellMark {
    match provenance {
        CellProvenance::Stored => CellMark::Stored,
        CellProvenance::CrowdDerived {
            confidence,
            cost_share,
        } => CellMark::CrowdDerived {
            confidence,
            cost_share,
        },
        CellProvenance::CacheHit { confidence } => CellMark::CacheHit { confidence },
        CellProvenance::Extracted => CellMark::Extracted,
        CellProvenance::Missing { reason } => CellMark::Missing {
            cause: cause_of_reason(reason),
        },
    }
}

pub(crate) fn provenance_of_mark(mark: CellMark) -> CellProvenance {
    match mark {
        CellMark::Stored => CellProvenance::Stored,
        CellMark::CrowdDerived {
            confidence,
            cost_share,
        } => CellProvenance::CrowdDerived {
            confidence,
            cost_share,
        },
        CellMark::CacheHit { confidence } => CellProvenance::CacheHit { confidence },
        CellMark::Extracted => CellProvenance::Extracted,
        CellMark::Missing { cause } => CellProvenance::Missing {
            reason: reason_of_cause(cause),
        },
    }
}

fn cause_of_reason(reason: MissingReason) -> MissingCause {
    match reason {
        MissingReason::BudgetExhausted => MissingCause::BudgetExhausted,
        MissingReason::NoCachedJudgment => MissingCause::NoCachedJudgment,
        MissingReason::BelowQualityFloor => MissingCause::BelowQualityFloor,
        MissingReason::NoMajority => MissingCause::NoMajority,
        MissingReason::OutOfSpace => MissingCause::OutOfSpace,
        MissingReason::NotExpanded => MissingCause::NotExpanded,
        MissingReason::NoItemId => MissingCause::NoItemId,
    }
}

fn reason_of_cause(cause: MissingCause) -> MissingReason {
    match cause {
        MissingCause::BudgetExhausted => MissingReason::BudgetExhausted,
        MissingCause::NoCachedJudgment => MissingReason::NoCachedJudgment,
        MissingCause::BelowQualityFloor => MissingReason::BelowQualityFloor,
        MissingCause::NoMajority => MissingReason::NoMajority,
        MissingCause::OutOfSpace => MissingReason::OutOfSpace,
        MissingCause::NotExpanded => MissingReason::NotExpanded,
        MissingCause::NoItemId => MissingReason::NoItemId,
    }
}
