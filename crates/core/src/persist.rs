//! Durability wiring: logging committed changes to the [`storage`] engine
//! and rebuilding a [`CrowdDb`](crate::CrowdDb) from its files.
//!
//! # What is durable
//!
//! Everything real money or real work produced: catalog DDL and rows,
//! SQL mutations, materialized crowd columns (values *and* the per-cell
//! provenance ledger, confidence and cost share included), the
//! incomplete-column set, judgment-cache entries and invalidations, and
//! the crowd-round counter.  Runtime bindings — perceptual spaces, crowd
//! sources, column → concept registrations — are *not* persisted: they are
//! live objects the application re-binds after
//! [`CrowdDb::open`](crate::CrowdDb::open) (see
//! `examples/persistent_session.rs`), and nothing about them costs crowd
//! dollars to recreate.
//!
//! # Write path and crash consistency
//!
//! Mutators apply their change to the in-memory state first and then
//! append the matching [`WalRecord`] (group-fsynced) before the query
//! returns.  Two invariants make this safe against a checkpoint running
//! concurrently (see [`CrowdDb::checkpoint`](crate::CrowdDb::checkpoint)):
//!
//! 1. Catalog-shaped records (`CreateTable`, `Mutation`,
//!    `MaterializeColumn`, `SetCells`) are applied *and* logged under the
//!    exclusive catalog lock, and the checkpoint holds the shared catalog
//!    lock across both its state capture and its WAL swap — so each such
//!    record lands either entirely before the snapshot (and is truncated
//!    with the old log) or entirely after it (and replays on top).  This
//!    matters because `Mutation` replay re-executes the SQL and is **not**
//!    idempotent.
//! 2. Cache-shaped records (`CachePut`, `CacheInvalidate`) are applied
//!    outside the catalog lock, so one may be captured by the snapshot
//!    *and* land in the fresh log; both replay idempotently (same-key
//!    overwrite / remove), so the double-apply is harmless.
//!
//! A crash between the in-memory apply and the append loses that one
//! change — exactly the "query never returned" outcome WAL semantics
//! promise.  A crash mid-append leaves a torn tail the next
//! [`recover`] truncates.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use perceptual::ItemId;
use relational::{executor, sql, Catalog};
use storage::{
    read_snapshot, write_snapshot, CacheImage, CellMark, ColumnImage, JudgmentEntry, LedgerImage,
    MissingCause, SnapshotImage, StorageError, TableImage, Wal, WalRecord, WAL_FILE,
};

use crate::cache::{CacheStats, CachedJudgment, JudgmentCache};
use crate::error::CrowdDbError;
use crate::materialize::materialize_column;
use crate::planner;
use crate::provenance::{CellProvenance, MissingReason};
use crate::sync::mlock;
use crate::Result;

/// The per-column provenance ledger type shared with `db.rs`.
pub(crate) type ProvenanceLedger = HashMap<(String, String), HashMap<ItemId, CellProvenance>>;

/// The open durability engine of a persistent database: the directory and
/// the WAL, serialized by one mutex (the *WAL lock* of the locking
/// discipline documented in `docs/architecture.md`).
pub(crate) struct Durability {
    dir: PathBuf,
    wal: Mutex<Wal>,
    id_column: String,
    /// Set on the first append failure; every later durable operation is
    /// refused.  In-memory state was already mutated when the failed
    /// append was attempted, so continuing to commit *later* changes
    /// would write a log that replays against a catalog the disk never
    /// saw — fail-stop keeps the divergence to the one lost change,
    /// which recovery treats as "that query never returned".
    failed: AtomicBool,
}

impl Durability {
    fn check_not_failed(&self) -> Result<()> {
        if self.failed.load(Ordering::SeqCst) {
            return Err(CrowdDbError::Storage(
                "a previous WAL append failed; the storage engine is fail-stopped — reopen \
                 the database to recover to the last durable state"
                    .into(),
            ));
        }
        Ok(())
    }

    fn fail_stop<T>(&self, result: std::result::Result<T, StorageError>) -> Result<T> {
        if result.is_err() {
            self.failed.store(true, Ordering::SeqCst);
        }
        result.map_err(CrowdDbError::from)
    }

    /// Appends `records` as one fsynced group — the commit point.
    pub(crate) fn log(&self, records: &[WalRecord]) -> Result<()> {
        self.check_not_failed()?;
        let result = mlock(&self.wal).append_all(records);
        self.fail_stop(result)
    }

    /// Writes the captured image as the new snapshot, then truncates the
    /// WAL under a fresh generation.
    ///
    /// `capture` runs while the WAL lock is held — no record can slip into
    /// the old log after the state it describes was captured — and
    /// receives the log's current `(generation, record count)`, which the
    /// image must carry: recovery only skips the already-snapshotted
    /// prefix when the on-disk log still has that generation, so a crash
    /// *between* the snapshot rename and the reset (new snapshot +
    /// complete old log) replays nothing twice.  The caller must already
    /// hold the shared catalog lock (see the module docs for the
    /// two-invariant argument).
    pub(crate) fn checkpoint_with(
        &self,
        capture: impl FnOnce(u64, u64) -> SnapshotImage,
    ) -> Result<()> {
        self.check_not_failed()?;
        let mut wal = mlock(&self.wal);
        let image = capture(wal.generation(), wal.record_count());
        // A failed snapshot write leaves the old snapshot + untouched log
        // — fully consistent, no fail-stop needed.  A failed reset or
        // Meta append leaves the log in an unknown shape: fail-stop.
        write_snapshot(&self.dir, &image)?;
        let reset = wal.reset();
        self.fail_stop(reset)?;
        // Every log starts with its Meta record (the reset emptied it).
        let meta = wal.append(&WalRecord::Meta {
            id_column: self.id_column.clone(),
        });
        self.fail_stop(meta)
    }

    /// Size of the WAL file in bytes (diagnostics; used by tests to verify
    /// checkpoint compaction).
    pub(crate) fn wal_bytes(&self) -> u64 {
        let wal = mlock(&self.wal);
        std::fs::metadata(wal.path()).map(|m| m.len()).unwrap_or(0)
    }
}

/// The in-memory state recovered from a database directory, ready to be
/// moved into a `DbInner`.
pub(crate) struct RecoveredState {
    pub(crate) catalog: Catalog,
    pub(crate) cache: JudgmentCache,
    pub(crate) provenance: ProvenanceLedger,
    pub(crate) incomplete: HashSet<(String, String)>,
    pub(crate) crowd_rounds: u64,
}

impl Default for RecoveredState {
    fn default() -> Self {
        RecoveredState {
            catalog: Catalog::new(),
            cache: JudgmentCache::new(),
            provenance: HashMap::new(),
            incomplete: HashSet::new(),
            crowd_rounds: 0,
        }
    }
}

/// Opens (creating if needed) the database directory: loads the snapshot,
/// replays the WAL on top of it (truncating a torn tail, rejecting
/// checksum failures), and returns the recovered state plus the engine
/// positioned for appending.
pub(crate) fn recover(dir: &Path, id_column: &str) -> Result<(RecoveredState, Durability)> {
    std::fs::create_dir_all(dir).map_err(|e| {
        CrowdDbError::Storage(format!(
            "cannot create database directory {}: {e}",
            dir.display()
        ))
    })?;
    let snapshot = read_snapshot(dir)?;
    let (mut state, wal_stamp) = match snapshot {
        Some(image) => {
            if !image.id_column.is_empty() && image.id_column != id_column {
                return Err(CrowdDbError::Storage(format!(
                    "database directory {} was written with id_column '{}' but is being \
                     opened with id_column '{id_column}' — item-keyed records would be \
                     misrouted; open with the original configuration",
                    dir.display(),
                    image.id_column
                )));
            }
            let stamp = (image.wal_generation, image.wal_records_applied);
            (state_of_snapshot(image)?, Some(stamp))
        }
        None => (RecoveredState::default(), None),
    };
    let (mut wal, records) = Wal::open(dir.join(WAL_FILE))?;
    // Records the snapshot already folded in are skipped — but only while
    // the log still carries the generation the snapshot stamped.  A log
    // that was reset since (or never matched) replays in full.
    let skip = match wal_stamp {
        Some((generation, applied)) if generation == wal.generation() => {
            (applied as usize).min(records.len())
        }
        _ => 0,
    };
    if wal.record_count() == 0 {
        // A brand-new (or torn-header-recreated, necessarily empty) log:
        // stamp the configuration its replayer will depend on.
        wal.append(&WalRecord::Meta {
            id_column: id_column.to_string(),
        })?;
    }
    for record in records.into_iter().skip(skip) {
        apply(record, &mut state, id_column, dir)?;
    }
    Ok((
        state,
        Durability {
            dir: dir.to_path_buf(),
            wal: Mutex::new(wal),
            id_column: id_column.to_string(),
            failed: AtomicBool::new(false),
        },
    ))
}

/// Replays one WAL record onto the recovered state.
fn apply(record: WalRecord, state: &mut RecoveredState, id_column: &str, dir: &Path) -> Result<()> {
    match record {
        WalRecord::Meta {
            id_column: recorded,
        } => {
            if recorded != id_column {
                return Err(CrowdDbError::Storage(format!(
                    "database directory {} was written with id_column '{recorded}' but is \
                     being opened with id_column '{id_column}' — item-keyed records would \
                     be misrouted; open with the original configuration",
                    dir.display()
                )));
            }
        }
        WalRecord::CreateTable(image) => {
            // Idempotent: a record that raced a checkpoint may already be
            // covered by the snapshot.
            if state.catalog.table(&image.name).is_err() {
                state.catalog.create_table(image.into_table()?)?;
            }
        }
        WalRecord::Mutation { sql: text } => {
            let statement = sql::parse(&text)?;
            executor::execute(&statement, &mut state.catalog)?;
        }
        WalRecord::MaterializeColumn {
            table,
            column,
            data_type,
            values,
            ledger,
            incomplete,
        } => {
            let values: HashMap<ItemId, relational::Value> = values.into_iter().collect();
            let table_ref = state.catalog.table(&table)?;
            let (rows, _, _) = planner::row_mapping(table_ref, id_column, &table)?;
            let table_mut = state.catalog.table_mut(&table)?;
            materialize_column(table_mut, &column, data_type, &values, &rows)?;
            let key = (table.clone(), column.clone());
            if let Some(marks) = ledger {
                state.provenance.insert(
                    key.clone(),
                    marks
                        .into_iter()
                        .map(|(item, mark)| (item, provenance_of_mark(mark)))
                        .collect(),
                );
            }
            if incomplete {
                state.incomplete.insert(key);
            } else {
                state.incomplete.remove(&key);
            }
        }
        WalRecord::SetCells {
            table,
            column,
            values,
        } => {
            let values: HashMap<ItemId, relational::Value> = values.into_iter().collect();
            let table_ref = state.catalog.table(&table)?;
            let (rows, _, _) = planner::row_mapping(table_ref, id_column, &table)?;
            let table_mut = state.catalog.table_mut(&table)?;
            for (row, item) in rows {
                if let Some(value) = values.get(&item) {
                    table_mut.set_value(row, &column, value.clone())?;
                }
            }
        }
        WalRecord::CachePut {
            table,
            attribute,
            entries,
            rounds,
        } => {
            for (item, entry) in entries {
                state
                    .cache
                    .insert(&table, &attribute, item, judgment_of_entry(entry));
            }
            state.crowd_rounds = state.crowd_rounds.max(rounds);
        }
        WalRecord::CacheInvalidate { table, attribute } => {
            state.cache.invalidate(&table, &attribute);
        }
    }
    Ok(())
}

fn state_of_snapshot(image: SnapshotImage) -> Result<RecoveredState> {
    let mut catalog = Catalog::new();
    for table in image.tables {
        catalog.create_table(table.into_table()?)?;
    }
    let provenance = image
        .ledgers
        .into_iter()
        .map(|ledger| {
            (
                (ledger.table, ledger.column),
                ledger
                    .marks
                    .into_iter()
                    .map(|(item, mark)| (item, provenance_of_mark(mark)))
                    .collect(),
            )
        })
        .collect();
    let incomplete = image
        .incomplete
        .into_iter()
        .map(|c| (c.table, c.column))
        .collect();
    let cache = JudgmentCache::restore(
        image
            .cache
            .groups
            .into_iter()
            .map(|(table, attribute, entries)| {
                (
                    table,
                    attribute,
                    entries
                        .into_iter()
                        .map(|(item, entry)| (item, judgment_of_entry(entry)))
                        .collect(),
                )
            })
            .collect(),
        CacheStats {
            hits: image.cache.hits,
            misses: image.cache.misses,
            cost_saved: image.cache.cost_saved,
            entries: 0, // derived from the entries themselves
        },
    );
    Ok(RecoveredState {
        catalog,
        cache,
        provenance,
        incomplete,
        crowd_rounds: image.crowd_rounds,
    })
}

/// Borrowed views of the live state a checkpoint captures (the caller
/// holds the shared catalog lock; the other structures are read through
/// their own synchronization).
pub(crate) struct SnapshotParts<'a> {
    pub(crate) catalog: &'a Catalog,
    pub(crate) cache: &'a JudgmentCache,
    pub(crate) provenance: &'a ProvenanceLedger,
    pub(crate) incomplete: &'a HashSet<(String, String)>,
    pub(crate) crowd_rounds: u64,
    pub(crate) id_column: &'a str,
}

/// Captures the whole live state as a snapshot image, stamped with the
/// WAL position it supersedes (see [`Durability::checkpoint_with`]).
pub(crate) fn snapshot_image(
    parts: SnapshotParts<'_>,
    wal_generation: u64,
    wal_records_applied: u64,
) -> SnapshotImage {
    let SnapshotParts {
        catalog,
        cache,
        provenance,
        incomplete,
        crowd_rounds,
        id_column,
    } = parts;
    let tables = catalog
        .table_names()
        .iter()
        .map(|name| TableImage::of(catalog.table(name).expect("listed table exists")))
        .collect();
    let mut ledgers: Vec<LedgerImage> = provenance
        .iter()
        .map(|((table, column), marks)| {
            let mut marks: Vec<(ItemId, CellMark)> = marks
                .iter()
                .map(|(&item, provenance)| (item, mark_of_provenance(*provenance)))
                .collect();
            marks.sort_unstable_by_key(|(item, _)| *item);
            LedgerImage {
                table: table.clone(),
                column: column.clone(),
                marks,
            }
        })
        .collect();
    ledgers.sort_unstable_by(|a, b| (&a.table, &a.column).cmp(&(&b.table, &b.column)));
    let mut incomplete: Vec<ColumnImage> = incomplete
        .iter()
        .map(|(table, column)| ColumnImage {
            table: table.clone(),
            column: column.clone(),
        })
        .collect();
    incomplete.sort_unstable_by(|a, b| (&a.table, &a.column).cmp(&(&b.table, &b.column)));
    let (groups, stats) = cache.export();
    SnapshotImage {
        tables,
        ledgers,
        incomplete,
        cache: CacheImage {
            groups: groups
                .into_iter()
                .map(|(table, attribute, entries)| {
                    (
                        table,
                        attribute,
                        entries
                            .into_iter()
                            .map(|(item, judgment)| (item, entry_of_judgment(&judgment)))
                            .collect(),
                    )
                })
                .collect(),
            hits: stats.hits,
            misses: stats.misses,
            cost_saved: stats.cost_saved,
        },
        crowd_rounds,
        id_column: id_column.to_string(),
        wal_generation,
        wal_records_applied,
    }
}

/// Builds the WAL record of one judgment-cache write batch, sorted for a
/// deterministic log.
pub(crate) fn cache_put_record(
    table: &str,
    attribute: &str,
    entries: impl IntoIterator<Item = (ItemId, CachedJudgment)>,
    rounds: u64,
) -> WalRecord {
    let mut entries: Vec<(ItemId, JudgmentEntry)> = entries
        .into_iter()
        .map(|(item, judgment)| (item, entry_of_judgment(&judgment)))
        .collect();
    entries.sort_unstable_by_key(|(item, _)| *item);
    WalRecord::CachePut {
        table: table.to_lowercase(),
        attribute: attribute.to_lowercase(),
        entries,
        rounds,
    }
}

pub(crate) fn entry_of_judgment(judgment: &CachedJudgment) -> JudgmentEntry {
    JudgmentEntry {
        verdict: judgment.verdict,
        judgments: judgment.judgments as u64,
        cost: judgment.cost,
        confidence: judgment.confidence,
    }
}

pub(crate) fn judgment_of_entry(entry: JudgmentEntry) -> CachedJudgment {
    CachedJudgment {
        verdict: entry.verdict,
        judgments: entry.judgments as usize,
        cost: entry.cost,
        confidence: entry.confidence,
    }
}

pub(crate) fn mark_of_provenance(provenance: CellProvenance) -> CellMark {
    match provenance {
        CellProvenance::Stored => CellMark::Stored,
        CellProvenance::CrowdDerived {
            confidence,
            cost_share,
        } => CellMark::CrowdDerived {
            confidence,
            cost_share,
        },
        CellProvenance::CacheHit { confidence } => CellMark::CacheHit { confidence },
        CellProvenance::Extracted => CellMark::Extracted,
        CellProvenance::Missing { reason } => CellMark::Missing {
            cause: cause_of_reason(reason),
        },
    }
}

pub(crate) fn provenance_of_mark(mark: CellMark) -> CellProvenance {
    match mark {
        CellMark::Stored => CellProvenance::Stored,
        CellMark::CrowdDerived {
            confidence,
            cost_share,
        } => CellProvenance::CrowdDerived {
            confidence,
            cost_share,
        },
        CellMark::CacheHit { confidence } => CellProvenance::CacheHit { confidence },
        CellMark::Extracted => CellProvenance::Extracted,
        CellMark::Missing { cause } => CellProvenance::Missing {
            reason: reason_of_cause(cause),
        },
    }
}

fn cause_of_reason(reason: MissingReason) -> MissingCause {
    match reason {
        MissingReason::BudgetExhausted => MissingCause::BudgetExhausted,
        MissingReason::NoCachedJudgment => MissingCause::NoCachedJudgment,
        MissingReason::BelowQualityFloor => MissingCause::BelowQualityFloor,
        MissingReason::NoMajority => MissingCause::NoMajority,
        MissingReason::OutOfSpace => MissingCause::OutOfSpace,
        MissingReason::NotExpanded => MissingCause::NotExpanded,
        MissingReason::NoItemId => MissingCause::NoItemId,
    }
}

fn reason_of_cause(cause: MissingCause) -> MissingReason {
    match cause {
        MissingCause::BudgetExhausted => MissingReason::BudgetExhausted,
        MissingCause::NoCachedJudgment => MissingReason::NoCachedJudgment,
        MissingCause::BelowQualityFloor => MissingReason::BelowQualityFloor,
        MissingCause::NoMajority => MissingReason::NoMajority,
        MissingCause::OutOfSpace => MissingReason::OutOfSpace,
        MissingCause::NotExpanded => MissingReason::NotExpanded,
        MissingCause::NoItemId => MissingReason::NoItemId,
    }
}
