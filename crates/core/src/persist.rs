//! Durability wiring: logging committed changes to the [`storage`] engine
//! and rebuilding a [`CrowdDb`](crate::CrowdDb) from its files.
//!
//! # What is durable
//!
//! Everything real money or real work produced: catalog DDL and rows,
//! SQL mutations, materialized crowd columns (values *and* the per-cell
//! provenance ledger, confidence and cost share included), the
//! incomplete-column set, judgment-cache entries and invalidations, and
//! the crowd-round counter.  Runtime bindings — perceptual spaces, crowd
//! sources, column → concept registrations — are *not* persisted: they are
//! live objects the application re-binds after
//! [`CrowdDb::open`](crate::CrowdDb::open) (see
//! `examples/persistent_session.rs`), and nothing about them costs crowd
//! dollars to recreate.
//!
//! # Segmented, partitioned layout
//!
//! The durable state is sharded by table and, within a table, by
//! partition.  A single-partition table (the default, and every table from
//! the pre-partitioning releases) owns one WAL segment (`wal/<table>.log`)
//! and one snapshot (`snap/<table>.snap`) — byte-identical to the legacy
//! per-table layout.  A table created with a
//! [`PartitionSpec`](relational::PartitionSpec) of `n > 1` partitions owns
//! `n` independent segment/snapshot pairs (`wal/<table>.p<k>.log`,
//! `snap/<table>.p<k>.snap`), each carrying the full per-segment
//! discipline — generation header, CRC32 frames, group fsync, torn-tail
//! truncation — on its own file.  The manifest ties the layout together
//! and records each partitioned table's spec; rows are routed to
//! partitions by the deterministic [`PartitionSpec`] arithmetic applied to
//! the table's id column, identically at write, checkpoint, and recovery
//! time.
//!
//! Partitions therefore commit, checkpoint, and recover independently:
//! writers on disjoint partitions of the *same* table never share a WAL
//! mutex, [`Durability::checkpoint_partition`] compacts one partition
//! without touching its siblings' files, and [`recover`] replays all
//! partitions of all tables in parallel on a worker pool, merging each
//! table's partitions in fixed `k` order so the result is bit-identical
//! however many workers replayed them.  A directory in the legacy
//! single-file layout (`wal.log` + `snapshot.db`, the PR 5 format) is
//! migrated into segments once, on open ([`migrate_legacy`]).
//!
//! # Write path and crash consistency
//!
//! Mutators apply their change to the in-memory state first and then
//! append the matching [`WalRecord`] (group-fsynced) to the owning
//! partition's segment before the query returns.  Two invariants make this
//! safe against a checkpoint of the same partition running concurrently
//! (see [`CrowdDb::checkpoint`](crate::CrowdDb::checkpoint)):
//!
//! 1. Catalog-shaped records (`CreateTable`, `Mutation`,
//!    `MaterializeColumn`, `SetCells`) are applied *and* logged under the
//!    partition's exclusive lock, and the checkpoint holds the shared
//!    partition lock across both its state capture and its segment swap —
//!    so each such record lands either entirely before the snapshot (and
//!    is truncated with the old segment) or entirely after it (and replays
//!    on top).  This matters because `Mutation` replay re-executes the
//!    SQL and is **not** idempotent.
//! 2. Cache-shaped records (`CachePut`, `CacheInvalidate`) are applied
//!    outside the partition lock, so one may be captured by the snapshot
//!    *and* land in the fresh segment; both replay idempotently (same-key
//!    overwrite / remove), so the double-apply is harmless.
//!
//! A multi-partition statement (an `UPDATE` over a partitioned table, a
//! multi-row `INSERT` spanning partitions) is logged to every involved
//! partition while the caller holds all of their exclusive locks; replay
//! re-filters each partition's copy down to its own slice (`INSERT` rows
//! re-route by id; predicate statements simply match nothing outside the
//! slice).  A crash midway through the fan-out can leave a suffix of
//! partitions without the record — the recovered table then holds the
//! prefix's effects, the same "query never returned" outcome a
//! single-partition crash gives, and the per-partition merge reconciles
//! any schema divergence by unioning columns (`NULL`-filling the rows of
//! partitions the record never reached).
//!
//! Partitioned-table **creation** commits on partition 0: the creating
//! thread logs the per-partition `CreateTable` row slices to partitions
//! `1..n` first and to partition 0 last, and recovery drops (and deletes
//! the files of) any partitioned table whose partition-0 segment lacks the
//! table — so a half-created table can never resurrect.
//!
//! A crash between the in-memory apply and the append loses that one
//! change.  A crash mid-append leaves a torn tail the next [`recover`]
//! truncates.  A crash mid-*partial*-checkpoint leaves each partition with
//! either its old snapshot + complete old segment or its new snapshot
//! (+ reset segment): per-partition generation stamps keep every partition
//! individually consistent, whichever subset the crash interrupted.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};

use perceptual::ItemId;
use relational::{executor, sql, Catalog, PartitionSpec, Table, Value};
use storage::manifest::{snap_dir, wal_dir};
use storage::{
    partition_segment_file_name, partition_snapshot_file_name, read_manifest, read_snapshot,
    read_snapshot_file, scan_segments, segment_file_name, snapshot_file_name, write_manifest,
    write_snapshot_file, CacheImage, CellMark, ColumnImage, JudgmentEntry, LedgerImage, Manifest,
    ManifestEntry, MissingCause, SnapshotImage, StorageError, TableImage, Wal, WalRecord,
    SNAPSHOT_FILE, WAL_FILE,
};

use crate::cache::{CacheStats, CachedJudgment, JudgmentCache};
use crate::error::CrowdDbError;
use crate::materialize::materialize_column;
use crate::planner;
use crate::provenance::{CellProvenance, MissingReason};
use crate::scheduler::Scheduler;
use crate::sync::{mlock, rlock, wlock};
use crate::Result;

/// The per-column provenance ledger type shared with `db.rs`.
pub(crate) type ProvenanceLedger = HashMap<(String, String), HashMap<ItemId, CellProvenance>>;

/// One partition's WAL segment: the open log plus the dirty flag partial
/// checkpoints consult.  The segment mutex is the per-partition *WAL lock*
/// of the locking discipline documented in `docs/architecture.md`.
pub(crate) struct Segment {
    wal: Mutex<Wal>,
    /// True when the segment has received an append since the partition's
    /// last checkpoint — the partition must be re-snapshotted.  Cleared
    /// under the segment mutex before the checkpoint captures state, so a
    /// racing append re-dirties the partition for the *next* checkpoint.
    dirty: AtomicBool,
}

impl Segment {
    fn of_wal(wal: Wal, dirty: bool) -> Arc<Segment> {
        Arc::new(Segment {
            wal: Mutex::new(wal),
            dirty: AtomicBool::new(dirty),
        })
    }
}

/// One table's durable storage: its partitioning spec and one [`Segment`]
/// per partition (`parts.len() == spec.partition_count()`).  A
/// single-partition store keeps the legacy `wal/<table>.log` file name;
/// partitioned stores use `wal/<table>.p<k>.log`.
pub(crate) struct TableStore {
    spec: PartitionSpec,
    parts: Vec<Arc<Segment>>,
}

/// On-disk size and dirtiness of one partition, as reported by
/// [`Durability::storage_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PartitionDisk {
    /// Live WAL segment size in bytes.
    pub(crate) wal_bytes: u64,
    /// Snapshot file size in bytes (0 when no snapshot exists yet).
    pub(crate) snapshot_bytes: u64,
    /// True when the segment holds records newer than the snapshot.
    pub(crate) dirty: bool,
}

/// Path of partition `k`'s WAL segment under `spec`'s layout.
fn segment_path(dir: &Path, table: &str, spec: &PartitionSpec, k: usize) -> PathBuf {
    if spec.is_single() {
        wal_dir(dir).join(segment_file_name(table))
    } else {
        wal_dir(dir).join(partition_segment_file_name(table, k))
    }
}

/// Path of partition `k`'s snapshot under `spec`'s layout.
fn snapshot_path(dir: &Path, table: &str, spec: &PartitionSpec, k: usize) -> PathBuf {
    if spec.is_single() {
        snap_dir(dir).join(snapshot_file_name(table))
    } else {
        snap_dir(dir).join(partition_snapshot_file_name(table, k))
    }
}

/// The meta record every fresh segment starts with: the plain
/// [`Meta`] stamp for single-partition tables (legacy-compatible), or the
/// [`MetaPartition`] stamp — id column, partition index, and spec — that
/// lets a partitioned segment be replayed correctly even before the
/// manifest has recorded the table.
///
/// [`Meta`]: WalRecord::Meta
/// [`MetaPartition`]: WalRecord::MetaPartition
fn meta_record(id_column: &str, spec: &PartitionSpec, k: usize) -> WalRecord {
    if spec.is_single() {
        WalRecord::Meta {
            id_column: id_column.to_string(),
        }
    } else {
        WalRecord::MetaPartition {
            id_column: id_column.to_string(),
            partition: k as u32,
            spec: spec.clone(),
        }
    }
}

/// The open durability engine of a persistent database: the directory and
/// the per-table, per-partition WAL segments.
pub(crate) struct Durability {
    dir: PathBuf,
    id_column: String,
    /// Table → store.  The map lock guards membership only (store
    /// creation); appends synchronize on each segment's own mutex, so
    /// distinct partitions never contend.
    stores: RwLock<BTreeMap<String, Arc<TableStore>>>,
    /// Serializes manifest rewrites (last in the lock order).
    manifest: Mutex<()>,
    /// Set on the first append failure; every later durable operation is
    /// refused.  In-memory state was already mutated when the failed
    /// append was attempted, so continuing to commit *later* changes
    /// would write a log that replays against a catalog the disk never
    /// saw — fail-stop keeps the divergence to the one lost change,
    /// which recovery treats as "that query never returned".
    failed: AtomicBool,
}

impl Durability {
    fn new(dir: &Path, id_column: &str, stores: BTreeMap<String, Arc<TableStore>>) -> Durability {
        Durability {
            dir: dir.to_path_buf(),
            id_column: id_column.to_string(),
            stores: RwLock::new(stores),
            manifest: Mutex::new(()),
            failed: AtomicBool::new(false),
        }
    }

    fn check_not_failed(&self) -> Result<()> {
        if self.failed.load(Ordering::SeqCst) {
            return Err(CrowdDbError::Storage(
                "a previous WAL append failed; the storage engine is fail-stopped — reopen \
                 the database to recover to the last durable state"
                    .into(),
            ));
        }
        Ok(())
    }

    fn fail_stop<T>(&self, result: std::result::Result<T, StorageError>) -> Result<T> {
        if result.is_err() {
            self.failed.store(true, Ordering::SeqCst);
        }
        result.map_err(CrowdDbError::from)
    }

    /// Looks up (or lazily creates, with the given spec, on a table's
    /// first durable record) the store for `table`.  An existing store's
    /// spec is authoritative: a table cannot be re-partitioned in place,
    /// so a mismatched request is refused.
    pub(crate) fn ensure_store(
        &self,
        table: &str,
        spec: &PartitionSpec,
    ) -> Result<Arc<TableStore>> {
        let key = table.to_lowercase();
        let check = |store: &Arc<TableStore>| -> Result<Arc<TableStore>> {
            if store.spec != *spec {
                return Err(CrowdDbError::Configuration(format!(
                    "table '{key}' already has partitioning {:?}; it cannot be reopened \
                     with {spec:?}",
                    store.spec
                )));
            }
            Ok(Arc::clone(store))
        };
        if let Some(store) = rlock(&self.stores).get(&key) {
            return check(store);
        }
        let mut stores = wlock(&self.stores);
        if let Some(store) = stores.get(&key) {
            return check(store);
        }
        // First record for this table: open fresh segments.  The manifest
        // is *not* rewritten here — recovery unions in orphan segments, so
        // the new table is durable the moment its segments' first groups
        // fsync, and the manifest catches up at the next checkpoint.
        std::fs::create_dir_all(wal_dir(&self.dir)).map_err(StorageError::from)?;
        let mut parts = Vec::with_capacity(spec.partition_count());
        for k in 0..spec.partition_count() {
            let opened = Wal::open(segment_path(&self.dir, &key, spec, k));
            let (mut wal, _) = self.fail_stop(opened)?;
            if wal.record_count() == 0 {
                let meta = wal.append(&meta_record(&self.id_column, spec, k));
                self.fail_stop(meta)?;
            }
            parts.push(Segment::of_wal(wal, false));
        }
        let store = Arc::new(TableStore {
            spec: spec.clone(),
            parts,
        });
        stores.insert(key, Arc::clone(&store));
        Ok(store)
    }

    /// The store for `table`, lazily created single-partition when the
    /// table has no durable state yet (the legacy default).
    fn store(&self, table: &str) -> Result<Arc<TableStore>> {
        let key = table.to_lowercase();
        if let Some(store) = rlock(&self.stores).get(&key) {
            return Ok(Arc::clone(store));
        }
        self.ensure_store(table, &PartitionSpec::Single)
    }

    /// Appends `records` to partition `k` of `table`'s store as one
    /// fsynced group — the commit point.
    pub(crate) fn log(&self, table: &str, k: usize, records: &[WalRecord]) -> Result<()> {
        self.check_not_failed()?;
        let store = self.store(table)?;
        let segment = store.parts.get(k).ok_or_else(|| {
            CrowdDbError::Storage(format!(
                "table '{table}' has {} partitions; partition {k} does not exist",
                store.parts.len()
            ))
        })?;
        let wal = &mut *mlock(&segment.wal);
        let result = wal.append_all(records);
        segment.dirty.store(true, Ordering::SeqCst);
        self.fail_stop(result)
    }

    /// Appends cache-shaped records, routing each [`CachePut`] entry to
    /// its item's partition and fanning every other record (in practice
    /// [`CacheInvalidate`], which replays idempotently) out to all
    /// partitions.  Single-partition tables take the plain one-segment
    /// path.
    ///
    /// [`CachePut`]: WalRecord::CachePut
    /// [`CacheInvalidate`]: WalRecord::CacheInvalidate
    pub(crate) fn log_routed(&self, table: &str, records: &[WalRecord]) -> Result<()> {
        let store = self.store(table)?;
        if store.spec.is_single() {
            return self.log(table, 0, records);
        }
        let n = store.spec.partition_count();
        let mut per: Vec<Vec<WalRecord>> = vec![Vec::new(); n];
        for record in records {
            match record {
                WalRecord::CachePut {
                    table,
                    attribute,
                    entries,
                    rounds,
                } => {
                    let mut split: Vec<Vec<(ItemId, JudgmentEntry)>> = vec![Vec::new(); n];
                    for (item, entry) in entries {
                        split[store.spec.route_item(*item)].push((*item, *entry));
                    }
                    for (k, entries) in split.into_iter().enumerate() {
                        if !entries.is_empty() {
                            per[k].push(WalRecord::CachePut {
                                table: table.clone(),
                                attribute: attribute.clone(),
                                entries,
                                rounds: *rounds,
                            });
                        }
                    }
                }
                other => {
                    for slot in per.iter_mut() {
                        slot.push(other.clone());
                    }
                }
            }
        }
        for (k, records) in per.into_iter().enumerate() {
            if !records.is_empty() {
                self.log(table, k, &records)?;
            }
        }
        Ok(())
    }

    /// Writes the captured image as the new snapshot of partition `k` of
    /// `table`, then truncates that partition's segment under a fresh
    /// generation.  Returns the segment bytes reclaimed by the truncation.
    /// Sibling partitions' files are never opened, written, or touched.
    ///
    /// `capture` runs while the segment mutex is held — no record can slip
    /// into the old segment after the state it describes was captured —
    /// and receives the segment's current `(generation, record count)`,
    /// which the image must carry: recovery only skips the
    /// already-snapshotted prefix when the on-disk segment still has that
    /// generation, so a crash *between* the snapshot rename and the reset
    /// (new snapshot + complete old segment) replays nothing twice.  The
    /// caller must already hold the partition's shared lock (see the
    /// module docs for the two-invariant argument).
    pub(crate) fn checkpoint_partition(
        &self,
        table: &str,
        k: usize,
        capture: impl FnOnce(u64, u64) -> SnapshotImage,
    ) -> Result<u64> {
        self.check_not_failed()?;
        let store = self.store(table)?;
        let segment = store.parts.get(k).ok_or_else(|| {
            CrowdDbError::Storage(format!(
                "table '{table}' has {} partitions; partition {k} does not exist",
                store.parts.len()
            ))
        })?;
        let mut wal = mlock(&segment.wal);
        let bytes_before = std::fs::metadata(wal.path()).map(|m| m.len()).unwrap_or(0);
        // Clear the flag *before* capturing: an append racing in after the
        // capture re-dirties the partition so the next checkpoint picks it
        // up.
        segment.dirty.store(false, Ordering::SeqCst);
        let image = capture(wal.generation(), wal.record_count());
        std::fs::create_dir_all(snap_dir(&self.dir)).map_err(StorageError::from)?;
        let snap_path = snapshot_path(&self.dir, &table.to_lowercase(), &store.spec, k);
        // A failed snapshot write leaves the old snapshot + untouched
        // segment — fully consistent, no fail-stop needed, but the
        // partition is still dirty.  A failed reset or meta append leaves
        // the segment in an unknown shape: fail-stop.
        if let Err(e) = write_snapshot_file(&snap_path, &image) {
            segment.dirty.store(true, Ordering::SeqCst);
            return Err(e.into());
        }
        let reset = wal.reset();
        self.fail_stop(reset)?;
        // Every segment starts with its meta record (the reset emptied it).
        let meta = wal.append(&meta_record(&self.id_column, &store.spec, k));
        self.fail_stop(meta)?;
        let bytes_after = std::fs::metadata(wal.path()).map(|m| m.len()).unwrap_or(0);
        Ok(bytes_before.saturating_sub(bytes_after))
    }

    /// Rewrites the manifest from the live store set and the given global
    /// counters.  Called after recovery and after each checkpoint — the
    /// manifest is checkpoint-granular by design (segment and snapshot
    /// file names are stable per table and partition, so a stale manifest
    /// never points at missing data; orphan segments are unioned in on
    /// recovery).
    pub(crate) fn write_manifest_state(&self, stats: CacheStats, crowd_rounds: u64) -> Result<()> {
        self.check_not_failed()?;
        let mut entries = Vec::new();
        let mut partitioned = Vec::new();
        for (table, store) in rlock(&self.stores).iter() {
            let (segment, snapshot_name) = if store.spec.is_single() {
                (segment_file_name(table), snapshot_file_name(table))
            } else {
                (
                    partition_segment_file_name(table, 0),
                    partition_snapshot_file_name(table, 0),
                )
            };
            entries.push(ManifestEntry {
                table: table.clone(),
                segment,
                snapshot: snap_dir(&self.dir)
                    .join(&snapshot_name)
                    .exists()
                    .then_some(snapshot_name),
            });
            if !store.spec.is_single() {
                partitioned.push((table.clone(), store.spec.clone()));
            }
        }
        let _guard = mlock(&self.manifest);
        write_manifest(
            &self.dir,
            &Manifest {
                id_column: self.id_column.clone(),
                cache_hits: stats.hits,
                cache_misses: stats.misses,
                cache_cost_saved: stats.cost_saved,
                crowd_rounds,
                entries,
                partitioned,
            },
        )
        .map_err(CrowdDbError::from)
    }

    /// True when partition `k` of `table` has unsnapshotted records (a
    /// partial checkpoint must include it; a table with no store yet has
    /// nothing durable to compact).
    pub(crate) fn is_dirty_partition(&self, table: &str, k: usize) -> bool {
        rlock(&self.stores)
            .get(&table.to_lowercase())
            .and_then(|s| s.parts.get(k).map(|p| p.dirty.load(Ordering::SeqCst)))
            .unwrap_or(false)
    }

    /// Per-table, per-partition on-disk sizes and dirty flags, sorted by
    /// table name (partitions in `k` order).  The raw material of
    /// [`CrowdDb::storage_stats`](crate::CrowdDb::storage_stats).
    pub(crate) fn storage_stats(&self) -> Vec<(String, PartitionSpec, Vec<PartitionDisk>)> {
        let mut stores: Vec<(String, Arc<TableStore>)> = rlock(&self.stores)
            .iter()
            .map(|(t, s)| (t.clone(), Arc::clone(s)))
            .collect();
        stores.sort_by(|a, b| a.0.cmp(&b.0));
        stores
            .into_iter()
            .map(|(table, store)| {
                let parts = store
                    .parts
                    .iter()
                    .enumerate()
                    .map(|(k, segment)| {
                        let wal = mlock(&segment.wal);
                        let wal_bytes = std::fs::metadata(wal.path()).map(|m| m.len()).unwrap_or(0);
                        let snapshot_bytes =
                            std::fs::metadata(snapshot_path(&self.dir, &table, &store.spec, k))
                                .map(|m| m.len())
                                .unwrap_or(0);
                        PartitionDisk {
                            wal_bytes,
                            snapshot_bytes,
                            dirty: segment.dirty.load(Ordering::SeqCst),
                        }
                    })
                    .collect();
                (table.clone(), store.spec.clone(), parts)
            })
            .collect()
    }
}

/// The in-memory state recovered from a database directory, ready to be
/// moved into a `DbInner`.
pub(crate) struct RecoveredState {
    pub(crate) catalog: Catalog,
    pub(crate) cache: JudgmentCache,
    pub(crate) provenance: ProvenanceLedger,
    pub(crate) incomplete: HashSet<(String, String)>,
    pub(crate) crowd_rounds: u64,
    /// Partitioning specs of the recovered tables that are *not*
    /// single-partition — `assemble` re-splits their merged rows into
    /// per-partition catalog slices with the same routing arithmetic.
    pub(crate) specs: HashMap<String, PartitionSpec>,
}

impl Default for RecoveredState {
    fn default() -> Self {
        RecoveredState {
            catalog: Catalog::new(),
            cache: JudgmentCache::new(),
            provenance: HashMap::new(),
            incomplete: HashSet::new(),
            crowd_rounds: 0,
            specs: HashMap::new(),
        }
    }
}

/// Opens (creating if needed) the database directory and returns the
/// recovered state plus the engine positioned for appending.
///
/// Routing: a directory with a manifest recovers segment-by-segment
/// (replayed on up to `parallelism` workers, fanning out across tables
/// *and* across one table's partitions); a manifest-less directory with a
/// legacy `wal.log`/`snapshot.db` is recovered through the old
/// single-file path and migrated into segments; an empty directory starts
/// fresh with an empty manifest.
pub(crate) fn recover(
    dir: &Path,
    id_column: &str,
    parallelism: usize,
) -> Result<(RecoveredState, Durability)> {
    std::fs::create_dir_all(dir).map_err(|e| {
        CrowdDbError::Storage(format!(
            "cannot create database directory {}: {e}",
            dir.display()
        ))
    })?;
    match read_manifest(dir)? {
        Some(manifest) => recover_segmented(dir, id_column, parallelism, manifest),
        None if dir.join(WAL_FILE).exists() || dir.join(SNAPSHOT_FILE).exists() => {
            migrate_legacy(dir, id_column)
        }
        None => {
            let durability = Durability::new(dir, id_column, BTreeMap::new());
            durability.write_manifest_state(CacheStats::default(), 0)?;
            Ok((RecoveredState::default(), durability))
        }
    }
}

/// One replay unit: a single-partition table's whole segment
/// (`partition: None`, legacy file names) or one partition of a
/// partitioned table (`partition: Some(k)`).
struct ReplayJob {
    table: String,
    partition: Option<usize>,
    /// The spec the manifest records for the table, when it does; orphan
    /// partitions learn theirs from the segment's leading
    /// [`WalRecord::MetaPartition`] record.
    spec: Option<PartitionSpec>,
}

/// One replay unit's result: its recovered slice of the database plus its
/// open segment.
struct PartRecovered {
    table: String,
    partition: Option<usize>,
    state: RecoveredState,
    wal: Wal,
    /// True when the segment held records beyond the snapshotted prefix —
    /// the partition must not be skipped by the next partial checkpoint.
    dirty: bool,
    /// The spec this partition replayed under (from the job or observed in
    /// the segment's meta record).
    spec: Option<PartitionSpec>,
}

/// Recovers a segmented directory: replays every live segment (manifest
/// entries ∪ orphan segments on disk) and merges the results in sorted
/// table order — and, within a partitioned table, in fixed partition
/// order — so the outcome is bit-identical however many workers replayed
/// them.
fn recover_segmented(
    dir: &Path,
    id_column: &str,
    parallelism: usize,
    manifest: Manifest,
) -> Result<(RecoveredState, Durability)> {
    if !manifest.id_column.is_empty() && manifest.id_column != id_column {
        return Err(CrowdDbError::Storage(format!(
            "database directory {} was written with id_column '{}' but is being \
             opened with id_column '{id_column}' — item-keyed records would be \
             misrouted; open with the original configuration",
            dir.display(),
            manifest.id_column
        )));
    }
    // The manifest is authoritative for checkpointed tables, but a table
    // created after the last checkpoint exists only as segment files:
    // union both sources so no committed record is orphaned.
    let mut jobs: Vec<ReplayJob> = Vec::new();
    let mut known: HashSet<(String, Option<usize>)> = HashSet::new();
    for entry in &manifest.entries {
        let spec = manifest.spec(&entry.table);
        if spec.is_single() {
            known.insert((entry.table.clone(), None));
            jobs.push(ReplayJob {
                table: entry.table.clone(),
                partition: None,
                spec: None,
            });
        } else {
            for k in 0..spec.partition_count() {
                known.insert((entry.table.clone(), Some(k)));
                jobs.push(ReplayJob {
                    table: entry.table.clone(),
                    partition: Some(k),
                    spec: Some(spec.clone()),
                });
            }
        }
    }
    for (table, partition, _file) in scan_segments(dir)? {
        if known.insert((table.clone(), partition)) {
            jobs.push(ReplayJob {
                table,
                partition,
                spec: None,
            });
        }
    }
    jobs.sort_unstable_by(|a, b| (&a.table, a.partition).cmp(&(&b.table, b.partition)));
    std::fs::create_dir_all(wal_dir(dir)).map_err(StorageError::from)?;

    let results = replay_jobs(dir, id_column, parallelism, jobs)?;

    let mut state = RecoveredState::default();
    let mut crowd_rounds = manifest.crowd_rounds;
    let mut stores = BTreeMap::new();
    // Group the (table, partition)-sorted results by table and merge each
    // table's group in partition order.
    let mut results = results.into_iter().peekable();
    while let Some(first) = results.next() {
        let table = first.table.clone();
        let mut parts = vec![first];
        while results.peek().is_some_and(|r| r.table == table) {
            parts.push(results.next().expect("peeked"));
        }
        let Some((table_state, store)) = merge_table_parts(dir, id_column, &table, parts)? else {
            continue; // abandoned half-created table: files removed
        };
        for name in table_state.catalog.table_names() {
            let recovered = table_state
                .catalog
                .table(&name)
                .expect("listed table exists");
            state.catalog.create_table(recovered.clone())?;
        }
        for (key, marks) in table_state.provenance {
            state.provenance.entry(key).or_default().extend(marks);
        }
        state.incomplete.extend(table_state.incomplete);
        let (groups, _) = table_state.cache.export();
        state.cache.absorb(groups);
        crowd_rounds = crowd_rounds.max(table_state.crowd_rounds);
        if !store.spec.is_single() {
            state.specs.insert(table.clone(), store.spec.clone());
        }
        stores.insert(table, Arc::new(store));
    }
    // Global counters are checkpoint-granular and live in the manifest.
    state.cache.set_stats(CacheStats {
        hits: manifest.cache_hits,
        misses: manifest.cache_misses,
        cost_saved: manifest.cache_cost_saved,
        entries: 0,
    });
    state.crowd_rounds = crowd_rounds;
    let durability = Durability::new(dir, id_column, stores);
    // Fold any orphan segments into the manifest now that they replayed.
    durability.write_manifest_state(state.cache.stats(), state.crowd_rounds)?;
    Ok((state, durability))
}

/// Merges one table's replayed parts (in partition order) into its final
/// recovered state and open store.  Returns `None` — after deleting the
/// partition files — for a partitioned table whose partition-0 segment
/// lacks the table: creation commits on partition 0 (it is logged last),
/// so such a table was half-created when a crash hit and must not
/// resurrect.
fn merge_table_parts(
    dir: &Path,
    id_column: &str,
    table: &str,
    mut parts: Vec<PartRecovered>,
) -> Result<Option<(RecoveredState, TableStore)>> {
    if parts.len() == 1 && parts[0].partition.is_none() {
        // Single-partition table on the legacy per-table layout.
        let part = parts.pop().expect("one part");
        let mut wal = part.wal;
        if wal.record_count() == 0 {
            // A brand-new (or torn-header-recreated, necessarily empty)
            // segment: stamp the configuration its replayer depends on.
            wal.append(&WalRecord::Meta {
                id_column: id_column.to_string(),
            })?;
        }
        return Ok(Some((
            part.state,
            TableStore {
                spec: PartitionSpec::Single,
                parts: vec![Segment::of_wal(wal, part.dirty)],
            },
        )));
    }
    if parts.iter().any(|p| p.partition.is_none()) {
        return Err(CrowdDbError::Storage(format!(
            "table '{table}' has both a legacy single segment and partitioned segments — \
             the directory is corrupt (tables are never re-partitioned in place)"
        )));
    }
    let spec = parts
        .iter()
        .find_map(|p| p.spec.clone())
        .unwrap_or(PartitionSpec::Single);
    let exists = parts
        .iter()
        .find(|p| p.partition == Some(0))
        .is_some_and(|p| p.state.catalog.table(table).is_ok());
    if spec.is_single() || !exists {
        // Either no partition carried a usable spec (every segment torn
        // down to nothing) or partition 0 never saw the CreateTable — the
        // creation never committed.  Drop the stray files so a later
        // CREATE of the same name starts clean.
        for part in parts {
            let k = part.partition.expect("partitioned part");
            drop(part.wal);
            let _ = std::fs::remove_file(wal_dir(dir).join(partition_segment_file_name(table, k)));
            let _ =
                std::fs::remove_file(snap_dir(dir).join(partition_snapshot_file_name(table, k)));
        }
        return Ok(None);
    }
    let n = spec.partition_count();
    let mut by_k: BTreeMap<usize, PartRecovered> = parts
        .into_iter()
        .filter(|p| p.partition.is_some_and(|k| k < n))
        .map(|p| (p.partition.expect("partitioned part"), p))
        .collect();
    let mut merged = RecoveredState::default();
    let mut segments: Vec<Arc<Segment>> = Vec::with_capacity(n);
    let mut merged_table: Option<Table> = None;
    for k in 0..n {
        let part = match by_k.remove(&k) {
            Some(part) => part,
            None => {
                // A partition whose file never landed on disk (possible
                // only for an orphan table torn mid-creation, with the
                // table itself already committed on partition 0): open the
                // segment empty.
                let (wal, _) = Wal::open(wal_dir(dir).join(partition_segment_file_name(table, k)))?;
                PartRecovered {
                    table: table.to_string(),
                    partition: Some(k),
                    state: RecoveredState::default(),
                    wal,
                    dirty: false,
                    spec: Some(spec.clone()),
                }
            }
        };
        if let Ok(slice) = part.state.catalog.table(table) {
            merged_table = Some(match merged_table.take() {
                None => slice.clone(),
                Some(acc) => merge_partition_tables(acc, slice)?,
            });
        }
        for (key, marks) in part.state.provenance {
            merged.provenance.entry(key).or_default().extend(marks);
        }
        merged.incomplete.extend(part.state.incomplete);
        let (groups, _) = part.state.cache.export();
        merged.cache.absorb(groups);
        merged.crowd_rounds = merged.crowd_rounds.max(part.state.crowd_rounds);
        let mut wal = part.wal;
        if wal.record_count() == 0 {
            wal.append(&meta_record(id_column, &spec, k))?;
        }
        segments.push(Segment::of_wal(wal, part.dirty));
    }
    merged
        .catalog
        .create_table(merged_table.expect("partition 0 carries the table"))?;
    Ok(Some((
        merged,
        TableStore {
            spec,
            parts: segments,
        },
    )))
}

/// Appends `part`'s rows and columns onto `acc`: rows concatenate in
/// partition order; columns `acc` has never seen (possible only when a
/// crash tore a schema-changing record's fan-out mid-way) are appended in
/// `part`'s order and `NULL`-filled for the rows that predate them.
pub(crate) fn merge_partition_tables(mut acc: Table, part: &Table) -> Result<Table> {
    for column in part.schema().columns() {
        if acc.schema().index_of(&column.name).is_none() {
            let mut column = column.clone();
            // The rows already in `acc` get NULL in the new position, so
            // the unioned column must admit it.
            column.nullable = true;
            acc.add_column(column, None)?;
        }
    }
    let width = acc.schema().len();
    for row in part.rows() {
        let mut aligned = vec![Value::Null; width];
        for (value, column) in row.iter().zip(part.schema().columns()) {
            let index = acc
                .schema()
                .index_of(&column.name)
                .expect("column was unioned above");
            aligned[index] = value.clone();
        }
        acc.insert_row(aligned)?;
    }
    Ok(acc)
}

/// Splits `table`'s rows into `spec.partition_count()` per-partition
/// tables (same name, same schema) by routing each row's id-column value.
/// Rows without an id column land in partition 0, matching
/// [`PartitionSpec::route_value`]'s `NULL` fallback.  The inverse of the
/// recovery-time merge — the write path, the checkpoint slicer, and
/// recovery all route through the same arithmetic, so the three can never
/// disagree about a row's home partition.
pub(crate) fn split_table_by_partition(
    table: &Table,
    id_column: &str,
    spec: &PartitionSpec,
) -> Result<Vec<Table>> {
    let n = spec.partition_count();
    let mut parts: Vec<Table> = (0..n)
        .map(|_| Table::new(table.name(), table.schema().clone()))
        .collect();
    let id_index = table.schema().index_of(id_column);
    for row in table.rows() {
        let k = id_index
            .map(|i| spec.route_value(&row[i]))
            .unwrap_or_default();
        parts[k]
            .insert_row(row.clone())
            .map_err(CrowdDbError::from)?;
    }
    Ok(parts)
}

/// Replays `jobs` — inline when `parallelism <= 1`, otherwise on a worker
/// pool — and returns the results sorted by `(table, partition)`.  Replay
/// order cannot matter: segments share no state, and the caller merges in
/// sorted order regardless of completion order.
fn replay_jobs(
    dir: &Path,
    id_column: &str,
    parallelism: usize,
    jobs: Vec<ReplayJob>,
) -> Result<Vec<PartRecovered>> {
    if parallelism <= 1 || jobs.len() <= 1 {
        return jobs
            .into_iter()
            .map(|job| replay_one(dir, id_column, job))
            .collect();
    }
    let pool = Scheduler::new(parallelism.min(jobs.len()));
    let (tx, rx) = mpsc::channel();
    for job in jobs {
        let tx = tx.clone();
        let dir = dir.to_path_buf();
        let id_column = id_column.to_string();
        pool.spawn(move || {
            let result = replay_one(&dir, &id_column, job);
            let _ = tx.send(result);
        });
    }
    drop(tx);
    let mut results: Vec<PartRecovered> = rx.iter().collect::<Result<_>>()?;
    results.sort_unstable_by(|a, b| (&a.table, a.partition).cmp(&(&b.table, b.partition)));
    Ok(results)
}

/// Replays one job: its snapshot (if any), then its segment on top,
/// skipping the already-snapshotted prefix when the generation stamps
/// still match (the same discipline the monolithic layout used, now per
/// partition).
fn replay_one(dir: &Path, id_column: &str, job: ReplayJob) -> Result<PartRecovered> {
    let ReplayJob {
        table,
        partition,
        spec,
    } = job;
    let (segment_file, snapshot_file) = match partition {
        None => (segment_file_name(&table), snapshot_file_name(&table)),
        Some(k) => (
            partition_segment_file_name(&table, k),
            partition_snapshot_file_name(&table, k),
        ),
    };
    let snapshot = read_snapshot_file(&snap_dir(dir).join(snapshot_file))?;
    let (mut state, wal_stamp) = match snapshot {
        Some(image) => {
            if !image.id_column.is_empty() && image.id_column != id_column {
                return Err(CrowdDbError::Storage(format!(
                    "table '{table}' in {} was written with id_column '{}' but is being \
                     opened with id_column '{id_column}' — item-keyed records would be \
                     misrouted; open with the original configuration",
                    dir.display(),
                    image.id_column
                )));
            }
            let stamp = (image.wal_generation, image.wal_records_applied);
            (state_of_snapshot(image)?, Some(stamp))
        }
        None => (RecoveredState::default(), None),
    };
    let (wal, records) = Wal::open(wal_dir(dir).join(segment_file))?;
    // Records the snapshot already folded in are skipped — but only while
    // the segment still carries the generation the snapshot stamped.  A
    // segment that was reset since (or never matched) replays in full.
    let skip = match wal_stamp {
        Some((generation, applied)) if generation == wal.generation() => {
            (applied as usize).min(records.len())
        }
        _ => 0,
    };
    // A partitioned segment's first record is always its MetaPartition
    // stamp (written at creation and re-written after every reset), so the
    // replay context survives even when the snapshot skip covers it — peek
    // at it before applying the unskipped suffix.
    let mut ctx = ReplayCtx {
        id_column,
        dir,
        partition: spec.map(|spec| (spec, partition.unwrap_or_default())),
    };
    if let Some(WalRecord::MetaPartition {
        partition: recorded,
        spec,
        ..
    }) = records.first()
    {
        ctx.partition = Some((spec.clone(), *recorded as usize));
    }
    let mut dirty = false;
    for record in records.into_iter().skip(skip) {
        dirty |= !matches!(
            record,
            WalRecord::Meta { .. } | WalRecord::MetaPartition { .. }
        );
        apply(record, &mut state, &mut ctx)?;
    }
    let spec = ctx.partition.map(|(spec, _)| spec);
    Ok(PartRecovered {
        table,
        partition,
        state,
        wal,
        dirty,
        spec,
    })
}

/// Recovers a legacy single-file directory (the PR 5 format) through the
/// old whole-database path, then rewrites it into the segmented layout:
/// per-table snapshots and fresh segments first, the manifest last (its
/// appearance is the commit point of the migration), and only then are
/// the legacy files deleted.  A crash anywhere re-runs cleanly: before
/// the manifest lands the directory still recovers as legacy; after, the
/// stray legacy files are ignored and re-deleted.  Legacy tables are all
/// single-partition — partitioning arrived after the segmented layout.
fn migrate_legacy(dir: &Path, id_column: &str) -> Result<(RecoveredState, Durability)> {
    let snapshot = read_snapshot(dir)?;
    let (mut state, wal_stamp) = match snapshot {
        Some(image) => {
            if !image.id_column.is_empty() && image.id_column != id_column {
                return Err(CrowdDbError::Storage(format!(
                    "database directory {} was written with id_column '{}' but is being \
                     opened with id_column '{id_column}' — item-keyed records would be \
                     misrouted; open with the original configuration",
                    dir.display(),
                    image.id_column
                )));
            }
            let stamp = (image.wal_generation, image.wal_records_applied);
            (state_of_snapshot(image)?, Some(stamp))
        }
        None => (RecoveredState::default(), None),
    };
    {
        let (wal, records) = Wal::open(dir.join(WAL_FILE))?;
        let skip = match wal_stamp {
            Some((generation, applied)) if generation == wal.generation() => {
                (applied as usize).min(records.len())
            }
            _ => 0,
        };
        let mut ctx = ReplayCtx {
            id_column,
            dir,
            partition: None,
        };
        for record in records.into_iter().skip(skip) {
            apply(record, &mut state, &mut ctx)?;
        }
        // The legacy log is consumed; it is deleted below, after the
        // segmented layout durably supersedes it.
    }
    std::fs::create_dir_all(wal_dir(dir)).map_err(StorageError::from)?;
    std::fs::create_dir_all(snap_dir(dir)).map_err(StorageError::from)?;
    let mut stores = BTreeMap::new();
    for name in state.catalog.table_names() {
        let (mut wal, _) = Wal::open(wal_dir(dir).join(segment_file_name(&name)))?;
        if wal.record_count() > 0 {
            // Leftover from a crashed earlier migration attempt; the
            // legacy files are still authoritative, so start over.
            wal.reset()?;
        }
        wal.append(&WalRecord::Meta {
            id_column: id_column.to_string(),
        })?;
        let table = state.catalog.table(&name).expect("listed table exists");
        let image = table_snapshot_image(
            TableSnapshotParts {
                table,
                cache: &state.cache,
                provenance: &state.provenance,
                incomplete: &state.incomplete,
                crowd_rounds: state.crowd_rounds,
                id_column,
                partition: None,
            },
            wal.generation(),
            wal.record_count(),
        );
        write_snapshot_file(&snap_dir(dir).join(snapshot_file_name(&name)), &image)?;
        stores.insert(
            name,
            Arc::new(TableStore {
                spec: PartitionSpec::Single,
                parts: vec![Segment::of_wal(wal, false)],
            }),
        );
    }
    let durability = Durability::new(dir, id_column, stores);
    durability.write_manifest_state(state.cache.stats(), state.crowd_rounds)?;
    let _ = std::fs::remove_file(dir.join(WAL_FILE));
    let _ = std::fs::remove_file(dir.join(SNAPSHOT_FILE));
    Ok((state, durability))
}

/// The context one segment replays under: which partition slice (if any)
/// the records must be filtered down to.
struct ReplayCtx<'a> {
    id_column: &'a str,
    dir: &'a Path,
    /// `Some((spec, k))` while replaying partition `k` of a partitioned
    /// table: multi-partition records re-filter themselves down to the
    /// slice.  `None` for single-partition segments.
    partition: Option<(PartitionSpec, usize)>,
}

/// Replays one WAL record onto the recovered state.
fn apply(record: WalRecord, state: &mut RecoveredState, ctx: &mut ReplayCtx<'_>) -> Result<()> {
    match record {
        WalRecord::Meta {
            id_column: recorded,
        } => {
            check_id_column(&recorded, ctx)?;
        }
        WalRecord::MetaPartition {
            id_column: recorded,
            partition,
            spec,
        } => {
            check_id_column(&recorded, ctx)?;
            if let Some((_, k)) = &ctx.partition {
                if partition as usize != *k {
                    return Err(CrowdDbError::Storage(format!(
                        "partition segment {k} carries a meta record for partition \
                         {partition} — the directory is corrupt"
                    )));
                }
            }
            ctx.partition = Some((spec, partition as usize));
        }
        WalRecord::CreateTable(image) => {
            // Idempotent: a record that raced a checkpoint may already be
            // covered by the snapshot.
            if state.catalog.table(&image.name).is_err() {
                state.catalog.create_table(image.into_table()?)?;
            }
        }
        WalRecord::Mutation { sql: text } => {
            let statement = sql::parse(&text)?;
            match (&statement, &ctx.partition) {
                (
                    sql::Statement::Insert {
                        table,
                        columns,
                        rows,
                    },
                    Some((spec, k)),
                ) if !spec.is_single() => {
                    // The statement was logged to every partition it
                    // routed rows into; keep only this partition's rows.
                    let id_index = columns
                        .iter()
                        .position(|c| c.eq_ignore_ascii_case(ctx.id_column));
                    let kept: Vec<Vec<Value>> = rows
                        .iter()
                        .filter(|row| {
                            let id = id_index.and_then(|i| row.get(i)).unwrap_or(&Value::Null);
                            spec.route_value(id) == *k
                        })
                        .cloned()
                        .collect();
                    if !kept.is_empty() {
                        let sliced = sql::Statement::Insert {
                            table: table.clone(),
                            columns: columns.clone(),
                            rows: kept,
                        };
                        executor::execute(&sliced, &mut state.catalog)?;
                    }
                }
                _ => {
                    executor::execute(&statement, &mut state.catalog)?;
                }
            }
        }
        WalRecord::MaterializeColumn {
            table,
            column,
            data_type,
            values,
            ledger,
            incomplete,
        } => {
            let values: HashMap<ItemId, relational::Value> = values.into_iter().collect();
            let table_ref = state.catalog.table(&table)?;
            let (rows, _, _) = planner::row_mapping(table_ref, ctx.id_column, &table)?;
            let table_mut = state.catalog.table_mut(&table)?;
            materialize_column(table_mut, &column, data_type, &values, &rows)?;
            let key = (table.clone(), column.clone());
            if let Some(marks) = ledger {
                // Entry-wise extend, not insert: sibling partitions of the
                // same table contribute disjoint item slices to the same
                // (table, column) ledger during the recovery merge.
                state.provenance.entry(key.clone()).or_default().extend(
                    marks
                        .into_iter()
                        .map(|(item, mark)| (item, provenance_of_mark(mark))),
                );
            }
            if incomplete {
                state.incomplete.insert(key);
            } else {
                state.incomplete.remove(&key);
            }
        }
        WalRecord::SetCells {
            table,
            column,
            values,
        } => {
            let values: HashMap<ItemId, relational::Value> = values.into_iter().collect();
            let table_ref = state.catalog.table(&table)?;
            let (rows, _, _) = planner::row_mapping(table_ref, ctx.id_column, &table)?;
            let table_mut = state.catalog.table_mut(&table)?;
            for (row, item) in rows {
                if let Some(value) = values.get(&item) {
                    table_mut.set_value(row, &column, value.clone())?;
                }
            }
        }
        WalRecord::CachePut {
            table,
            attribute,
            entries,
            rounds,
        } => {
            for (item, entry) in entries {
                state
                    .cache
                    .insert(&table, &attribute, item, judgment_of_entry(entry));
            }
            state.crowd_rounds = state.crowd_rounds.max(rounds);
        }
        WalRecord::CacheInvalidate { table, attribute } => {
            state.cache.invalidate(&table, &attribute);
        }
    }
    Ok(())
}

fn check_id_column(recorded: &str, ctx: &ReplayCtx<'_>) -> Result<()> {
    if recorded != ctx.id_column {
        return Err(CrowdDbError::Storage(format!(
            "database directory {} was written with id_column '{recorded}' but is \
             being opened with id_column '{}' — item-keyed records would \
             be misrouted; open with the original configuration",
            ctx.dir.display(),
            ctx.id_column
        )));
    }
    Ok(())
}

fn state_of_snapshot(image: SnapshotImage) -> Result<RecoveredState> {
    let mut catalog = Catalog::new();
    for table in image.tables {
        catalog.create_table(table.into_table()?)?;
    }
    let provenance = image
        .ledgers
        .into_iter()
        .map(|ledger| {
            (
                (ledger.table, ledger.column),
                ledger
                    .marks
                    .into_iter()
                    .map(|(item, mark)| (item, provenance_of_mark(mark)))
                    .collect(),
            )
        })
        .collect();
    let incomplete = image
        .incomplete
        .into_iter()
        .map(|c| (c.table, c.column))
        .collect();
    let cache = JudgmentCache::restore(
        image
            .cache
            .groups
            .into_iter()
            .map(|(table, attribute, entries)| {
                (
                    table,
                    attribute,
                    entries
                        .into_iter()
                        .map(|(item, entry)| (item, judgment_of_entry(entry)))
                        .collect(),
                )
            })
            .collect(),
        CacheStats {
            hits: image.cache.hits,
            misses: image.cache.misses,
            cost_saved: image.cache.cost_saved,
            entries: 0, // derived from the entries themselves
        },
    );
    Ok(RecoveredState {
        catalog,
        cache,
        provenance,
        incomplete,
        crowd_rounds: image.crowd_rounds,
        specs: HashMap::new(),
    })
}

/// Borrowed views of the live state a per-partition checkpoint captures
/// (the caller holds the partition's shared lock; the other structures
/// are read through their own synchronization and filtered down to the
/// partition's slice).
pub(crate) struct TableSnapshotParts<'a> {
    /// The partition's catalog slice (the whole table when
    /// single-partition).
    pub(crate) table: &'a relational::Table,
    pub(crate) cache: &'a JudgmentCache,
    pub(crate) provenance: &'a ProvenanceLedger,
    pub(crate) incomplete: &'a HashSet<(String, String)>,
    pub(crate) crowd_rounds: u64,
    pub(crate) id_column: &'a str,
    /// `Some((spec, k))` when snapshotting partition `k` of a partitioned
    /// table: item-keyed structures (ledger marks, cache entries) are
    /// filtered to the items that route to `k`, matching the rows the
    /// `table` slice holds.  `None` captures the whole table.
    pub(crate) partition: Option<(&'a PartitionSpec, usize)>,
}

/// Captures one partition's state as a snapshot image, stamped with the
/// segment position it supersedes (see
/// [`Durability::checkpoint_partition`]).  The image's cache counters are
/// zero: the global effectiveness counters are manifest state, not
/// per-table state.
pub(crate) fn table_snapshot_image(
    parts: TableSnapshotParts<'_>,
    wal_generation: u64,
    wal_records_applied: u64,
) -> SnapshotImage {
    let TableSnapshotParts {
        table,
        cache,
        provenance,
        incomplete,
        crowd_rounds,
        id_column,
        partition,
    } = parts;
    let in_slice = |item: ItemId| match partition {
        Some((spec, k)) => spec.route_item(item) == k,
        None => true,
    };
    let name = table.name().to_string();
    let mut ledgers: Vec<LedgerImage> = provenance
        .iter()
        .filter(|((t, _), _)| *t == name)
        .map(|((table, column), marks)| {
            let mut marks: Vec<(ItemId, CellMark)> = marks
                .iter()
                .filter(|(&item, _)| in_slice(item))
                .map(|(&item, provenance)| (item, mark_of_provenance(*provenance)))
                .collect();
            marks.sort_unstable_by_key(|(item, _)| *item);
            LedgerImage {
                table: table.clone(),
                column: column.clone(),
                marks,
            }
        })
        .collect();
    ledgers.sort_unstable_by(|a, b| (&a.table, &a.column).cmp(&(&b.table, &b.column)));
    let mut incomplete: Vec<ColumnImage> = incomplete
        .iter()
        .filter(|(t, _)| *t == name)
        .map(|(table, column)| ColumnImage {
            table: table.clone(),
            column: column.clone(),
        })
        .collect();
    incomplete.sort_unstable_by(|a, b| (&a.table, &a.column).cmp(&(&b.table, &b.column)));
    SnapshotImage {
        tables: vec![TableImage::of(table)],
        ledgers,
        incomplete,
        cache: CacheImage {
            groups: cache
                .export_table(&name)
                .into_iter()
                .map(|(table, attribute, entries)| {
                    (
                        table,
                        attribute,
                        entries
                            .into_iter()
                            .filter(|(item, _)| in_slice(*item))
                            .map(|(item, judgment)| (item, entry_of_judgment(&judgment)))
                            .collect(),
                    )
                })
                .collect(),
            hits: 0,
            misses: 0,
            cost_saved: 0.0,
        },
        crowd_rounds,
        id_column: id_column.to_string(),
        wal_generation,
        wal_records_applied,
    }
}

/// Builds the WAL record of one judgment-cache write batch, sorted for a
/// deterministic log.
pub(crate) fn cache_put_record(
    table: &str,
    attribute: &str,
    entries: impl IntoIterator<Item = (ItemId, CachedJudgment)>,
    rounds: u64,
) -> WalRecord {
    let mut entries: Vec<(ItemId, JudgmentEntry)> = entries
        .into_iter()
        .map(|(item, judgment)| (item, entry_of_judgment(&judgment)))
        .collect();
    entries.sort_unstable_by_key(|(item, _)| *item);
    WalRecord::CachePut {
        table: table.to_lowercase(),
        attribute: attribute.to_lowercase(),
        entries,
        rounds,
    }
}

pub(crate) fn entry_of_judgment(judgment: &CachedJudgment) -> JudgmentEntry {
    JudgmentEntry {
        verdict: judgment.verdict,
        judgments: judgment.judgments as u64,
        cost: judgment.cost,
        confidence: judgment.confidence,
    }
}

pub(crate) fn judgment_of_entry(entry: JudgmentEntry) -> CachedJudgment {
    CachedJudgment {
        verdict: entry.verdict,
        judgments: entry.judgments as usize,
        cost: entry.cost,
        confidence: entry.confidence,
    }
}

pub(crate) fn mark_of_provenance(provenance: CellProvenance) -> CellMark {
    match provenance {
        CellProvenance::Stored => CellMark::Stored,
        CellProvenance::CrowdDerived {
            confidence,
            cost_share,
        } => CellMark::CrowdDerived {
            confidence,
            cost_share,
        },
        CellProvenance::CacheHit { confidence } => CellMark::CacheHit { confidence },
        CellProvenance::Extracted => CellMark::Extracted,
        CellProvenance::Missing { reason } => CellMark::Missing {
            cause: cause_of_reason(reason),
        },
    }
}

pub(crate) fn provenance_of_mark(mark: CellMark) -> CellProvenance {
    match mark {
        CellMark::Stored => CellProvenance::Stored,
        CellMark::CrowdDerived {
            confidence,
            cost_share,
        } => CellProvenance::CrowdDerived {
            confidence,
            cost_share,
        },
        CellMark::CacheHit { confidence } => CellProvenance::CacheHit { confidence },
        CellMark::Extracted => CellProvenance::Extracted,
        CellMark::Missing { cause } => CellProvenance::Missing {
            reason: reason_of_cause(cause),
        },
    }
}

fn cause_of_reason(reason: MissingReason) -> MissingCause {
    match reason {
        MissingReason::BudgetExhausted => MissingCause::BudgetExhausted,
        MissingReason::NoCachedJudgment => MissingCause::NoCachedJudgment,
        MissingReason::BelowQualityFloor => MissingCause::BelowQualityFloor,
        MissingReason::NoMajority => MissingCause::NoMajority,
        MissingReason::OutOfSpace => MissingCause::OutOfSpace,
        MissingReason::NotExpanded => MissingCause::NotExpanded,
        MissingReason::NoItemId => MissingCause::NoItemId,
    }
}

fn reason_of_cause(cause: MissingCause) -> MissingReason {
    match cause {
        MissingCause::BudgetExhausted => MissingReason::BudgetExhausted,
        MissingCause::NoCachedJudgment => MissingReason::NoCachedJudgment,
        MissingCause::BelowQualityFloor => MissingReason::BelowQualityFloor,
        MissingCause::NoMajority => MissingReason::NoMajority,
        MissingCause::OutOfSpace => MissingReason::OutOfSpace,
        MissingCause::NotExpanded => MissingReason::NotExpanded,
        MissingCause::NoItemId => MissingReason::NoItemId,
    }
}
