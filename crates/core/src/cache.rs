//! The judgment cache: never pay the crowd twice for the same answer.
//!
//! Crowd judgments are the expensive resource of a crowd-enabled database —
//! every `(table, attribute, item)` triple a worker has judged represents
//! real money and real minutes.  The seed implementation threw that work
//! away after each expansion; this cache keeps the aggregated verdicts so
//! that repeated expansion rounds — forced re-expansions
//! (`CrowdDb::expand_attribute` on an already-materialized column), plans
//! overlapping earlier ones, and queries that coalesced onto another
//! query's in-flight round ([`crate::inflight`]) — reuse them instead of
//! re-dispatching HITs.  A repair round that distrusts the stored answers
//! evicts them via `CrowdDb::invalidate_judgments`; the standalone
//! [`crate::boost`] and [`crate::repair`] helpers operate on raw judgment
//! streams and do not consult the cache.
//!
//! The cache stores *aggregated* per-item verdicts (majority vote plus the
//! judgment count and dollar cost behind it), not raw judgment streams: the
//! planner needs answers, and the cost figure is what the hit/miss counters
//! convert into the money-saved metric surfaced on
//! [`crate::ExpansionReport`].
//!
//! # Sharding
//!
//! Entries are partitioned **by table**, mirroring the engine's per-table
//! catalog shards and WAL segments: each table's entries live behind their
//! own [`RwLock`], found through a table-map lock that is held only long
//! enough to clone the partition handle.  Concurrent expansions on
//! different tables therefore never contend on cache state, and a per-table
//! incremental checkpoint can export exactly one partition
//! ([`JudgmentCache::export_table`]).  The hit/miss/cost-saved counters are
//! global (they describe the whole cache's effectiveness) and live behind a
//! separate small mutex, always acquired *after* any partition lock.
//!
//! All methods take `&self`, so a cache shared by N concurrently executing
//! queries needs no external synchronization.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

use perceptual::ItemId;

use crate::sync::{mlock, rlock, wlock};

/// The aggregated crowd knowledge about one `(table, attribute, item)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedJudgment {
    /// The majority verdict (`None` when the crowd produced no majority —
    /// also worth caching: asking again would cost the same and likely tie
    /// again).
    pub verdict: Option<bool>,
    /// Number of raw judgments aggregated into the verdict.
    pub judgments: usize,
    /// Dollars paid to obtain those judgments.
    pub cost: f64,
    /// Inter-worker agreement behind the verdict (fraction of decisive
    /// judgments agreeing with the majority; 0 when no decisive judgment
    /// was collected).  Stored so quality-floor policies and per-cell
    /// provenance apply to reused judgments exactly as to fresh ones.
    pub confidence: f64,
}

/// Counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found no cached verdict.  The items behind them went to
    /// the crowd — either in this query's own round or, when the
    /// acquisition coalesced onto a concurrent query's in-flight round, in
    /// that round.
    pub misses: u64,
    /// Dollars *not* re-spent thanks to cache hits (the cost originally paid
    /// for the reused judgments).
    pub cost_saved: f64,
    /// Number of cached `(table, attribute, item)` entries.
    pub entries: usize,
}

/// One table's share of the cache: attribute → item → judgment.
#[derive(Debug, Default)]
struct Partition {
    entries: HashMap<String, HashMap<ItemId, CachedJudgment>>,
}

impl Partition {
    fn len(&self) -> usize {
        self.entries.values().map(HashMap::len).sum()
    }
}

/// Global effectiveness counters, kept together under one mutex so the
/// dollars-saved figure always moves with the hit count that earned it.
#[derive(Debug, Default)]
struct Counters {
    hits: u64,
    misses: u64,
    cost_saved: f64,
}

/// One exported cache group: the `(table, attribute)` key and its entries,
/// sorted by item id (see [`JudgmentCache::export`]).
pub type CacheGroup = (String, String, Vec<(ItemId, CachedJudgment)>);

/// A concurrency-safe cache of aggregated crowd judgments keyed by
/// `(table, attribute, item)`, partitioned by table.
#[derive(Debug, Default)]
pub struct JudgmentCache {
    /// Table (lowercased) → that table's partition.  The map lock guards
    /// only the membership; entry state lives behind each partition's own
    /// lock so distinct tables never contend.
    partitions: RwLock<HashMap<String, Arc<RwLock<Partition>>>>,
    counters: Mutex<Counters>,
}

impl JudgmentCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        JudgmentCache::default()
    }

    /// Looks up the partition for `table`, if one exists.  The table-map
    /// lock is released before the handle is returned.
    fn partition_of(&self, table: &str) -> Option<Arc<RwLock<Partition>>> {
        rlock(&self.partitions).get(&table.to_lowercase()).cloned()
    }

    /// Looks up or creates the partition for `table`.
    fn partition_or_create(&self, table: &str) -> Arc<RwLock<Partition>> {
        let key = table.to_lowercase();
        if let Some(partition) = rlock(&self.partitions).get(&key) {
            return Arc::clone(partition);
        }
        Arc::clone(wlock(&self.partitions).entry(key).or_default())
    }

    /// Splits `items` into cached judgments and items that must be sent to
    /// the crowd, updating the hit/miss/cost-saved counters.
    ///
    /// This is the planner's bulk entry point: one call per attribute of an
    /// expansion plan.
    pub fn partition(
        &self,
        table: &str,
        attribute: &str,
        items: &[ItemId],
    ) -> (HashMap<ItemId, CachedJudgment>, Vec<ItemId>) {
        let (cached, uncached) = self.partition_peek(table, attribute, items);
        let mut counters = mlock(&self.counters);
        counters.hits += cached.len() as u64;
        counters.misses += uncached.len() as u64;
        counters.cost_saved += cached.values().map(|j| j.cost).sum::<f64>();
        drop(counters);
        (cached, uncached)
    }

    /// Like [`partition`], but without touching the hit/miss/cost-saved
    /// counters — for sibling columns that share one concept's judgments
    /// inside a single plan (so the concept's reuse is counted once), and
    /// for waiters reading the verdicts an in-flight owner just published.
    ///
    /// [`partition`]: JudgmentCache::partition
    pub fn partition_peek(
        &self,
        table: &str,
        attribute: &str,
        items: &[ItemId],
    ) -> (HashMap<ItemId, CachedJudgment>, Vec<ItemId>) {
        let mut cached = HashMap::new();
        let mut uncached = Vec::new();
        match self.partition_of(table) {
            Some(partition) => {
                let partition = rlock(&partition);
                let per_item = partition.entries.get(&attribute.to_lowercase());
                for &item in items {
                    match per_item.and_then(|m| m.get(&item)) {
                        Some(&judgment) => {
                            cached.insert(item, judgment);
                        }
                        None => uncached.push(item),
                    }
                }
            }
            None => uncached.extend_from_slice(items),
        }
        (cached, uncached)
    }

    /// Reads one entry without touching the counters.
    pub fn peek(&self, table: &str, attribute: &str, item: ItemId) -> Option<CachedJudgment> {
        let partition = self.partition_of(table)?;
        let partition = rlock(&partition);
        partition
            .entries
            .get(&attribute.to_lowercase())
            .and_then(|m| m.get(&item))
            .copied()
    }

    /// Stores one aggregated judgment.
    pub fn insert(&self, table: &str, attribute: &str, item: ItemId, judgment: CachedJudgment) {
        let partition = self.partition_or_create(table);
        wlock(&partition)
            .entries
            .entry(attribute.to_lowercase())
            .or_default()
            .insert(item, judgment);
    }

    /// Drops every entry of one `(table, attribute)` — used when fresh
    /// judgments must be forced, e.g. after a repair round found the old
    /// ones questionable.
    pub fn invalidate(&self, table: &str, attribute: &str) {
        if let Some(partition) = self.partition_of(table) {
            wlock(&partition).entries.remove(&attribute.to_lowercase());
        }
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        let entries = self.len();
        let counters = mlock(&self.counters);
        CacheStats {
            hits: counters.hits,
            misses: counters.misses,
            cost_saved: counters.cost_saved,
            entries,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        let partitions: Vec<_> = rlock(&self.partitions).values().cloned().collect();
        partitions.iter().map(|p| rlock(p).len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every cached entry of one table, grouped by attribute and sorted
    /// (both the groups and each group's items) so the export is
    /// deterministic — the judgment half of a per-table incremental
    /// checkpoint.
    pub fn export_table(&self, table: &str) -> Vec<CacheGroup> {
        let key = table.to_lowercase();
        let Some(partition) = self.partition_of(&key) else {
            return Vec::new();
        };
        let partition = rlock(&partition);
        let mut groups: Vec<CacheGroup> = partition
            .entries
            .iter()
            .map(|(attribute, per_item)| {
                let mut items: Vec<(ItemId, CachedJudgment)> =
                    per_item.iter().map(|(&item, &j)| (item, j)).collect();
                items.sort_unstable_by_key(|(item, _)| *item);
                (key.clone(), attribute.clone(), items)
            })
            .collect();
        groups.sort_unstable_by(|a, b| a.1.cmp(&b.1));
        groups
    }

    /// Every cached entry, grouped by `(table, attribute)` and sorted (both
    /// the groups and each group's items) so the export is deterministic —
    /// the judgment half of a durable snapshot, together with
    /// [`stats`](JudgmentCache::stats).
    pub fn export(&self) -> (Vec<CacheGroup>, CacheStats) {
        let mut tables: Vec<String> = rlock(&self.partitions).keys().cloned().collect();
        tables.sort_unstable();
        let mut groups = Vec::new();
        for table in tables {
            groups.extend(self.export_table(&table));
        }
        (groups, self.stats())
    }

    /// Rebuilds a cache from exported groups and counters — the recovery
    /// side of [`export`](JudgmentCache::export).  The `entries` field of
    /// `stats` is ignored (it is derived from the groups).
    pub fn restore(groups: Vec<CacheGroup>, stats: CacheStats) -> Self {
        let cache = JudgmentCache::new();
        cache.absorb(groups);
        cache.set_stats(stats);
        cache
    }

    /// Bulk-inserts exported groups (recovery of one or more tables).
    /// Group keys are normalized (lowercased) exactly like live inserts.
    pub fn absorb(&self, groups: Vec<CacheGroup>) {
        for (table, attribute, items) in groups {
            let partition = self.partition_or_create(&table);
            wlock(&partition)
                .entries
                .entry(attribute.to_lowercase())
                .or_default()
                .extend(items);
        }
    }

    /// Overwrites the global effectiveness counters (recovery only; the
    /// `entries` field is ignored).
    pub fn set_stats(&self, stats: CacheStats) {
        let mut counters = mlock(&self.counters);
        counters.hits = stats.hits;
        counters.misses = stats.misses;
        counters.cost_saved = stats.cost_saved;
    }

    /// Clears entries and counters.
    pub fn clear(&self) {
        wlock(&self.partitions).clear();
        let mut counters = mlock(&self.counters);
        counters.hits = 0;
        counters.misses = 0;
        counters.cost_saved = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn judgment(verdict: Option<bool>, cost: f64) -> CachedJudgment {
        CachedJudgment {
            verdict,
            judgments: 10,
            cost,
            confidence: 0.9,
        }
    }

    #[test]
    fn partition_splits_cached_and_uncached() {
        let cache = JudgmentCache::new();
        cache.insert("movies", "Comedy", 1, judgment(Some(true), 0.02));
        cache.insert("movies", "Comedy", 3, judgment(None, 0.02));

        let (cached, uncached) = cache.partition("movies", "Comedy", &[1, 2, 3, 4]);
        assert_eq!(cached.len(), 2);
        assert_eq!(cached[&1].verdict, Some(true));
        assert_eq!(cached[&3].verdict, None);
        assert_eq!(uncached, vec![2, 4]);

        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 2);
        assert!((stats.cost_saved - 0.04).abs() < 1e-12);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn keys_are_case_insensitive_and_scoped() {
        let cache = JudgmentCache::new();
        cache.insert("Movies", "Comedy", 7, judgment(Some(false), 0.01));
        assert!(cache.peek("movies", "comedy", 7).is_some());
        // Different attribute or table → different entry.
        assert!(cache.peek("movies", "Horror", 7).is_none());
        assert!(cache.peek("books", "comedy", 7).is_none());
        // peek does not move the counters.
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 0);
    }

    #[test]
    fn invalidate_and_clear() {
        let cache = JudgmentCache::new();
        cache.insert("movies", "Comedy", 1, judgment(Some(true), 0.02));
        cache.insert("movies", "Horror", 1, judgment(Some(true), 0.02));
        assert_eq!(cache.len(), 2);
        cache.invalidate("movies", "comedy");
        assert_eq!(cache.len(), 1);
        assert!(cache.peek("movies", "Horror", 1).is_some());
        let _ = cache.partition("movies", "Horror", &[1]);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn export_table_scopes_to_one_partition() {
        let cache = JudgmentCache::new();
        cache.insert("movies", "Comedy", 2, judgment(Some(true), 0.02));
        cache.insert("movies", "Comedy", 1, judgment(Some(false), 0.02));
        cache.insert("books", "Sci-Fi", 9, judgment(Some(true), 0.03));

        let movies = cache.export_table("Movies");
        assert_eq!(movies.len(), 1);
        assert_eq!(movies[0].0, "movies");
        assert_eq!(movies[0].1, "comedy");
        // Items sorted by id for determinism.
        assert_eq!(
            movies[0].2.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert!(cache.export_table("music").is_empty());
        // The full export covers both tables, sorted by table then attribute.
        let (groups, _) = cache.export();
        assert_eq!(
            groups
                .iter()
                .map(|(t, a, _)| (t.as_str(), a.as_str()))
                .collect::<Vec<_>>(),
            vec![("books", "sci-fi"), ("movies", "comedy")]
        );
    }

    #[test]
    fn concurrent_inserts_and_partitions_stay_consistent() {
        use std::sync::Arc;
        use std::thread;

        let cache = Arc::new(JudgmentCache::new());
        let threads: Vec<_> = (0..8u32)
            .map(|t| {
                let cache = Arc::clone(&cache);
                thread::spawn(move || {
                    for item in 0..50u32 {
                        cache.insert("movies", "Comedy", item, judgment(Some(true), 0.01));
                        let (cached, _) =
                            cache.partition_peek("movies", "Comedy", &[item, item + t]);
                        assert!(cached.contains_key(&item));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // 50 distinct items, inserted idempotently by 8 threads.
        assert_eq!(cache.len(), 50);
        let (cached, uncached) =
            cache.partition("movies", "Comedy", &(0..60u32).collect::<Vec<_>>());
        assert_eq!(cached.len(), 50);
        assert_eq!(uncached, (50..60u32).collect::<Vec<_>>());
        let stats = cache.stats();
        assert_eq!(stats.hits, 50);
        assert_eq!(stats.misses, 10);
    }
}
