//! The judgment cache: never pay the crowd twice for the same answer.
//!
//! Crowd judgments are the expensive resource of a crowd-enabled database —
//! every `(table, attribute, item)` triple a worker has judged represents
//! real money and real minutes.  The seed implementation threw that work
//! away after each expansion; this cache keeps the aggregated verdicts so
//! that repeated expansion rounds — forced re-expansions
//! (`CrowdDb::expand_attribute` on an already-materialized column), plans
//! overlapping earlier ones, and queries that coalesced onto another
//! query's in-flight round ([`crate::inflight`]) — reuse them instead of
//! re-dispatching HITs.  A repair round that distrusts the stored answers
//! evicts them via `CrowdDb::invalidate_judgments`; the standalone
//! [`crate::boost`] and [`crate::repair`] helpers operate on raw judgment
//! streams and do not consult the cache.
//!
//! The cache stores *aggregated* per-item verdicts (majority vote plus the
//! judgment count and dollar cost behind it), not raw judgment streams: the
//! planner needs answers, and the cost figure is what the hit/miss counters
//! convert into the money-saved metric surfaced on
//! [`crate::ExpansionReport`].
//!
//! All methods take `&self`: the state lives behind an internal [`RwLock`],
//! so a cache shared by N concurrently executing queries needs no external
//! synchronization.  Reads (`peek`, `partition_peek`, `stats`) take the
//! shared lock; `partition` takes the exclusive lock because it moves the
//! hit/miss counters.

use std::collections::HashMap;
use std::sync::RwLock;

use perceptual::ItemId;

use crate::sync::{rlock, wlock};

/// The aggregated crowd knowledge about one `(table, attribute, item)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedJudgment {
    /// The majority verdict (`None` when the crowd produced no majority —
    /// also worth caching: asking again would cost the same and likely tie
    /// again).
    pub verdict: Option<bool>,
    /// Number of raw judgments aggregated into the verdict.
    pub judgments: usize,
    /// Dollars paid to obtain those judgments.
    pub cost: f64,
    /// Inter-worker agreement behind the verdict (fraction of decisive
    /// judgments agreeing with the majority; 0 when no decisive judgment
    /// was collected).  Stored so quality-floor policies and per-cell
    /// provenance apply to reused judgments exactly as to fresh ones.
    pub confidence: f64,
}

/// Counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found no cached verdict.  The items behind them went to
    /// the crowd — either in this query's own round or, when the
    /// acquisition coalesced onto a concurrent query's in-flight round, in
    /// that round.
    pub misses: u64,
    /// Dollars *not* re-spent thanks to cache hits (the cost originally paid
    /// for the reused judgments).
    pub cost_saved: f64,
    /// Number of cached `(table, attribute, item)` entries.
    pub entries: usize,
}

/// Mutable state of the cache, kept behind one lock so counters and entries
/// always move together.
#[derive(Debug, Default)]
struct CacheInner {
    /// Outer key: `(table, attribute)`; inner key: item id.  Two-level so a
    /// planning round constructs one string key per attribute, not one per
    /// item.
    entries: HashMap<(String, String), HashMap<ItemId, CachedJudgment>>,
    hits: u64,
    misses: u64,
    cost_saved: f64,
}

/// One exported cache group: the `(table, attribute)` key and its entries,
/// sorted by item id (see [`JudgmentCache::export`]).
pub type CacheGroup = (String, String, Vec<(ItemId, CachedJudgment)>);

/// A concurrency-safe cache of aggregated crowd judgments keyed by
/// `(table, attribute, item)`.
#[derive(Debug, Default)]
pub struct JudgmentCache {
    inner: RwLock<CacheInner>,
}

impl JudgmentCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        JudgmentCache::default()
    }

    fn key(table: &str, attribute: &str) -> (String, String) {
        (table.to_lowercase(), attribute.to_lowercase())
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, CacheInner> {
        rlock(&self.inner)
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, CacheInner> {
        wlock(&self.inner)
    }

    /// Splits `items` into cached judgments and items that must be sent to
    /// the crowd, updating the hit/miss/cost-saved counters.
    ///
    /// This is the planner's bulk entry point: one call per attribute of an
    /// expansion plan.
    pub fn partition(
        &self,
        table: &str,
        attribute: &str,
        items: &[ItemId],
    ) -> (HashMap<ItemId, CachedJudgment>, Vec<ItemId>) {
        let mut inner = self.write();
        let mut cached = HashMap::new();
        let mut uncached = Vec::new();
        let mut hits = 0u64;
        let mut cost_saved = 0.0;
        let per_item = inner.entries.get(&Self::key(table, attribute));
        for &item in items {
            match per_item.and_then(|m| m.get(&item)) {
                Some(&judgment) => {
                    hits += 1;
                    cost_saved += judgment.cost;
                    cached.insert(item, judgment);
                }
                None => uncached.push(item),
            }
        }
        inner.hits += hits;
        inner.misses += uncached.len() as u64;
        inner.cost_saved += cost_saved;
        (cached, uncached)
    }

    /// Like [`partition`], but without touching the hit/miss/cost-saved
    /// counters — for sibling columns that share one concept's judgments
    /// inside a single plan (so the concept's reuse is counted once), and
    /// for waiters reading the verdicts an in-flight owner just published.
    ///
    /// [`partition`]: JudgmentCache::partition
    pub fn partition_peek(
        &self,
        table: &str,
        attribute: &str,
        items: &[ItemId],
    ) -> (HashMap<ItemId, CachedJudgment>, Vec<ItemId>) {
        let inner = self.read();
        let per_item = inner.entries.get(&Self::key(table, attribute));
        let mut cached = HashMap::new();
        let mut uncached = Vec::new();
        for &item in items {
            match per_item.and_then(|m| m.get(&item)) {
                Some(&judgment) => {
                    cached.insert(item, judgment);
                }
                None => uncached.push(item),
            }
        }
        (cached, uncached)
    }

    /// Reads one entry without touching the counters.
    pub fn peek(&self, table: &str, attribute: &str, item: ItemId) -> Option<CachedJudgment> {
        self.read()
            .entries
            .get(&Self::key(table, attribute))
            .and_then(|m| m.get(&item))
            .copied()
    }

    /// Stores one aggregated judgment.
    pub fn insert(&self, table: &str, attribute: &str, item: ItemId, judgment: CachedJudgment) {
        self.write()
            .entries
            .entry(Self::key(table, attribute))
            .or_default()
            .insert(item, judgment);
    }

    /// Drops every entry of one `(table, attribute)` — used when fresh
    /// judgments must be forced, e.g. after a repair round found the old
    /// ones questionable.
    pub fn invalidate(&self, table: &str, attribute: &str) {
        self.write().entries.remove(&Self::key(table, attribute));
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.read();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            cost_saved: inner.cost_saved,
            entries: inner.entries.values().map(HashMap::len).sum(),
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.read().entries.values().map(HashMap::len).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.read().entries.values().all(HashMap::is_empty)
    }

    /// Every cached entry, grouped by `(table, attribute)` and sorted (both
    /// the groups and each group's items) so the export is deterministic —
    /// the judgment half of a durable snapshot, together with
    /// [`stats`](JudgmentCache::stats).
    pub fn export(&self) -> (Vec<CacheGroup>, CacheStats) {
        let inner = self.read();
        let mut groups: Vec<CacheGroup> = inner
            .entries
            .iter()
            .map(|((table, attribute), per_item)| {
                let mut items: Vec<(ItemId, CachedJudgment)> =
                    per_item.iter().map(|(&item, &j)| (item, j)).collect();
                items.sort_unstable_by_key(|(item, _)| *item);
                (table.clone(), attribute.clone(), items)
            })
            .collect();
        groups.sort_unstable_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        let stats = CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            cost_saved: inner.cost_saved,
            entries: inner.entries.values().map(HashMap::len).sum(),
        };
        (groups, stats)
    }

    /// Rebuilds a cache from exported groups and counters — the recovery
    /// side of [`export`](JudgmentCache::export).  The `entries` field of
    /// `stats` is ignored (it is derived from the groups).
    pub fn restore(groups: Vec<CacheGroup>, stats: CacheStats) -> Self {
        let cache = JudgmentCache::new();
        {
            let mut inner = cache.write();
            for (table, attribute, items) in groups {
                inner
                    .entries
                    .insert((table, attribute), items.into_iter().collect());
            }
            inner.hits = stats.hits;
            inner.misses = stats.misses;
            inner.cost_saved = stats.cost_saved;
        }
        cache
    }

    /// Clears entries and counters.
    pub fn clear(&self) {
        let mut inner = self.write();
        inner.entries.clear();
        inner.hits = 0;
        inner.misses = 0;
        inner.cost_saved = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn judgment(verdict: Option<bool>, cost: f64) -> CachedJudgment {
        CachedJudgment {
            verdict,
            judgments: 10,
            cost,
            confidence: 0.9,
        }
    }

    #[test]
    fn partition_splits_cached_and_uncached() {
        let cache = JudgmentCache::new();
        cache.insert("movies", "Comedy", 1, judgment(Some(true), 0.02));
        cache.insert("movies", "Comedy", 3, judgment(None, 0.02));

        let (cached, uncached) = cache.partition("movies", "Comedy", &[1, 2, 3, 4]);
        assert_eq!(cached.len(), 2);
        assert_eq!(cached[&1].verdict, Some(true));
        assert_eq!(cached[&3].verdict, None);
        assert_eq!(uncached, vec![2, 4]);

        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 2);
        assert!((stats.cost_saved - 0.04).abs() < 1e-12);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn keys_are_case_insensitive_and_scoped() {
        let cache = JudgmentCache::new();
        cache.insert("Movies", "Comedy", 7, judgment(Some(false), 0.01));
        assert!(cache.peek("movies", "comedy", 7).is_some());
        // Different attribute or table → different entry.
        assert!(cache.peek("movies", "Horror", 7).is_none());
        assert!(cache.peek("books", "comedy", 7).is_none());
        // peek does not move the counters.
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 0);
    }

    #[test]
    fn invalidate_and_clear() {
        let cache = JudgmentCache::new();
        cache.insert("movies", "Comedy", 1, judgment(Some(true), 0.02));
        cache.insert("movies", "Horror", 1, judgment(Some(true), 0.02));
        assert_eq!(cache.len(), 2);
        cache.invalidate("movies", "comedy");
        assert_eq!(cache.len(), 1);
        assert!(cache.peek("movies", "Horror", 1).is_some());
        let _ = cache.partition("movies", "Horror", &[1]);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn concurrent_inserts_and_partitions_stay_consistent() {
        use std::sync::Arc;
        use std::thread;

        let cache = Arc::new(JudgmentCache::new());
        let threads: Vec<_> = (0..8u32)
            .map(|t| {
                let cache = Arc::clone(&cache);
                thread::spawn(move || {
                    for item in 0..50u32 {
                        cache.insert("movies", "Comedy", item, judgment(Some(true), 0.01));
                        let (cached, _) =
                            cache.partition_peek("movies", "Comedy", &[item, item + t]);
                        assert!(cached.contains_key(&item));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // 50 distinct items, inserted idempotently by 8 threads.
        assert_eq!(cache.len(), 50);
        let (cached, uncached) =
            cache.partition("movies", "Comedy", &(0..60u32).collect::<Vec<_>>());
        assert_eq!(cached.len(), 50);
        assert_eq!(uncached, (50..60u32).collect::<Vec<_>>());
        let stats = cache.stats();
        assert_eq!(stats.hits, 50);
        assert_eq!(stats.misses, 10);
    }
}
