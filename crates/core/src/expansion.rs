//! Schema-expansion strategies and reports.

use serde::{Deserialize, Serialize};

use crate::extraction::ExtractionConfig;

/// How the values of a newly added perceptual attribute are obtained.
#[derive(Debug, Clone, PartialEq)]
pub enum ExpansionStrategy {
    /// Naïve crowd-sourcing: every item is judged by the crowd and the
    /// majority vote is stored; items without a majority stay `NULL`.
    /// This is the baseline of Section 4.1.
    DirectCrowd,
    /// Query-driven schema expansion via the perceptual space (Section 3.4):
    /// only `gold_sample_size` items are crowd-sourced; an SVM trained on
    /// their space coordinates fills in all remaining items.
    PerceptualSpace {
        /// Number of items sent to the crowd as the gold training sample.
        gold_sample_size: usize,
        /// Extraction (SVM) configuration.
        extraction: ExtractionConfig,
    },
}

impl ExpansionStrategy {
    /// The perceptual-space strategy with the paper's defaults: a gold
    /// sample of 100 items ("Crowd workers have to provide reliable
    /// judgments for, say, 100 movies") and the default SVM setup.
    pub fn perceptual_default() -> Self {
        ExpansionStrategy::PerceptualSpace {
            gold_sample_size: 100,
            extraction: ExtractionConfig::default(),
        }
    }

    /// A short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ExpansionStrategy::DirectCrowd => "direct crowd-sourcing",
            ExpansionStrategy::PerceptualSpace { .. } => "perceptual-space extraction",
        }
    }
}

impl Default for ExpansionStrategy {
    fn default() -> Self {
        ExpansionStrategy::perceptual_default()
    }
}

/// One stage of the expansion workflow (Figure 2 of the paper, extended
/// with the planning and caching stages of the batched pipeline).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExpansionStage {
    /// The query referenced an attribute missing from the schema.
    MissingAttributeDetected,
    /// The missing-attribute set was turned into an expansion plan (one
    /// planning round covers every missing attribute of the statement).
    ExpansionPlanned,
    /// Cached judgments were reused instead of re-paying the crowd.
    JudgmentsReused,
    /// A concurrent query had a crowd round for the same attribute in
    /// flight; this expansion waited for it and reused its verdicts
    /// instead of dispatching a duplicate round.
    JoinedInflightRound,
    /// The query's crowd budget ran out mid-plan: acquisition stopped
    /// dispatching rounds and the remaining items were left unexpanded
    /// (best-effort policies only).
    BudgetExhausted,
    /// The admission controller lowered this query's expansion mode before
    /// acquisition started — load shedding with provenance.  The query
    /// still *succeeds*; this stage is the durable record of why its
    /// results may be less complete than the caller asked for.
    Degraded {
        /// The mode the caller asked for.
        from: crate::policy::ExpansionMode,
        /// The mode the query actually ran under.
        to: crate::policy::ExpansionMode,
        /// Which limit applied the pressure.
        reason: DegradeReason,
    },
    /// The column was added to the table schema.
    ColumnAdded,
    /// HITs were dispatched to the crowd.
    CrowdSourcingStarted,
    /// Crowd judgments were aggregated by majority vote.
    JudgmentsAggregated,
    /// The extractor (SVM) was trained on the gold sample.
    ExtractorTrained,
    /// Attribute values were materialized for all rows.
    ColumnMaterialized,
    /// The original query was re-executed.
    QueryReExecuted,
}

/// Why the admission controller degraded a query (see
/// [`ExpansionStage::Degraded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradeReason {
    /// The tenant crossed its soft concurrent-query threshold.
    ConcurrencyPressure,
    /// The tenant's sliding-window dollar budget is exhausted.
    DollarRateExceeded,
    /// The scheduler queue itself is backed up past the pressure threshold.
    QueuePressure,
}

impl std::fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradeReason::ConcurrencyPressure => write!(f, "concurrency pressure"),
            DegradeReason::DollarRateExceeded => write!(f, "dollar-rate window exceeded"),
            DegradeReason::QueuePressure => write!(f, "scheduler queue pressure"),
        }
    }
}

/// A report describing one schema expansion.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpansionReport {
    /// The table that was expanded.
    pub table: String,
    /// The SQL name of the new column.
    pub column: String,
    /// The domain concept the crowd was asked about.
    pub attribute: String,
    /// Name of the strategy used.
    pub strategy: String,
    /// Stages executed, in order (the Figure 2 workflow trace).
    pub stages: Vec<ExpansionStage>,
    /// Number of items whose value was sent to the crowd.
    pub items_crowd_sourced: usize,
    /// Number of crowd judgments collected.
    pub judgments_collected: usize,
    /// Number of rows whose value was filled (non-`NULL`) after expansion.
    pub rows_filled: usize,
    /// Number of rows left `NULL` (no majority and no extractor available).
    pub rows_unfilled: usize,
    /// Simulated crowd cost in dollars attributable to this attribute.
    /// Attributes acquired in one batched round split the round's cost, so
    /// summing `crowd_cost` across a plan's reports gives the round total.
    pub crowd_cost: f64,
    /// Wall-clock minutes of the crowd round **this query dispatched** for
    /// the attribute.  Attributes expanded in one batched round **share**
    /// the round, so summing `crowd_minutes` across their reports
    /// double-counts time — take the maximum instead.  0 when served
    /// entirely from the cache or from a concurrent query's round (see
    /// [`items_coalesced`](ExpansionReport::items_coalesced)): the round's
    /// time is reported by the query that owned it.
    pub crowd_minutes: f64,
    /// Size of the extractor training set (0 for direct crowd-sourcing).
    pub training_set_size: usize,
    /// Items whose judgment came from the [`crate::JudgmentCache`] instead
    /// of a fresh crowd round.
    pub cache_hits: usize,
    /// Items that had to be sent to the crowd.
    pub cache_misses: usize,
    /// Dollars saved by cache hits (the cost originally paid for the reused
    /// judgments).
    pub cost_saved: f64,
    /// Items whose id has no coordinates in the perceptual space (reported
    /// explicitly instead of being silently dropped).
    pub items_unmapped: usize,
    /// Items whose verdict was published by a *concurrent* query's crowd
    /// round instead of one this expansion dispatched — either waited for
    /// while in flight, or discovered already-published when this
    /// expansion claimed the attribute.  Paid for by that other query (the
    /// cross-query extension of the owner-pays rule), so these items
    /// contribute neither `crowd_cost` nor `crowd_minutes` here.
    pub items_coalesced: usize,
    /// Items the query's policy left unacquired: budget-denied under
    /// [`BestEffort`](crate::ExpansionMode::BestEffort) or uncached under
    /// [`CacheOnly`](crate::ExpansionMode::CacheOnly).  Their cells carry
    /// [`Missing`](crate::CellProvenance::Missing) provenance.  Quality
    /// floors are *not* counted here — they are a per-query view filter
    /// applied to returned rows, not an acquisition decision.
    pub items_dropped: usize,
}

impl ExpansionReport {
    /// Fraction of rows that received a value.
    pub fn coverage(&self) -> f64 {
        let total = self.rows_filled + self.rows_unfilled;
        if total == 0 {
            return 0.0;
        }
        self.rows_filled as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_names_and_defaults() {
        assert_eq!(
            ExpansionStrategy::DirectCrowd.name(),
            "direct crowd-sourcing"
        );
        let default = ExpansionStrategy::default();
        match &default {
            ExpansionStrategy::PerceptualSpace {
                gold_sample_size, ..
            } => {
                assert_eq!(*gold_sample_size, 100);
            }
            other => panic!("unexpected default {other:?}"),
        }
        assert_eq!(default.name(), "perceptual-space extraction");
    }

    #[test]
    fn report_coverage() {
        let report = ExpansionReport {
            table: "movies".into(),
            column: "is_comedy".into(),
            attribute: "Comedy".into(),
            strategy: "perceptual-space extraction".into(),
            stages: vec![ExpansionStage::MissingAttributeDetected],
            items_crowd_sourced: 100,
            judgments_collected: 1000,
            rows_filled: 900,
            rows_unfilled: 100,
            crowd_cost: 2.0,
            crowd_minutes: 15.0,
            training_set_size: 80,
            cache_hits: 0,
            cache_misses: 100,
            cost_saved: 0.0,
            items_unmapped: 0,
            items_coalesced: 0,
            items_dropped: 0,
        };
        assert!((report.coverage() - 0.9).abs() < 1e-12);
        let empty = ExpansionReport {
            rows_filled: 0,
            rows_unfilled: 0,
            ..report
        };
        assert_eq!(empty.coverage(), 0.0);
    }
}
